"""Continuous cardinality monitoring, wired into the obs event stream.

The paper positions PET for one-shot estimation; real deployments
(dock doors, conveyor portals, exhibition halls) re-estimate
continuously and want to know *when the population changed*, not just
how big it is.  This module builds that layer:

* :class:`CardinalityMonitor` ingests a stream of per-epoch estimates,
  maintains an exponentially-weighted mean and deviation, and flags
  epochs whose estimate departs from the running mean by more than a
  configurable number of standard errors.  Every flagged epoch is also
  emitted as a ``monitor.drift`` event through the monitor's registry
  (the process-wide active registry by default — a no-op until a real
  one is installed) and counted in ``monitor.drift.alerts``, so drift
  shows up in the same exporters as everything else;
* :func:`monitor_population` wires the monitor to a finished estimate
  stream, and :func:`simulate_monitoring` to a simulator factory, so
  dynamic-population scenarios can be tracked end to end.

The detector is deliberately simple (EWMA + z-score) — the point is the
protocol integration, and the false-positive rate is controlled by the
same normal-tail arithmetic as the paper's Eq. 17.

Historically this lived at :mod:`repro.monitor`; that module remains as
a thin compatibility shim over this one.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Iterable

from ..core.accuracy import SIGMA_H, confidence_scale
from ..errors import ConfigurationError
from .registry import MetricsRegistry, get_registry


@dataclass(frozen=True)
class EpochReport:
    """The monitor's verdict for one epoch.

    Attributes
    ----------
    epoch:
        Epoch index.
    estimate:
        The epoch's cardinality estimate.
    smoothed:
        EWMA of the estimates *before* folding this epoch in.
    z_score:
        Standardized departure of this epoch from the running mean
        (``nan`` during warm-up).
    changed:
        Whether the detector flagged a population change.
    """

    epoch: int
    estimate: float
    smoothed: float
    z_score: float
    changed: bool


class CardinalityMonitor:
    """EWMA change detector over a stream of PET estimates.

    Parameters
    ----------
    rounds_per_epoch:
        PET rounds backing each estimate — sets the expected relative
        standard error ``ln2 * sigma_h / sqrt(m)`` of a single epoch.
    alpha:
        EWMA smoothing factor in ``(0, 1]``; higher = more reactive.
    delta:
        Target false-positive rate per epoch; converted to a z
        threshold with the paper's Eq. 17 machinery.
    warmup_epochs:
        Epochs consumed before change detection arms.
    registry:
        Registry that receives ``monitor.drift`` events and the
        ``monitor.drift.alerts`` counter; defaults to the process-wide
        active registry at construction time.
    """

    def __init__(
        self,
        rounds_per_epoch: int,
        alpha: float = 0.3,
        delta: float = 0.01,
        warmup_epochs: int = 3,
        registry: MetricsRegistry | None = None,
    ):
        if rounds_per_epoch < 1:
            raise ConfigurationError(
                f"rounds_per_epoch must be >= 1, got {rounds_per_epoch}"
            )
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(
                f"alpha must lie in (0, 1], got {alpha!r}"
            )
        if warmup_epochs < 1:
            raise ConfigurationError(
                f"warmup_epochs must be >= 1, got {warmup_epochs}"
            )
        self._alpha = alpha
        self._threshold = confidence_scale(delta)
        self._warmup = warmup_epochs
        self._registry = (
            registry if registry is not None else get_registry()
        )
        #: Expected relative std of one epoch's estimate.
        self.epoch_relative_std = (
            math.log(2.0) * SIGMA_H / math.sqrt(rounds_per_epoch)
        )
        self._smoothed: float | None = None
        self._epoch = 0
        self.reports: list[EpochReport] = []

    @property
    def smoothed(self) -> float | None:
        """Current EWMA of the estimates (None before the first)."""
        return self._smoothed

    def observe(self, estimate: float) -> EpochReport:
        """Ingest one epoch's estimate; returns the verdict."""
        if estimate <= 0:
            raise ConfigurationError(
                f"estimates must be positive, got {estimate!r}"
            )
        previous = self._smoothed
        if previous is None:
            z_score = float("nan")
            changed = False
            self._smoothed = estimate
        else:
            sigma = self.epoch_relative_std * previous
            z_score = (estimate - previous) / sigma if sigma else 0.0
            changed = (
                self._epoch >= self._warmup
                and abs(z_score) > self._threshold
            )
            if changed:
                # Re-anchor on the new level rather than averaging
                # across the change point.
                self._smoothed = estimate
            else:
                self._smoothed = (
                    self._alpha * estimate
                    + (1.0 - self._alpha) * previous
                )
        report = EpochReport(
            epoch=self._epoch,
            estimate=estimate,
            smoothed=previous if previous is not None else estimate,
            z_score=z_score,
            changed=changed,
        )
        self.reports.append(report)
        if changed:
            registry = self._registry
            registry.counter("monitor.drift.alerts").inc()
            registry.event(
                "monitor.drift",
                epoch=report.epoch,
                estimate=report.estimate,
                smoothed=report.smoothed,
                z_score=report.z_score,
            )
        self._epoch += 1
        return report

    @property
    def change_epochs(self) -> list[int]:
        """Epochs at which a change was flagged."""
        return [r.epoch for r in self.reports if r.changed]


class HeartbeatMonitor:
    """EWMA stall detector over per-shard heartbeat arrivals.

    The sharded router's watchdog feeds it two signals: every
    heartbeat's inter-arrival gap (:meth:`beat`) and, whenever health
    is evaluated, the current age of each shard's last heartbeat
    (:meth:`check`).  The gaps are EWMA-smoothed — the same machinery
    :class:`CardinalityMonitor` applies to estimates — so the stall
    threshold adapts to the cadence a loaded worker *actually*
    sustains rather than the configured interval alone: a shard is
    stalled when its heartbeat age exceeds ``misses`` times the larger
    of the smoothed gap and the nominal interval.

    Alerts are edge-triggered: one ``fleet.stall`` event and one
    ``fleet.stall.alerts`` count per outage, with a
    ``fleet.stall.recovered`` event when the shard beats again — the
    idiom the drift monitor uses, so stalls land in the same exporters
    and event stream as every other alert.
    """

    def __init__(
        self,
        interval: float,
        misses: int = 2,
        alpha: float = 0.3,
        registry: MetricsRegistry | None = None,
    ):
        if interval <= 0:
            raise ConfigurationError(
                f"interval must be > 0, got {interval}"
            )
        if misses < 1:
            raise ConfigurationError(
                f"misses must be >= 1, got {misses}"
            )
        if not 0.0 < alpha <= 1.0:
            raise ConfigurationError(
                f"alpha must lie in (0, 1], got {alpha!r}"
            )
        self.interval = interval
        self.misses = misses
        self._alpha = alpha
        self._registry = (
            registry if registry is not None else get_registry()
        )
        self._smoothed_gap: dict[int, float] = {}
        self._alerting: set[int] = set()

    def beat(self, shard: int, gap: float) -> None:
        """Feed one observed inter-arrival gap for ``shard``."""
        previous = self._smoothed_gap.get(shard)
        self._smoothed_gap[shard] = (
            gap
            if previous is None
            else self._alpha * gap + (1.0 - self._alpha) * previous
        )
        if shard in self._alerting:
            self._alerting.discard(shard)
            self._registry.event(
                "fleet.stall.recovered", shard=shard, gap=gap
            )

    def threshold(self, shard: int) -> float:
        """Heartbeat age beyond which ``shard`` counts as stalled."""
        expected = max(
            self._smoothed_gap.get(shard, self.interval),
            self.interval,
        )
        return self.misses * expected

    def check(self, shard: int, age: float) -> bool:
        """Whether ``shard``'s heartbeat age marks it stalled (alerts
        once per outage)."""
        stalled = age > self.threshold(shard)
        if stalled and shard not in self._alerting:
            self._alerting.add(shard)
            registry = self._registry
            registry.counter("fleet.stall.alerts").inc()
            registry.event(
                "fleet.stall",
                shard=shard,
                age_seconds=age,
                threshold_seconds=self.threshold(shard),
                misses=self.misses,
            )
        return stalled

    @property
    def alerting(self) -> set[int]:
        """Shards currently inside an un-recovered stall alert."""
        return set(self._alerting)


def monitor_population(
    estimates: Iterable[float],
    rounds_per_epoch: int,
    **monitor_kwargs: object,
) -> list[EpochReport]:
    """Run a monitor over a finished estimate stream (convenience)."""
    monitor = CardinalityMonitor(
        rounds_per_epoch=rounds_per_epoch,
        **monitor_kwargs,  # type: ignore[arg-type]
    )
    return [monitor.observe(value) for value in estimates]


def simulate_monitoring(
    true_sizes: list[int],
    rounds_per_epoch: int,
    seed: int = 0,
    estimator_factory: Callable[[int, int], float] | None = None,
) -> list[EpochReport]:
    """Estimate each epoch's population and feed the monitor.

    Parameters
    ----------
    true_sizes:
        Ground-truth population size per epoch.
    rounds_per_epoch:
        PET rounds per estimate.
    estimator_factory:
        ``(n, epoch) -> estimate``; defaults to a sampled-tier PET
        estimation seeded from ``(seed, epoch)``.
    """
    import numpy as np

    from ..config import PetConfig
    from ..sim.sampled import SampledSimulator

    if estimator_factory is None:

        def estimator_factory(n: int, epoch: int) -> float:
            simulator = SampledSimulator(
                n,
                config=PetConfig(rounds=rounds_per_epoch),
                rng=np.random.default_rng((seed, epoch)),
            )
            return simulator.estimate().n_hat

    monitor = CardinalityMonitor(rounds_per_epoch=rounds_per_epoch)
    return [
        monitor.observe(estimator_factory(n, epoch))
        for epoch, n in enumerate(true_sizes)
    ]
