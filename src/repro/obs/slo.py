"""SLO error-budget accounting: windowed burn rates for the serve tier.

An SLO like "99% of requests answered OK within their deadline" defines
an **error budget**: over any window, up to ``1 - objective`` of the
requests may fail before the SLO is broken.  The *burn rate* is how
fast that budget is being consumed::

    burn_rate = bad_fraction / (1 - objective)

A burn rate of 1.0 exactly exhausts the budget over the window; 14.4
(the classic fast-burn page threshold) exhausts a 30-day budget in two
days.  Following the multi-window alerting practice, the tracker keeps
two sliding windows — a short one that reacts to incidents and a long
one that smooths noise — implemented as second-resolution ring buffers
of good/bad counts, so memory is fixed regardless of traffic.

The serve tier attaches one :class:`SloTracker` to its registry
(``registry.slo``) and feeds every answered request; the tracker
publishes gauges on the same registry:

* ``serve.slo.burn_rate_fast`` / ``serve.slo.burn_rate_slow``
* ``serve.slo.good_fast`` / ``serve.slo.bad_fast`` (window totals)
* ``serve.slo.good_slow`` / ``serve.slo.bad_slow`` (window totals)
* ``serve.slo.budget_remaining_fast`` (1 - burn_rate, floored at 0)

Window totals are additive across processes, which is what lets the
sharded router re-derive fleet-wide burn rates from per-shard
snapshots via :func:`merge_slo_gauges` (ratios themselves cannot be
merged as last-writer-wins gauges).

A request is *good* when it resolved with status ``"ok"`` **and** met
its deadline when one was set — degraded answers, rejections, expiries
and errors all burn budget, which is exactly the ladder the service's
degradation rungs trade against.
"""

from __future__ import annotations

import time

from ..errors import ConfigurationError

#: Default SLO objective: 99% of requests good.
DEFAULT_OBJECTIVE = 0.99

#: Default sliding windows (seconds): fast reacts, slow smooths.
DEFAULT_FAST_WINDOW = 60
DEFAULT_SLOW_WINDOW = 3600

#: Minimum seconds between unforced gauge publishes.
PUBLISH_INTERVAL = 0.25


class _RingWindow:
    """Good/bad counts over a sliding window, 1-second resolution."""

    __slots__ = ("seconds", "good", "bad", "stamps")

    def __init__(self, seconds: int):
        self.seconds = seconds
        self.good = [0] * seconds
        self.bad = [0] * seconds
        # Absolute second each slot was last written; a slot whose
        # stamp is outside the window is stale and resets on touch.
        self.stamps = [-1] * seconds

    def _slot(self, now: float) -> int:
        second = int(now)
        index = second % self.seconds
        if self.stamps[index] != second:
            self.stamps[index] = second
            self.good[index] = 0
            self.bad[index] = 0
        return index

    def record(self, good: bool, now: float) -> None:
        index = self._slot(now)
        if good:
            self.good[index] += 1
        else:
            self.bad[index] += 1

    def totals(self, now: float) -> tuple[int, int]:
        """(good, bad) over the live window ending at ``now``."""
        floor = int(now) - self.seconds
        good = bad = 0
        for index, stamp in enumerate(self.stamps):
            if stamp > floor:
                good += self.good[index]
                bad += self.bad[index]
        return good, bad


class SloTracker:
    """Windowed good/bad accounting against one SLO objective.

    Parameters
    ----------
    objective:
        Target good fraction in ``(0, 1)`` (default 0.99).
    fast_window / slow_window:
        Sliding-window lengths in seconds.
    """

    def __init__(
        self,
        objective: float = DEFAULT_OBJECTIVE,
        fast_window: int = DEFAULT_FAST_WINDOW,
        slow_window: int = DEFAULT_SLOW_WINDOW,
    ):
        if not 0.0 < objective < 1.0:
            raise ConfigurationError(
                f"SLO objective must be in (0, 1), got {objective}"
            )
        if fast_window <= 0 or slow_window <= 0:
            raise ConfigurationError("SLO windows must be positive")
        self.objective = objective
        self.fast = _RingWindow(int(fast_window))
        self.slow = _RingWindow(int(slow_window))
        self.total_good = 0
        self.total_bad = 0
        self._last_publish = float("-inf")

    def record(self, good: bool, now: float | None = None) -> None:
        """Feed one finished request into both windows."""
        if now is None:
            now = time.time()
        self.fast.record(good, now)
        self.slow.record(good, now)
        if good:
            self.total_good += 1
        else:
            self.total_bad += 1

    def burn_rate(
        self, window: _RingWindow, now: float | None = None
    ) -> float:
        """Budget-consumption speed over ``window`` (0.0 when idle)."""
        if now is None:
            now = time.time()
        good, bad = window.totals(now)
        total = good + bad
        if total == 0:
            return 0.0
        bad_fraction = bad / total
        return bad_fraction / (1.0 - self.objective)

    def _rate(self, good: int, bad: int) -> float:
        total = good + bad
        if total == 0:
            return 0.0
        return (bad / total) / (1.0 - self.objective)

    def publish(
        self,
        registry,
        now: float | None = None,
        force: bool = False,
    ) -> None:
        """Write the burn-rate gauges onto ``registry``.

        Summing the ring windows costs ``fast_window + slow_window``
        slot reads, so unforced calls are throttled to
        :data:`PUBLISH_INTERVAL` — the serve tier publishes on every
        answered request and relies on this to stay off the hot path.
        Scrapes and shutdown publish with ``force=True`` so exported
        gauges are never stale.
        """
        if now is None:
            now = time.time()
        if not force and now - self._last_publish < PUBLISH_INTERVAL:
            return
        self._last_publish = now
        fast_good, fast_bad = self.fast.totals(now)
        fast_rate = self._rate(fast_good, fast_bad)
        slow_good, slow_bad = self.slow.totals(now)
        slow_rate = self._rate(slow_good, slow_bad)
        registry.gauge("serve.slo.burn_rate_fast").set(fast_rate)
        registry.gauge("serve.slo.burn_rate_slow").set(slow_rate)
        registry.gauge("serve.slo.good_fast").set(fast_good)
        registry.gauge("serve.slo.bad_fast").set(fast_bad)
        registry.gauge("serve.slo.good_slow").set(slow_good)
        registry.gauge("serve.slo.bad_slow").set(slow_bad)
        registry.gauge("serve.slo.budget_remaining_fast").set(
            max(0.0, 1.0 - fast_rate)
        )
        registry.gauge("serve.slo.objective").set(self.objective)


def publish_shard_slo(registry, index, gauges) -> None:
    """Per-shard burn-rate gauges from one shard's published windows.

    ``gauges`` is the shard's gauge mapping (as found in its snapshot
    or delta stream): the additive ``serve.slo.good_fast`` /
    ``serve.slo.bad_fast`` window totals plus the shared objective.
    The fleet view reads the derived
    ``serve.shard.<i>.burn_rate_fast`` next to the fleet-wide merged
    rate, so a single misbehaving shard is visible even when the
    aggregate still looks healthy.
    """
    objective = gauges.get("serve.slo.objective", DEFAULT_OBJECTIVE)
    good = gauges.get("serve.slo.good_fast", 0.0)
    bad = gauges.get("serve.slo.bad_fast", 0.0)
    total = good + bad
    rate = (
        (bad / total) / (1.0 - objective) if total > 0 else 0.0
    )
    registry.gauge(f"serve.shard.{index}.burn_rate_fast").set(rate)


def merge_slo_gauges(registry, snapshots, objective=None) -> None:
    """Recompute merged SLO gauges from per-shard snapshots.

    Gauge merge semantics are last-writer-wins, which is wrong for
    burn rates — a ratio cannot be merged as a gauge.  The sharded
    router instead sums each shard's published good/bad *window
    totals* (which are additive) and re-derives the aggregate burn
    rates on its own registry, so the merged ``serve.slo.*`` gauges
    describe fleet-wide budget consumption.

    ``objective`` defaults to the first snapshot that published one
    (shards share a ``ServiceConfig``, so they agree), falling back to
    :data:`DEFAULT_OBJECTIVE`.
    """
    fast_good = fast_bad = slow_good = slow_bad = 0.0
    for snapshot in snapshots:
        # Accept RegistrySnapshot dataclasses and plain dicts alike.
        gauges = getattr(snapshot, "gauges", None)
        if gauges is None:
            gauges = snapshot.get("gauges", {})
        fast_good += gauges.get("serve.slo.good_fast", 0.0)
        fast_bad += gauges.get("serve.slo.bad_fast", 0.0)
        slow_good += gauges.get("serve.slo.good_slow", 0.0)
        slow_bad += gauges.get("serve.slo.bad_slow", 0.0)
        if objective is None:
            objective = gauges.get("serve.slo.objective")
    if objective is None:
        objective = DEFAULT_OBJECTIVE

    def _rate(good: float, bad: float) -> float:
        total = good + bad
        if total == 0:
            return 0.0
        return (bad / total) / (1.0 - objective)

    fast_rate = _rate(fast_good, fast_bad)
    registry.gauge("serve.slo.burn_rate_fast").set(fast_rate)
    registry.gauge("serve.slo.burn_rate_slow").set(
        _rate(slow_good, slow_bad)
    )
    registry.gauge("serve.slo.good_fast").set(fast_good)
    registry.gauge("serve.slo.bad_fast").set(fast_bad)
    registry.gauge("serve.slo.good_slow").set(slow_good)
    registry.gauge("serve.slo.bad_slow").set(slow_bad)
    registry.gauge("serve.slo.budget_remaining_fast").set(
        max(0.0, 1.0 - fast_rate)
    )
    registry.gauge("serve.slo.objective").set(objective)
