"""Dynamic tag sets: joins and leaves between estimation rounds.

Sec. 4.6.3 argues PET handles mobile/dynamic populations because each
round is a self-contained snapshot whose responses are duplicate
insensitive.  :class:`PopulationDynamics` drives a population through a
join/leave schedule so experiments can measure what a changing ground
truth does to the aggregate estimate.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError
from .population import TagPopulation


@dataclass(frozen=True)
class DynamicsStep:
    """One evolution step of a dynamic population.

    Attributes
    ----------
    round_index:
        The estimation round *before* which this step applies.
    joined, left:
        Number of tags added / removed in the step.
    size_after:
        Population cardinality after the step.
    """

    round_index: int
    joined: int
    left: int
    size_after: int


class PopulationDynamics:
    """Evolves a :class:`TagPopulation` with Poisson-ish churn.

    Parameters
    ----------
    join_rate:
        Expected number of tags joining before each round.
    leave_rate:
        Expected number of tags leaving before each round.
    rng:
        Randomness source for churn draws and member selection.
    """

    def __init__(
        self,
        join_rate: float,
        leave_rate: float,
        rng: np.random.Generator,
    ):
        if join_rate < 0 or leave_rate < 0:
            raise ConfigurationError("churn rates must be non-negative")
        self._join_rate = join_rate
        self._leave_rate = leave_rate
        self._rng = rng
        self.history: list[DynamicsStep] = []

    def step(
        self, population: TagPopulation, round_index: int
    ) -> TagPopulation:
        """Apply one churn step and return the evolved population."""
        joins = int(self._rng.poisson(self._join_rate))
        leaves = int(self._rng.poisson(self._leave_rate))
        leaves = min(leaves, population.size)

        current = [int(v) for v in population.tag_ids]
        if leaves:
            keep_mask = np.ones(len(current), dtype=bool)
            gone = self._rng.choice(len(current), size=leaves, replace=False)
            keep_mask[gone] = False
            current = [
                tid for tid, keep in zip(current, keep_mask) if keep
            ]

        existing = set(current)
        target = len(current) + joins
        while len(current) < target:
            candidate = int(self._rng.integers(0, 2**63))
            if candidate not in existing:
                current.append(candidate)
                existing.add(candidate)

        evolved = TagPopulation(current, family=population.family)
        self.history.append(
            DynamicsStep(
                round_index=round_index,
                joined=joins,
                left=leaves,
                size_after=evolved.size,
            )
        )
        return evolved

    @property
    def total_joined(self) -> int:
        """Tags that joined across all steps so far."""
        return sum(step.joined for step in self.history)

    @property
    def total_left(self) -> int:
        """Tags that left across all steps so far."""
        return sum(step.left for step in self.history)
