"""Tag mobility across reader interrogation regions.

Sec. 4.6.3's second scenario: tags attached to mobile objects move
between the coverage areas of different readers while estimation is in
progress.  A :class:`MobileTagField` tracks which reader(s) currently
cover each tag; a :class:`MobilityModel` perturbs those assignments
between rounds.  The back-end controller's OR-aggregation makes the
estimate insensitive to where (or how many times) a tag is heard, which
the multireader tests assert.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import ConfigurationError


@dataclass
class MobileTagField:
    """Assignment of tags to (possibly several) reader coverage regions.

    Attributes
    ----------
    num_readers:
        Number of reader regions, indexed ``0..num_readers-1``.
    coverage:
        Map from tag ID to the frozenset of reader indices covering it.
        Every tag must be covered by at least one reader for the
        controller to count it.
    """

    num_readers: int
    coverage: dict[int, frozenset[int]] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.num_readers < 1:
            raise ConfigurationError(
                f"num_readers must be >= 1, got {self.num_readers}"
            )

    @classmethod
    def random(
        cls,
        tag_ids: np.ndarray,
        num_readers: int,
        overlap_probability: float,
        rng: np.random.Generator,
    ) -> "MobileTagField":
        """Scatter tags over readers with optional overlapping coverage.

        Each tag gets one home reader uniformly; with
        ``overlap_probability`` it is additionally heard by a second
        (distinct) reader — the duplicate-count hazard the controller
        must neutralise.
        """
        if not 0.0 <= overlap_probability <= 1.0:
            raise ConfigurationError(
                "overlap_probability must lie in [0, 1], "
                f"got {overlap_probability!r}"
            )
        field_map: dict[int, frozenset[int]] = {}
        for tag_id in tag_ids:
            home = int(rng.integers(num_readers))
            readers = {home}
            if num_readers > 1 and rng.random() < overlap_probability:
                second = int(rng.integers(num_readers - 1))
                if second >= home:
                    second += 1
                readers.add(second)
            field_map[int(tag_id)] = frozenset(readers)
        return cls(num_readers=num_readers, coverage=field_map)

    def tags_of_reader(self, reader_index: int) -> list[int]:
        """Tag IDs inside reader ``reader_index``'s region."""
        if not 0 <= reader_index < self.num_readers:
            raise ConfigurationError(
                f"reader index {reader_index} out of range "
                f"[0, {self.num_readers})"
            )
        return [
            tag_id
            for tag_id, readers in self.coverage.items()
            if reader_index in readers
        ]

    @property
    def covered_tags(self) -> set[int]:
        """All tags heard by at least one reader."""
        return {
            tag_id
            for tag_id, readers in self.coverage.items()
            if readers
        }

    @property
    def duplicated_tags(self) -> set[int]:
        """Tags currently heard by two or more readers."""
        return {
            tag_id
            for tag_id, readers in self.coverage.items()
            if len(readers) >= 2
        }


class MobilityModel:
    """Moves tags between reader regions with a fixed per-round rate."""

    def __init__(self, move_probability: float, rng: np.random.Generator):
        if not 0.0 <= move_probability <= 1.0:
            raise ConfigurationError(
                f"move_probability must lie in [0, 1], "
                f"got {move_probability!r}"
            )
        self._move_probability = move_probability
        self._rng = rng

    def step(self, field_map: MobileTagField) -> MobileTagField:
        """Return a new field with each tag re-homed with the move rate.

        A moving tag transits through the overlap: it is briefly covered
        by both its old and new reader (the exact situation Sec. 4.6.3
        says PET tolerates), modelled by assigning both readers for the
        round in which the move happens.
        """
        new_coverage: dict[int, frozenset[int]] = {}
        for tag_id, readers in field_map.coverage.items():
            if (
                field_map.num_readers > 1
                and self._rng.random() < self._move_probability
            ):
                old_home = min(readers)
                new_home = int(self._rng.integers(field_map.num_readers - 1))
                if new_home >= old_home:
                    new_home += 1
                new_coverage[tag_id] = frozenset({old_home, new_home})
            else:
                # Settle into a single home after any transit completes.
                new_coverage[tag_id] = frozenset({min(readers)})
        return MobileTagField(
            num_readers=field_map.num_readers, coverage=new_coverage
        )
