"""Tag population generation.

A :class:`TagPopulation` owns the set of tag IDs present in the region of
interest and can materialise them either as state-machine objects (for
the slot-level simulator) or as numpy ID/code arrays (for the vectorized
simulators).
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import ConfigurationError
from ..hashing import HashFamily, default_family, uniform_codes
from .pet_tags import ActivePetTag, PassivePetTag


class TagPopulation:
    """The set of RFID tags in the region of interest.

    Parameters
    ----------
    tag_ids:
        Unique tag identifiers.  Use :meth:`random` to synthesize a
        population with EPC-like 64-bit random IDs.
    family:
        Hash family used when deriving PET codes from IDs.
    """

    def __init__(
        self,
        tag_ids: Iterable[int],
        family: HashFamily | None = None,
    ):
        ids = list(tag_ids)
        if len(set(ids)) != len(ids):
            raise ConfigurationError("tag IDs must be unique")
        self._ids = np.array(sorted(ids), dtype=np.uint64)
        self._family = family or default_family()

    @classmethod
    def random(
        cls,
        size: int,
        rng: np.random.Generator,
        family: HashFamily | None = None,
    ) -> "TagPopulation":
        """Synthesize ``size`` tags with distinct random 64-bit IDs."""
        if size < 0:
            raise ConfigurationError(f"size must be >= 0, got {size}")
        draw = rng.integers(0, 2**63, size=size, dtype=np.int64)
        unique = np.unique(draw.astype(np.uint64))
        if unique.size == size:
            # Collision-free first draw (probability ~1 - size^2 / 2^64):
            # np.unique already sorted + deduplicated, so skip the
            # Python-level set/sort round-trip.  Bit-identical to the
            # slow path below, which the experiment engines rely on.
            population = cls.__new__(cls)
            population._ids = unique
            population._family = family or default_family()
            return population
        ids = set(int(v) for v in draw)
        while len(ids) < size:
            more = rng.integers(
                0, 2**63, size=size - len(ids), dtype=np.int64
            )
            ids.update(int(v) for v in more)
        return cls(ids, family=family)

    @classmethod
    def from_sorted_ids(
        cls,
        ids: np.ndarray,
        family: HashFamily | None = None,
    ) -> "TagPopulation":
        """Wrap an already-sorted unique ``uint64`` ID array, zero-copy.

        Caller contract: ``ids`` is sorted ascending with no
        duplicates (not re-checked — that is the point).  The array is
        held by reference, so a shared-memory-backed buffer stays
        shared: worker shards attach the router's
        :class:`~repro.sim.shm.SharedArray` and build their population
        view through here without copying or re-validating.
        """
        population = cls.__new__(cls)
        population._ids = np.asarray(ids, dtype=np.uint64)
        population._family = family or default_family()
        return population

    @classmethod
    def sequential(
        cls, size: int, family: HashFamily | None = None
    ) -> "TagPopulation":
        """Population with IDs ``0..size-1`` (deterministic tests)."""
        if size < 0:
            raise ConfigurationError(f"size must be >= 0, got {size}")
        return cls(range(size), family=family)

    @property
    def size(self) -> int:
        """The true cardinality ``n`` (what the protocols estimate)."""
        return len(self._ids)

    def __len__(self) -> int:
        return self.size

    @property
    def tag_ids(self) -> np.ndarray:
        """Sorted tag IDs as a ``uint64`` array (read-only view)."""
        view = self._ids.view()
        view.flags.writeable = False
        return view

    @property
    def family(self) -> HashFamily:
        """Hash family used for code derivation."""
        return self._family

    def codes(self, seed: int, height: int) -> np.ndarray:
        """PET codes of every tag under ``seed`` (vectorized)."""
        return uniform_codes(seed, self._ids, height, self._family)

    def preloaded_codes(self, height: int) -> np.ndarray:
        """The Sec. 4.5 manufacturing-time codes of every tag."""
        return self.codes(PassivePetTag.MANUFACTURING_SEED, height)

    def build_active_tags(self, height: int) -> list[ActivePetTag]:
        """Materialise Algorithm 2 tag state machines."""
        return [
            ActivePetTag(int(tag_id), height, family=self._family)
            for tag_id in self._ids
        ]

    def build_passive_tags(self, height: int) -> list[PassivePetTag]:
        """Materialise Algorithm 4 (preloaded-code) tag state machines."""
        return [
            PassivePetTag(int(tag_id), height, family=self._family)
            for tag_id in self._ids
        ]

    def subset(self, tag_ids: Sequence[int]) -> "TagPopulation":
        """A new population holding only ``tag_ids`` (must be present)."""
        present = set(int(v) for v in self._ids)
        missing = [tid for tid in tag_ids if int(tid) not in present]
        if missing:
            raise ConfigurationError(
                f"{len(missing)} requested tags are not in the population "
                f"(first few: {missing[:3]})"
            )
        return TagPopulation(tag_ids, family=self._family)

    def union(self, other: "TagPopulation") -> "TagPopulation":
        """Population containing the tags of both (IDs must not clash)."""
        combined = set(int(v) for v in self._ids) | set(
            int(v) for v in other._ids
        )
        return TagPopulation(combined, family=self._family)
