"""RFID tag substrate.

Tag state machines implement the tag side of each protocol (PET
Algorithms 2 and 4, plus the baselines' framed behaviours), with
per-tag accounting of the computation and memory costs the paper
compares in Sec. 4.6.1 and Fig. 7.

The population utilities generate tag ID sets, apply dynamics
(join/leave between rounds) and mobility (movement between reader
fields), covering the Sec. 4.6.3 scenarios.
"""

from .base import Tag, TagCostCounters
from .epc import EpcCode, mixed_cargo_ids, shipment_ids
from .memory import MemoryModel, TagMemoryProfile, memory_profile
from .pet_tags import ActivePetTag, PassivePetTag
from .population import TagPopulation
from .dynamics import PopulationDynamics
from .mobility import MobilityModel, MobileTagField

__all__ = [
    "Tag",
    "TagCostCounters",
    "ActivePetTag",
    "PassivePetTag",
    "TagPopulation",
    "PopulationDynamics",
    "MobilityModel",
    "MobileTagField",
    "MemoryModel",
    "TagMemoryProfile",
    "memory_profile",
    "EpcCode",
    "shipment_ids",
    "mixed_cargo_ids",
]
