"""PET tag state machines (Algorithms 2 and 4).

Both variants hear two commands:

* :class:`~repro.core.messages.StartRound` — begin a round.  An
  :class:`ActivePetTag` hashes a fresh PET code from the broadcast seed
  (Algorithm 2 line 2); a :class:`PassivePetTag` keeps its preloaded
  code (Algorithm 4 line 1) and only notes the new path.
* :class:`~repro.core.messages.PrefixQuery` — compare the top ``j`` bits
  of the code against the path and respond on a match (lines 4-10 of
  both algorithms).

Cost counters are updated exactly where the paper charges cost: one hash
evaluation per round for the active variant, one bitwise comparison per
heard query for both.
"""

from __future__ import annotations

from ..core.messages import PrefixQuery, StartRound
from ..core.path import EstimatingPath
from ..errors import ProtocolError
from ..hashing import HashFamily, default_family, uniform_code
from .base import Tag


class _PetTagBase(Tag):
    """Shared query-answering logic for both PET tag variants."""

    def __init__(self, tag_id: int, height: int):
        super().__init__(tag_id)
        self._height = height
        self._code: int | None = None
        self._path: EstimatingPath | None = None

    @property
    def height(self) -> int:
        """PET code width ``H`` of this tag."""
        return self._height

    @property
    def current_code(self) -> int | None:
        """The code in effect for the current round (None before any)."""
        return self._code

    def hear(self, command: object) -> bool:
        if isinstance(command, StartRound):
            self._begin_round(command)
            return False
        if isinstance(command, PrefixQuery):
            return self._answer_query(command)
        # Commands of other protocols energize the tag but do not apply.
        return False

    def _begin_round(self, command: StartRound) -> None:
        raise NotImplementedError

    def _answer_query(self, query: PrefixQuery) -> bool:
        if self._code is None or self._path is None:
            raise ProtocolError(
                f"tag {self.tag_id} received PrefixQuery before StartRound"
            )
        self.costs.bitwise_comparisons += 1
        matches = self._path.matches_prefix(self._code, query.length)
        if matches:
            self.costs.responses_sent += 1
        return matches


class ActivePetTag(_PetTagBase):
    """Algorithm 2: hash a fresh code from the per-round seed.

    Requires an active tag — one on-chip hash evaluation per round.
    """

    def __init__(
        self,
        tag_id: int,
        height: int,
        family: HashFamily | None = None,
    ):
        super().__init__(tag_id, height)
        self._family = family or default_family()
        # Writable state: the current code plus the round's path register.
        self.costs.state_bits = 2 * height

    def _begin_round(self, command: StartRound) -> None:
        if command.seed is None:
            raise ProtocolError(
                f"active tag {self.tag_id} needs a per-round seed "
                f"(Algorithm 2); use PassivePetTag for seedless rounds"
            )
        self.costs.hash_evaluations += 1
        self._code = uniform_code(
            command.seed, self.tag_id, self._height, self._family
        )
        self._path = command.path


class PassivePetTag(_PetTagBase):
    """Algorithm 4 / Sec. 4.5: one preloaded code reused every round.

    The code is "burned in" at manufacturing by hashing the tag ID with a
    fixed seed (the paper suggests MD5/SHA-1 truncation); across rounds
    only the reader's estimating path changes.
    """

    #: Manufacturing-time seed shared by a production batch.  Any fixed
    #: value works; estimation randomness comes from the reader's paths.
    MANUFACTURING_SEED = 0x5EED_C0DE

    def __init__(
        self,
        tag_id: int,
        height: int,
        family: HashFamily | None = None,
        preloaded_code: int | None = None,
    ):
        super().__init__(tag_id, height)
        family = family or default_family()
        if preloaded_code is None:
            preloaded_code = uniform_code(
                self.MANUFACTURING_SEED, tag_id, height, family
            )
        if not 0 <= preloaded_code < (1 << height):
            raise ProtocolError(
                f"preloaded code {preloaded_code} out of range for "
                f"height {height}"
            )
        self._code = preloaded_code
        self.costs.preloaded_bits = height
        # Writable state: just the current path register.
        self.costs.state_bits = height

    @property
    def preloaded_code(self) -> int:
        """The immutable manufacturing-time PET code."""
        assert self._code is not None
        return self._code

    def _begin_round(self, command: StartRound) -> None:
        # No hashing, no seed needed: the preloaded code stays in force.
        self._path = command.path
