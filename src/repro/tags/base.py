"""Base tag abstractions and cost accounting.

A :class:`Tag` is a channel listener with a unique ID and cost counters.
Protocol-specific subclasses implement ``hear`` — the single entry point
through which the reader's command reaches the tag in each slot.

Cost counters model the resource comparison of Sec. 4.6.1: the number of
hash evaluations a tag performs (infeasible on passive tags), the number
of bitwise prefix comparisons (cheap), and bits of writable state used.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field


@dataclass
class TagCostCounters:
    """Per-tag computation and state accounting.

    Attributes
    ----------
    hash_evaluations:
        Random-code generations performed on-chip.  The paper's key
        overhead argument (Sec. 4.5) is that passive tags cannot afford
        one of these per round.
    bitwise_comparisons:
        Prefix comparisons performed (one per heard slot in PET).
    responses_sent:
        Slots in which the tag transmitted.
    state_bits:
        Writable memory bits the protocol requires on the tag.
    preloaded_bits:
        Read-only memory preloaded at manufacturing (PET: one 32-bit
        code; FNEB/LoF passive operation: one code per round).
    """

    hash_evaluations: int = 0
    bitwise_comparisons: int = 0
    responses_sent: int = 0
    state_bits: int = 0
    preloaded_bits: int = 0


class Tag(abc.ABC):
    """Abstract RFID tag: a channel listener with cost accounting."""

    def __init__(self, tag_id: int):
        self._tag_id = tag_id
        self.costs = TagCostCounters()

    @property
    def tag_id(self) -> int:
        """The tag's unique, manufacturer-assigned ID."""
        return self._tag_id

    @abc.abstractmethod
    def hear(self, command: object) -> bool:
        """Process a reader command; return True to respond this slot."""

    def __repr__(self) -> str:
        return f"{type(self).__name__}(tag_id={self._tag_id})"


@dataclass(frozen=True)
class TagDescriptor:
    """Static description of a tag for population bookkeeping.

    Attributes
    ----------
    tag_id:
        Unique ID.
    joined_round:
        Estimation round at which the tag entered the system (0 for the
        initial population) — used by the dynamic-tag-set scenarios.
    """

    tag_id: int
    joined_round: int = 0


@dataclass
class TagInventory:
    """A mutable set of tag descriptors with join/leave history."""

    descriptors: dict[int, TagDescriptor] = field(default_factory=dict)
    departures: list[int] = field(default_factory=list)

    def join(self, tag_id: int, round_index: int = 0) -> TagDescriptor:
        """Register a new tag; returns its descriptor."""
        descriptor = TagDescriptor(tag_id=tag_id, joined_round=round_index)
        self.descriptors[tag_id] = descriptor
        return descriptor

    def leave(self, tag_id: int) -> None:
        """Remove a tag, recording the departure."""
        if tag_id in self.descriptors:
            del self.descriptors[tag_id]
            self.departures.append(tag_id)

    def __len__(self) -> int:
        return len(self.descriptors)

    def __contains__(self, tag_id: int) -> bool:
        return tag_id in self.descriptors
