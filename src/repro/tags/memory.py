"""Tag memory/computation profiles — the Sec. 4.6.1 / Fig. 7 comparison.

For passive operation every protocol must preload whatever randomness its
tags would otherwise compute on-chip:

* **PET** preloads one ``H``-bit code, reused across all rounds — a
  constant 32 bits regardless of the accuracy target.
* **FNEB** needs a fresh uniform slot draw per round; preloading costs
  ``code_bits * m`` bits for ``m`` rounds.
* **LoF** needs a fresh geometric draw per round; likewise ``~ 32 * m``
  bits when preloaded as raw hash material.

Fig. 7 plots exactly these per-tag bit counts as the accuracy target
(hence ``m``) varies.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..errors import ConfigurationError


@dataclass(frozen=True)
class TagMemoryProfile:
    """Per-tag resource footprint of running one protocol passively.

    Attributes
    ----------
    protocol:
        Display name.
    preloaded_bits:
        Read-only bits burned in at manufacturing.
    state_bits:
        Writable scratch bits used during estimation.
    hash_evaluations:
        On-chip hash computations per estimation (0 for passive
        operation; what preloading buys).
    """

    protocol: str
    preloaded_bits: int
    state_bits: int
    hash_evaluations: int

    @property
    def total_bits(self) -> int:
        """Total on-tag memory footprint in bits."""
        return self.preloaded_bits + self.state_bits


class MemoryModel:
    """Computes passive-operation memory profiles for each protocol."""

    def __init__(self, code_bits: int = 32):
        if code_bits < 1:
            raise ConfigurationError(
                f"code_bits must be >= 1, got {code_bits}"
            )
        self._code_bits = code_bits

    def pet(self, rounds: int) -> TagMemoryProfile:
        """PET passive tags: one preloaded code, any number of rounds."""
        self._check_rounds(rounds)
        return TagMemoryProfile(
            protocol="PET",
            preloaded_bits=self._code_bits,
            state_bits=self._code_bits,  # current-path register
            hash_evaluations=0,
        )

    def fneb(self, rounds: int) -> TagMemoryProfile:
        """FNEB passive tags: one preloaded uniform draw per round."""
        self._check_rounds(rounds)
        return TagMemoryProfile(
            protocol="FNEB",
            preloaded_bits=self._code_bits * rounds,
            state_bits=self._code_bits,
            hash_evaluations=0,
        )

    def lof(self, rounds: int) -> TagMemoryProfile:
        """LoF passive tags: one preloaded geometric draw per round."""
        self._check_rounds(rounds)
        return TagMemoryProfile(
            protocol="LoF",
            preloaded_bits=self._code_bits * rounds,
            state_bits=self._code_bits,
            hash_evaluations=0,
        )

    @staticmethod
    def _check_rounds(rounds: int) -> None:
        if rounds < 1:
            raise ConfigurationError(f"rounds must be >= 1, got {rounds}")


def memory_profile(
    protocol: str, rounds: int, code_bits: int = 32
) -> TagMemoryProfile:
    """Convenience lookup: profile of ``protocol`` over ``rounds`` rounds."""
    model = MemoryModel(code_bits=code_bits)
    builders = {"pet": model.pet, "fneb": model.fneb, "lof": model.lof}
    key = protocol.lower()
    if key not in builders:
        raise ConfigurationError(
            f"unknown protocol {protocol!r}; expected one of "
            f"{sorted(builders)}"
        )
    return builders[key](rounds)
