"""EPC SGTIN-96-style tag identifiers.

Real RFID populations don't carry random IDs: an EPC-96 code packs a
header, a filter value, a company prefix, an item reference and a
serial number, so tags from one shipment share *most of their bits*.
PET's correctness must not depend on ID structure (the hash whitens
it); this module generates realistically-structured IDs so tests and
workloads can verify exactly that.

The layout follows SGTIN-96 (header 8 / filter 3 / partition 3 /
company 24 / item 20 / serial 38 — a fixed partition choice for
simplicity).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ConfigurationError

_HEADER = 0x30  # SGTIN-96
_FILTER_BITS = 3
_PARTITION_BITS = 3
_COMPANY_BITS = 24
_ITEM_BITS = 20
_SERIAL_BITS = 38


@dataclass(frozen=True)
class EpcCode:
    """A decoded SGTIN-96-style identifier."""

    filter_value: int
    company: int
    item: int
    serial: int

    def __post_init__(self) -> None:
        checks = (
            ("filter_value", self.filter_value, _FILTER_BITS),
            ("company", self.company, _COMPANY_BITS),
            ("item", self.item, _ITEM_BITS),
            ("serial", self.serial, _SERIAL_BITS),
        )
        for name, value, bits in checks:
            if not 0 <= value < (1 << bits):
                raise ConfigurationError(
                    f"{name} must fit in {bits} bits, got {value}"
                )

    def encode(self) -> int:
        """Pack into a 96-bit integer (header first)."""
        word = _HEADER
        word = (word << _FILTER_BITS) | self.filter_value
        word = (word << _PARTITION_BITS) | 5  # fixed partition
        word = (word << _COMPANY_BITS) | self.company
        word = (word << _ITEM_BITS) | self.item
        word = (word << _SERIAL_BITS) | self.serial
        return word

    def encode64(self) -> int:
        """The low 64 bits of the EPC — what this library uses as the
        tag ID (the dropped high bits are the constant header/company
        fields; uniqueness lives in item+serial)."""
        return self.encode() & ((1 << 64) - 1)

    @classmethod
    def decode(cls, word: int) -> "EpcCode":
        """Unpack a 96-bit integer produced by :meth:`encode`."""
        if not 0 <= word < (1 << 96):
            raise ConfigurationError("EPC word must fit in 96 bits")
        serial = word & ((1 << _SERIAL_BITS) - 1)
        word >>= _SERIAL_BITS
        item = word & ((1 << _ITEM_BITS) - 1)
        word >>= _ITEM_BITS
        company = word & ((1 << _COMPANY_BITS) - 1)
        word >>= _COMPANY_BITS
        word >>= _PARTITION_BITS
        filter_value = word & ((1 << _FILTER_BITS) - 1)
        word >>= _FILTER_BITS
        if word != _HEADER:
            raise ConfigurationError(
                f"not an SGTIN-96 word (header {word:#x})"
            )
        return cls(
            filter_value=filter_value,
            company=company,
            item=item,
            serial=serial,
        )


def shipment_ids(
    count: int,
    company: int,
    item: int,
    rng: np.random.Generator,
    filter_value: int = 1,
) -> list[int]:
    """Tag IDs of one shipment: same company/item, sequential serials.

    The worst case for a weak hash — all entropy in the low bits —
    and exactly what a cargo-counting deployment sees.
    """
    if count < 0:
        raise ConfigurationError(f"count must be >= 0, got {count}")
    start = int(rng.integers(0, (1 << _SERIAL_BITS) - count - 1))
    return [
        EpcCode(
            filter_value=filter_value,
            company=company,
            item=item,
            serial=start + offset,
        ).encode64()
        for offset in range(count)
    ]


def mixed_cargo_ids(
    pallets: int,
    items_per_pallet: int,
    rng: np.random.Generator,
) -> list[int]:
    """A multi-pallet cargo: several shipments from random companies."""
    if pallets < 0 or items_per_pallet < 0:
        raise ConfigurationError("counts must be >= 0")
    ids: list[int] = []
    for _ in range(pallets):
        company = int(rng.integers(0, 1 << _COMPANY_BITS))
        item = int(rng.integers(0, 1 << _ITEM_BITS))
        ids.extend(
            shipment_ids(items_per_pallet, company, item, rng)
        )
    return ids
