"""The unified request API and the one-call facade :func:`repro.estimate`.

Everything the library does — population synthesis, protocol
construction through the registry, round planning from an accuracy
contract, optional instrumentation — converges on a single typed
request model:

* :class:`EstimateRequest` — what a caller wants estimated: population
  spec, protocol + config, explicit seed-or-rng provenance, accuracy
  contract, tenant identity, and an optional deadline;
* :func:`resolve_request` — the single validation/dispatch path that
  turns a request into a :class:`ResolvedRequest` execution plan
  (protocol instance, materialised population, planned rounds, rng);
* :func:`execute_request` — runs a resolved plan through the scalar
  protocol path and stamps seed provenance into the result;
* :class:`EstimateResponse` — the service-shaped answer (status,
  result, latency, retry-after) that :mod:`repro.serve` returns.

:func:`estimate` is a thin synchronous wrapper over the same path, so
the facade, the CLI, and the async service share one pipeline::

    import repro

    result = repro.estimate(50_000, seed=7)
    result = repro.estimate(50_000, protocol="fneb", frame_size=2**16)
    result = repro.estimate(
        my_population,
        protocol="pet",
        accuracy=repro.AccuracyRequirement(0.05, 0.01),
    )

The first argument is either a true cardinality (a population of that
many random tags is synthesized from ``seed``), an existing
:class:`~repro.tags.population.TagPopulation`, or an iterable of tag
IDs.  Remaining keywords are forwarded to
:func:`repro.protocols.registry.make_protocol`, so every protocol's
constructor configuration is reachable from here.

Seed-or-rng provenance is explicit: pass ``seed=`` *or* ``rng=``,
never both — the combination is rejected with a
:class:`~repro.errors.ConfigurationError` instead of silently ignoring
the seed (the pre-service facade used to ignore it).
"""

from __future__ import annotations

import dataclasses
import time
from dataclasses import dataclass, field
from typing import Iterable, Mapping, MutableMapping

import numpy as np

from .config import AccuracyRequirement
from .errors import ConfigurationError
from .obs.registry import MetricsRegistry
from .obs.tracectx import TraceContext
from .protocols.base import CardinalityEstimatorProtocol, ProtocolResult
from .protocols.registry import make_protocol
from .tags.population import TagPopulation


def _resolve_population(
    tags_or_n: int | TagPopulation | Iterable[int],
    rng: np.random.Generator,
) -> TagPopulation:
    if isinstance(tags_or_n, TagPopulation):
        return tags_or_n
    if isinstance(tags_or_n, (int, np.integer)):
        if tags_or_n < 0:
            raise ConfigurationError(
                f"population size must be >= 0, got {tags_or_n}"
            )
        return TagPopulation.random(int(tags_or_n), rng)
    return TagPopulation(tags_or_n)


@dataclass(frozen=True)
class EstimateRequest:
    """One estimation request — the unit the whole library serves.

    Attributes
    ----------
    population:
        A true cardinality (random tags are synthesized from this
        request's rng), a :class:`~repro.tags.population.TagPopulation`,
        or an iterable of tag IDs.
    protocol:
        Registry name (see
        :func:`repro.protocols.registry.available_protocols`).
    config:
        Keywords forwarded to the protocol constructor via
        :func:`~repro.protocols.registry.make_protocol`.
    seed:
        Seed for all randomness (population synthesis and the
        estimation run).  Mutually exclusive with ``rng``.
    rng:
        Bring-your-own generator alternative to ``seed``.  Requests
        carrying a live generator cannot be replayed and report
        ``"rng"`` provenance.
    population_seed:
        Optional separate seed for population synthesis (integer
        populations only).  When set, the population is synthesized
        from its own ``default_rng(population_seed)`` stream — stable
        across requests, so the service can cache and share it — while
        round randomness still comes from ``seed``/``rng``.  Equivalent
        to passing the pre-built population explicitly.
    rounds:
        Estimation rounds.  Defaults to the protocol's own plan for
        ``accuracy`` (or the paper's 5 %/1 % contract when neither is
        given).  Explicit rounds win over ``accuracy``.
    accuracy:
        ``(epsilon, delta)`` contract used to plan ``rounds`` when they
        are not pinned explicitly.
    tenant:
        Multi-tenant identity; the service enforces per-tenant quotas
        and labels SLO metrics with it.
    deadline:
        Relative deadline in seconds.  The service answers ``expired``
        without touching a kernel when the request waits longer than
        this in the queue.  ``None`` means no deadline.
    request_id:
        Caller-chosen correlation id, echoed in the response.
    trace_context:
        Optional upstream :class:`~repro.obs.tracectx.TraceContext`.
        When set, the service joins the caller's distributed trace
        (its ``serve.request`` root span becomes a child of this
        context) instead of starting a fresh one; the response echoes
        the resulting ``trace_id``.
    """

    population: int | TagPopulation | Iterable[int]
    protocol: str = "pet"
    config: Mapping[str, object] = field(default_factory=dict)
    seed: int | None = None
    rng: np.random.Generator | None = field(
        default=None, repr=False, compare=False
    )
    population_seed: int | None = None
    rounds: int | None = None
    accuracy: AccuracyRequirement | None = None
    tenant: str = "default"
    deadline: float | None = None
    request_id: str | None = None
    trace_context: TraceContext | None = field(
        default=None, repr=False, compare=False
    )

    def seed_provenance(self) -> str:
        """Human/machine-readable description of the randomness source."""
        parts = []
        if self.rng is not None:
            parts.append("rng")
        elif self.seed is not None:
            parts.append(f"seed={self.seed}")
        else:
            parts.append("unseeded")
        if self.population_seed is not None:
            parts.append(f"population_seed={self.population_seed}")
        elif isinstance(self.population, TagPopulation):
            parts.append("population=explicit")
        elif not isinstance(self.population, (int, np.integer)):
            parts.append("population=ids")
        return "&".join(parts)


def request_cache_key(request: EstimateRequest) -> tuple | None:
    """Canonical idempotency key of a request, or ``None`` if uncacheable.

    Two requests with the same key are guaranteed to produce
    byte-identical ``ok`` results: the key captures every input the
    estimate depends on — protocol + canonical config, the population
    fingerprint (synthesized size + ``population_seed``), the request
    seed, and the round plan inputs (explicit ``rounds`` or the
    accuracy contract).  The serve tier's result cache
    (:class:`repro.serve.cache.ResultCache`) answers repeat keys
    without touching a kernel.

    Uncacheable (returns ``None``): requests carrying a live ``rng``
    (not replayable), unseeded requests, and explicit
    populations/ID-iterables (their identity is the object, not a
    cheap fingerprint).
    """
    if request.seed is None or request.rng is not None:
        return None
    if not isinstance(request.population, (int, np.integer)):
        return None
    accuracy = request.accuracy
    return (
        request.protocol,
        tuple(
            sorted(
                (key, repr(value))
                for key, value in request.config.items()
            )
        ),
        (
            int(request.population),
            None
            if request.population_seed is None
            else int(request.population_seed),
        ),
        int(request.seed),
        None if request.rounds is None else int(request.rounds),
        None
        if accuracy is None
        else (float(accuracy.epsilon), float(accuracy.delta)),
    )


@dataclass
class ResolvedRequest:
    """A validated execution plan for one :class:`EstimateRequest`.

    Produced by :func:`resolve_request`; consumed by
    :func:`execute_request` (scalar path) and by the micro-batching
    executor in :mod:`repro.serve.batching` (fused path).  Both paths
    are bit-identical for the same plan.
    """

    request: EstimateRequest
    protocol: CardinalityEstimatorProtocol
    population: TagPopulation
    rounds: int
    rng: np.random.Generator
    seed_provenance: str
    #: Idempotency key from :func:`request_cache_key`; ``None`` when
    #: the request is not replayable (live rng, explicit population).
    cache_key: tuple | None = None


def resolve_request(
    request: EstimateRequest,
    registry: MetricsRegistry | None = None,
    population_cache: MutableMapping[object, TagPopulation]
    | None = None,
) -> ResolvedRequest:
    """The single validation path every estimate goes through.

    Resolves, in order: seed-vs-rng provenance (passing both raises a
    :class:`~repro.errors.ConfigurationError`), the protocol instance
    (unknown names/keywords fail here), the population (synthesized,
    cached-by-``population_seed``, or passed through), and the round
    plan (explicit ``rounds`` beat the protocol's pinned config
    rounds, which beat planning from ``accuracy``, which beats the
    paper's default contract — the facade's historical precedence).

    ``population_cache`` lets the service share synthesized populations
    across requests that name the same ``(size, population_seed)``
    reader field; entries are keyed so different fields never collide.
    """
    if request.seed is not None and request.rng is not None:
        raise ConfigurationError(
            "pass seed= or rng=, not both; an explicit generator "
            "already carries its own seed state"
        )
    rng = (
        request.rng
        if request.rng is not None
        else np.random.default_rng(request.seed)
    )
    estimator = make_protocol(request.protocol, **dict(request.config))
    if registry is not None:
        estimator.instrument(registry)
    if request.population_seed is not None:
        if not isinstance(request.population, (int, np.integer)):
            raise ConfigurationError(
                "population_seed= applies to integer population specs "
                "only; explicit populations carry their own identity"
            )
        key = (int(request.population), int(request.population_seed))
        population = (
            population_cache.get(key)
            if population_cache is not None
            else None
        )
        if population is None:
            population = _resolve_population(
                request.population,
                np.random.default_rng(request.population_seed),
            )
            if population_cache is not None:
                population_cache[key] = population
    else:
        population = _resolve_population(request.population, rng)
    rounds = request.rounds
    if rounds is None:
        configured = getattr(
            getattr(estimator, "config", None), "rounds", None
        )
        if configured is not None:
            rounds = int(configured)
        else:
            rounds = estimator.plan_rounds(
                request.accuracy
                if request.accuracy is not None
                else AccuracyRequirement()
            )
    if rounds < 1:
        raise ConfigurationError(f"rounds must be >= 1, got {rounds}")
    return ResolvedRequest(
        request=request,
        protocol=estimator,
        population=population,
        rounds=rounds,
        rng=rng,
        seed_provenance=request.seed_provenance(),
        cache_key=request_cache_key(request),
    )


def execute_request(resolved: ResolvedRequest) -> ProtocolResult:
    """Run a resolved plan through the scalar protocol path."""
    result = resolved.protocol.estimate(
        resolved.population, resolved.rounds, resolved.rng
    )
    return dataclasses.replace(
        result, seed_provenance=resolved.seed_provenance
    )


#: Responses the service can answer with.  ``ok`` and ``degraded``
#: carry a result; the rest explain why there is none.
RESPONSE_STATUSES = ("ok", "degraded", "rejected", "expired", "error")


@dataclass(frozen=True)
class EstimateResponse:
    """The service-shaped answer to one :class:`EstimateRequest`.

    Attributes
    ----------
    status:
        One of :data:`RESPONSE_STATUSES`.  ``ok`` is a normal estimate
        (bit-identical to :func:`repro.estimate` under the same seed);
        ``degraded`` carries an estimate from the sampled fallback tier
        under overload; ``rejected`` is explicit backpressure (see
        ``retry_after``); ``expired`` means the deadline passed before
        a kernel ran; ``error`` wraps an execution failure.
    result:
        The full :class:`~repro.protocols.base.ProtocolResult` for
        ``ok``/``degraded`` answers, ``None`` otherwise.
    tenant / request_id:
        Echoed from the request.
    seed_provenance:
        The request's randomness description (see
        :meth:`EstimateRequest.seed_provenance`).
    latency_seconds:
        Submit-to-answer wall time as measured by the service; ``NaN``
        for synchronous facade calls.
    retry_after:
        For ``rejected`` answers, the seconds the caller should back
        off before retrying.
    detail:
        Human-readable explanation (quota name, error text, ...).
    trace_id:
        The distributed-trace id this request was served under (query
        the scrape endpoint's ``/traces/<id>`` for the full span
        timeline); ``None`` when the service ran untraced.
    """

    status: str
    result: ProtocolResult | None = None
    tenant: str = "default"
    request_id: str | None = None
    seed_provenance: str = "unseeded"
    latency_seconds: float = float("nan")
    retry_after: float | None = None
    detail: str = ""
    trace_id: str | None = None

    def __post_init__(self) -> None:
        if self.status not in RESPONSE_STATUSES:
            raise ConfigurationError(
                f"status must be one of {RESPONSE_STATUSES}, "
                f"got {self.status!r}"
            )

    @property
    def ok(self) -> bool:
        """Whether the response carries an estimate (ok or degraded)."""
        return self.status in ("ok", "degraded")

    @property
    def estimate(self) -> float:
        """The estimate, or ``NaN`` for answers without one."""
        return (
            float(self.result.n_hat)
            if self.result is not None
            else float("nan")
        )

    def to_dict(self) -> dict[str, object]:
        """JSON-ready view, embedding the result's common schema."""
        return {
            "status": self.status,
            "tenant": self.tenant,
            "request_id": self.request_id,
            "seed_provenance": self.seed_provenance,
            "latency_seconds": float(self.latency_seconds),
            "retry_after": self.retry_after,
            "detail": self.detail,
            "trace_id": self.trace_id,
            "result": (
                self.result.to_dict()
                if self.result is not None
                else None
            ),
        }


def respond(
    request: EstimateRequest,
    status: str,
    result: ProtocolResult | None = None,
    submitted_at: float | None = None,
    retry_after: float | None = None,
    detail: str = "",
    trace_id: str | None = None,
) -> EstimateResponse:
    """Build an :class:`EstimateResponse` echoing ``request`` identity."""
    latency = (
        time.perf_counter() - submitted_at
        if submitted_at is not None
        else float("nan")
    )
    return EstimateResponse(
        status=status,
        result=result,
        tenant=request.tenant,
        request_id=request.request_id,
        seed_provenance=request.seed_provenance(),
        latency_seconds=latency,
        retry_after=retry_after,
        detail=detail,
        trace_id=trace_id,
    )


def estimate(
    tags_or_n: int | TagPopulation | Iterable[int],
    protocol: str = "pet",
    *,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
    rounds: int | None = None,
    accuracy: AccuracyRequirement | None = None,
    registry: MetricsRegistry | None = None,
    **config: object,
) -> ProtocolResult:
    """Estimate a tag population's cardinality in one call.

    A thin synchronous wrapper over the unified request path: builds an
    :class:`EstimateRequest`, validates it through
    :func:`resolve_request`, and executes the plan — exactly the
    pipeline :mod:`repro.serve` coalesces concurrent requests through.

    Parameters
    ----------
    tags_or_n:
        A true cardinality (random tags are synthesized), a
        :class:`~repro.tags.population.TagPopulation`, or an iterable
        of tag IDs.
    protocol:
        Registry name (see
        :func:`repro.protocols.registry.available_protocols`).
    seed:
        Seed for all randomness (population synthesis and the
        estimation run).  Two calls with the same arguments and seed
        return identical results.  Mutually exclusive with ``rng`` —
        passing both raises a
        :class:`~repro.errors.ConfigurationError`.
    rng:
        Alternative to ``seed``: bring your own generator.
    rounds:
        Estimation rounds.  Defaults to the protocol's own plan for
        ``accuracy`` (or the paper's 5 %/1 % contract when neither is
        given).
    accuracy:
        ``(epsilon, delta)`` contract used to plan ``rounds`` when they
        are not pinned explicitly.
    registry:
        Metrics registry the run is recorded against (see
        :mod:`repro.obs`); defaults to the process-wide active one.
    **config:
        Forwarded to the protocol constructor via
        :func:`~repro.protocols.registry.make_protocol` —
        ``frame_size=`` for FNEB, ``tree_height=`` for PET, ...

    Returns
    -------
    ProtocolResult
        The estimate with its round/slot accounting and seed
        provenance.
    """
    request = EstimateRequest(
        population=tags_or_n,
        protocol=protocol,
        config=config,
        seed=seed,
        rng=rng,
        rounds=rounds,
        accuracy=accuracy,
    )
    return execute_request(resolve_request(request, registry=registry))
