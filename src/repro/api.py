"""The one-call estimation facade: :func:`repro.estimate`.

Everything the library does — population synthesis, protocol
construction through the registry, round planning from an accuracy
contract, optional instrumentation — behind a single call::

    import repro

    result = repro.estimate(50_000, seed=7)
    result = repro.estimate(50_000, protocol="fneb", frame_size=2**16)
    result = repro.estimate(
        my_population,
        protocol="pet",
        accuracy=repro.AccuracyRequirement(0.05, 0.01),
    )

The first argument is either a true cardinality (a population of that
many random tags is synthesized from ``seed``), an existing
:class:`~repro.tags.population.TagPopulation`, or an iterable of tag
IDs.  Remaining keywords are forwarded to
:func:`repro.protocols.registry.make_protocol`, so every protocol's
constructor configuration is reachable from here.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from .config import AccuracyRequirement
from .errors import ConfigurationError
from .obs.registry import MetricsRegistry
from .protocols.base import ProtocolResult
from .protocols.registry import make_protocol
from .tags.population import TagPopulation


def _resolve_population(
    tags_or_n: int | TagPopulation | Iterable[int],
    rng: np.random.Generator,
) -> TagPopulation:
    if isinstance(tags_or_n, TagPopulation):
        return tags_or_n
    if isinstance(tags_or_n, (int, np.integer)):
        if tags_or_n < 0:
            raise ConfigurationError(
                f"population size must be >= 0, got {tags_or_n}"
            )
        return TagPopulation.random(int(tags_or_n), rng)
    return TagPopulation(tags_or_n)


def estimate(
    tags_or_n: int | TagPopulation | Iterable[int],
    protocol: str = "pet",
    *,
    seed: int | None = None,
    rng: np.random.Generator | None = None,
    rounds: int | None = None,
    accuracy: AccuracyRequirement | None = None,
    registry: MetricsRegistry | None = None,
    **config: object,
) -> ProtocolResult:
    """Estimate a tag population's cardinality in one call.

    Parameters
    ----------
    tags_or_n:
        A true cardinality (random tags are synthesized), a
        :class:`~repro.tags.population.TagPopulation`, or an iterable
        of tag IDs.
    protocol:
        Registry name (see
        :func:`repro.protocols.registry.available_protocols`).
    seed:
        Seed for all randomness (population synthesis and the
        estimation run).  Two calls with the same arguments and seed
        return identical results.  Ignored when ``rng`` is given.
    rng:
        Alternative to ``seed``: bring your own generator.
    rounds:
        Estimation rounds.  Defaults to the protocol's own plan for
        ``accuracy`` (or the paper's 5 %/1 % contract when neither is
        given).
    accuracy:
        ``(epsilon, delta)`` contract used to plan ``rounds`` when they
        are not pinned explicitly.
    registry:
        Metrics registry the run is recorded against (see
        :mod:`repro.obs`); defaults to the process-wide active one.
    **config:
        Forwarded to the protocol constructor via
        :func:`~repro.protocols.registry.make_protocol` —
        ``frame_size=`` for FNEB, ``tree_height=`` for PET, ...

    Returns
    -------
    ProtocolResult
        The estimate with its round/slot accounting.
    """
    if rng is None:
        rng = np.random.default_rng(seed)
    estimator = make_protocol(protocol, **config)
    if registry is not None:
        estimator.instrument(registry)
    population = _resolve_population(tags_or_n, rng)
    if rounds is None:
        configured = getattr(
            getattr(estimator, "config", None), "rounds", None
        )
        if configured is not None:
            rounds = int(configured)
        else:
            rounds = estimator.plan_rounds(
                accuracy
                if accuracy is not None
                else AccuracyRequirement()
            )
    if rounds < 1:
        raise ConfigurationError(
            f"rounds must be >= 1, got {rounds}"
        )
    return estimator.estimate(population, rounds, rng)
