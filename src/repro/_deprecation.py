"""Warn-once bookkeeping for deprecation shims.

Deprecated modules warn from module level, so a plain
``warnings.warn`` fires again every time the module object is
re-executed — notably under ``importlib.reload``, which test harnesses
and long-lived notebook sessions do routinely.  The seen-set lives
*here*, in a module the shims import but never reload, so each
deprecation key warns exactly once per process no matter how many
times the shim itself is re-imported.
"""

from __future__ import annotations

import warnings

_SEEN: "set[str]" = set()


def warn_once(
    key: str, message: str, stacklevel: int = 3
) -> bool:
    """Emit ``message`` as a :class:`DeprecationWarning` once per ``key``.

    Returns whether the warning actually fired, which the shim tests
    use to assert the once-only contract.  ``stacklevel`` defaults to
    3: through this helper and the shim's module body to the importer.
    """
    if key in _SEEN:
        return False
    _SEEN.add(key)
    warnings.warn(message, DeprecationWarning, stacklevel=stacklevel)
    return True
