"""Geometric-distribution hashing, the primitive behind LoF and FM sketches.

LoF (Qian et al., PerCom 2008) has each tag select frame slot ``j`` with
probability ``2^-(j+1)`` — i.e. slot index = number of leading zeros of a
uniform bit string.  The same primitive underlies the Flajolet-Martin
sketch the paper cites as the ancestry of probabilistic counting.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .family import HashFamily, default_family


def _leading_zeros64(value: int) -> int:
    """Number of leading zero bits of a 64-bit integer (64 for zero)."""
    if value == 0:
        return 64
    return 64 - value.bit_length()


def geometric_bucket(
    seed: int,
    tag_id: int,
    max_bucket: int,
    family: HashFamily | None = None,
) -> int:
    """Return a geometric bucket index in ``[0, max_bucket]`` for one tag.

    Bucket ``j < max_bucket`` is selected with probability ``2^-(j+1)``;
    the residual mass lands in ``max_bucket`` (LoF frames clamp the tail
    into the last slot).
    """
    if max_bucket < 0:
        raise ConfigurationError(f"max_bucket must be >= 0, got {max_bucket}")
    family = family or default_family()
    zeros = _leading_zeros64(family.digest(seed, tag_id))
    return min(zeros, max_bucket)


def geometric_buckets(
    seed: int,
    tag_ids: np.ndarray,
    max_bucket: int,
    family: HashFamily | None = None,
) -> np.ndarray:
    """Vectorized :func:`geometric_bucket` over an array of tag IDs."""
    if max_bucket < 0:
        raise ConfigurationError(f"max_bucket must be >= 0, got {max_bucket}")
    family = family or default_family()
    digests = family.digest_many(seed, np.asarray(tag_ids, dtype=np.uint64))
    zeros = leading_zeros64_vec(digests)
    return np.minimum(zeros, max_bucket)


def geometric_bucket_matrix(
    seeds: np.ndarray,
    tag_ids: np.ndarray,
    max_bucket: int,
    family: HashFamily | None = None,
) -> np.ndarray:
    """:func:`geometric_buckets` for every seed of a vector at once.

    Returns a ``(len(seeds), len(tag_ids))`` matrix whose row ``i`` is
    bit-identical to ``geometric_buckets(seeds[i], ...)`` — the batched
    LoF engine relies on this to reproduce the scalar frames exactly.
    """
    if max_bucket < 0:
        raise ConfigurationError(f"max_bucket must be >= 0, got {max_bucket}")
    family = family or default_family()
    digests = family.digest_matrix(
        np.asarray(seeds, dtype=np.uint64),
        np.asarray(tag_ids, dtype=np.uint64),
    )
    return _clamped_buckets(digests, max_bucket)


def _clamped_buckets(digests: np.ndarray, max_bucket: int) -> np.ndarray:
    """Exact ``min(clz(digest), max_bucket)``, on the active backend.

    The reference implementation (float-exponent trick for clamps below
    53, ~7 array passes instead of ~24) lives in
    :mod:`repro.sim.backends.numpy_backend`; JIT backends fuse the
    whole clamp into one pass.  Every backend must match it
    bit-for-bit — this sits on the batched LoF hot path.
    """
    return _active_backend().clamped_buckets(digests, max_bucket)


def leading_zeros64_vec(values: np.ndarray) -> np.ndarray:
    """Vectorized, exact leading-zero count over a ``uint64`` array.

    Routed through the active kernel backend (see
    :mod:`repro.sim.backends`); the numpy reference propagates the top
    bit rightward then popcounts, JIT backends count per element.
    Float conversions are *not* exact here (a value just below a power
    of two rounds up and misreports its bit length), so every backend
    uses pure integer ops.
    """
    return _active_backend().leading_zeros64_vec(values)


def _active_backend():
    """The process-wide kernel backend (lazily imported; see family)."""
    global _backend_resolver
    if _backend_resolver is None:
        from ..sim.backends import active_backend

        _backend_resolver = active_backend
    return _backend_resolver()


_backend_resolver = None


def _popcount64(values: np.ndarray) -> np.ndarray:
    """SWAR popcount over a ``uint64`` array (wraparound is intended).

    Kept as a stable import point for the hash-quality diagnostics;
    the implementation is the reference backend's.
    """
    from ..sim.backends.numpy_backend import popcount64

    return popcount64(values)


def geometric_pmf(max_bucket: int) -> np.ndarray:
    """Exact selection probabilities for buckets ``0..max_bucket``.

    ``P(j) = 2^-(j+1)`` for ``j < max_bucket``; the final bucket absorbs
    the remaining ``2^-max_bucket`` tail.  Used by the sampled LoF
    simulator to draw per-bucket occupancy multinomially.
    """
    if max_bucket < 0:
        raise ConfigurationError(f"max_bucket must be >= 0, got {max_bucket}")
    pmf = np.array([2.0 ** -(j + 1) for j in range(max_bucket + 1)])
    pmf[max_bucket] = 2.0 ** -max_bucket if max_bucket > 0 else 1.0
    return pmf
