"""Geometric-distribution hashing, the primitive behind LoF and FM sketches.

LoF (Qian et al., PerCom 2008) has each tag select frame slot ``j`` with
probability ``2^-(j+1)`` — i.e. slot index = number of leading zeros of a
uniform bit string.  The same primitive underlies the Flajolet-Martin
sketch the paper cites as the ancestry of probabilistic counting.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .family import HashFamily, default_family


def _leading_zeros64(value: int) -> int:
    """Number of leading zero bits of a 64-bit integer (64 for zero)."""
    if value == 0:
        return 64
    return 64 - value.bit_length()


def geometric_bucket(
    seed: int,
    tag_id: int,
    max_bucket: int,
    family: HashFamily | None = None,
) -> int:
    """Return a geometric bucket index in ``[0, max_bucket]`` for one tag.

    Bucket ``j < max_bucket`` is selected with probability ``2^-(j+1)``;
    the residual mass lands in ``max_bucket`` (LoF frames clamp the tail
    into the last slot).
    """
    if max_bucket < 0:
        raise ConfigurationError(f"max_bucket must be >= 0, got {max_bucket}")
    family = family or default_family()
    zeros = _leading_zeros64(family.digest(seed, tag_id))
    return min(zeros, max_bucket)


def geometric_buckets(
    seed: int,
    tag_ids: np.ndarray,
    max_bucket: int,
    family: HashFamily | None = None,
) -> np.ndarray:
    """Vectorized :func:`geometric_bucket` over an array of tag IDs."""
    if max_bucket < 0:
        raise ConfigurationError(f"max_bucket must be >= 0, got {max_bucket}")
    family = family or default_family()
    digests = family.digest_many(seed, np.asarray(tag_ids, dtype=np.uint64))
    zeros = leading_zeros64_vec(digests)
    return np.minimum(zeros, max_bucket)


def geometric_bucket_matrix(
    seeds: np.ndarray,
    tag_ids: np.ndarray,
    max_bucket: int,
    family: HashFamily | None = None,
) -> np.ndarray:
    """:func:`geometric_buckets` for every seed of a vector at once.

    Returns a ``(len(seeds), len(tag_ids))`` matrix whose row ``i`` is
    bit-identical to ``geometric_buckets(seeds[i], ...)`` — the batched
    LoF engine relies on this to reproduce the scalar frames exactly.
    """
    if max_bucket < 0:
        raise ConfigurationError(f"max_bucket must be >= 0, got {max_bucket}")
    family = family or default_family()
    digests = family.digest_matrix(
        np.asarray(seeds, dtype=np.uint64),
        np.asarray(tag_ids, dtype=np.uint64),
    )
    return _clamped_buckets(digests, max_bucket)


def _clamped_buckets(digests: np.ndarray, max_bucket: int) -> np.ndarray:
    """Exact ``min(clz(digest), max_bucket)`` over a ``uint64`` array.

    For clamps below 53 the count only depends on the top ``max_bucket``
    bits, whose bit length a float64 conversion encodes *exactly* in its
    exponent field (integers < 2^53 are representable):

        min(clz(v), B) == B - bit_length(v >> (64 - B))

    This costs ~7 array passes instead of the ~24 of the general
    popcount-based clz, which matters on the batched LoF hot path.
    Wider clamps fall back to :func:`leading_zeros64_vec`.
    """
    if max_bucket == 0:
        return np.zeros(digests.shape, dtype=np.int64)
    if max_bucket > 52:
        return np.minimum(leading_zeros64_vec(digests), max_bucket)
    top = digests >> np.uint64(64 - max_bucket)
    exponents = top.astype(np.float64).view(np.uint64)
    exponents >>= np.uint64(52)
    # exponent field = bit_length + 1022 for top >= 1, 0 for top == 0
    bit_lengths = exponents.view(np.int64)
    bit_lengths -= 1022
    np.maximum(bit_lengths, 0, out=bit_lengths)
    np.subtract(max_bucket, bit_lengths, out=bit_lengths)
    return bit_lengths


def leading_zeros64_vec(values: np.ndarray) -> np.ndarray:
    """Vectorized, exact leading-zero count over a ``uint64`` array.

    Float conversions are *not* exact here (a value just below a power
    of two rounds up and misreports its bit length), so this uses pure
    integer ops: propagate the top bit rightward, then popcount the
    resulting mask — ``clz = 64 - popcount``.
    """
    v = np.array(values, dtype=np.uint64, copy=True)
    scratch = np.empty_like(v)
    for shift in (1, 2, 4, 8, 16, 32):
        np.right_shift(v, np.uint64(shift), out=scratch)
        v |= scratch
    counts = _popcount64(v)
    np.subtract(64, counts, out=counts)
    return counts


def _popcount64(values: np.ndarray) -> np.ndarray:
    """SWAR popcount over a ``uint64`` array (wraparound is intended).

    Same arithmetic as the textbook expression chain, restructured to
    reuse one scratch buffer — the batched LoF engine runs this on
    every hash word, where per-step allocations dominate.
    """
    m1 = np.uint64(0x5555555555555555)
    m2 = np.uint64(0x3333333333333333)
    m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    h01 = np.uint64(0x0101010101010101)
    with np.errstate(over="ignore"):
        scratch = values >> np.uint64(1)
        scratch &= m1
        x = values - scratch
        np.right_shift(x, np.uint64(2), out=scratch)
        scratch &= m2
        x &= m2
        x += scratch
        np.right_shift(x, np.uint64(4), out=scratch)
        x += scratch
        x &= m4
        x *= h01
        x >>= np.uint64(56)
        return x.astype(np.int64)


def geometric_pmf(max_bucket: int) -> np.ndarray:
    """Exact selection probabilities for buckets ``0..max_bucket``.

    ``P(j) = 2^-(j+1)`` for ``j < max_bucket``; the final bucket absorbs
    the remaining ``2^-max_bucket`` tail.  Used by the sampled LoF
    simulator to draw per-bucket occupancy multinomially.
    """
    if max_bucket < 0:
        raise ConfigurationError(f"max_bucket must be >= 0, got {max_bucket}")
    pmf = np.array([2.0 ** -(j + 1) for j in range(max_bucket + 1)])
    pmf[max_bucket] = 2.0 ** -max_bucket if max_bucket > 0 else 1.0
    return pmf
