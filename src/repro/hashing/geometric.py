"""Geometric-distribution hashing, the primitive behind LoF and FM sketches.

LoF (Qian et al., PerCom 2008) has each tag select frame slot ``j`` with
probability ``2^-(j+1)`` — i.e. slot index = number of leading zeros of a
uniform bit string.  The same primitive underlies the Flajolet-Martin
sketch the paper cites as the ancestry of probabilistic counting.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .family import HashFamily, default_family


def _leading_zeros64(value: int) -> int:
    """Number of leading zero bits of a 64-bit integer (64 for zero)."""
    if value == 0:
        return 64
    return 64 - value.bit_length()


def geometric_bucket(
    seed: int,
    tag_id: int,
    max_bucket: int,
    family: HashFamily | None = None,
) -> int:
    """Return a geometric bucket index in ``[0, max_bucket]`` for one tag.

    Bucket ``j < max_bucket`` is selected with probability ``2^-(j+1)``;
    the residual mass lands in ``max_bucket`` (LoF frames clamp the tail
    into the last slot).
    """
    if max_bucket < 0:
        raise ConfigurationError(f"max_bucket must be >= 0, got {max_bucket}")
    family = family or default_family()
    zeros = _leading_zeros64(family.digest(seed, tag_id))
    return min(zeros, max_bucket)


def geometric_buckets(
    seed: int,
    tag_ids: np.ndarray,
    max_bucket: int,
    family: HashFamily | None = None,
) -> np.ndarray:
    """Vectorized :func:`geometric_bucket` over an array of tag IDs."""
    if max_bucket < 0:
        raise ConfigurationError(f"max_bucket must be >= 0, got {max_bucket}")
    family = family or default_family()
    digests = family.digest_many(seed, np.asarray(tag_ids, dtype=np.uint64))
    zeros = leading_zeros64_vec(digests)
    return np.minimum(zeros, max_bucket)


def leading_zeros64_vec(values: np.ndarray) -> np.ndarray:
    """Vectorized, exact leading-zero count over a ``uint64`` array.

    Float conversions are *not* exact here (a value just below a power
    of two rounds up and misreports its bit length), so this uses pure
    integer ops: propagate the top bit rightward, then popcount the
    resulting mask — ``clz = 64 - popcount``.
    """
    v = np.array(values, dtype=np.uint64, copy=True)
    for shift in (1, 2, 4, 8, 16, 32):
        v |= v >> np.uint64(shift)
    return (64 - _popcount64(v)).astype(np.int64)


def _popcount64(values: np.ndarray) -> np.ndarray:
    """SWAR popcount over a ``uint64`` array (wraparound is intended)."""
    m1 = np.uint64(0x5555555555555555)
    m2 = np.uint64(0x3333333333333333)
    m4 = np.uint64(0x0F0F0F0F0F0F0F0F)
    h01 = np.uint64(0x0101010101010101)
    with np.errstate(over="ignore"):
        x = values - ((values >> np.uint64(1)) & m1)
        x = (x & m2) + ((x >> np.uint64(2)) & m2)
        x = (x + (x >> np.uint64(4))) & m4
        return ((x * h01) >> np.uint64(56)).astype(np.int64)


def geometric_pmf(max_bucket: int) -> np.ndarray:
    """Exact selection probabilities for buckets ``0..max_bucket``.

    ``P(j) = 2^-(j+1)`` for ``j < max_bucket``; the final bucket absorbs
    the remaining ``2^-max_bucket`` tail.  Used by the sampled LoF
    simulator to draw per-bucket occupancy multinomially.
    """
    if max_bucket < 0:
        raise ConfigurationError(f"max_bucket must be >= 0, got {max_bucket}")
    pmf = np.array([2.0 ** -(j + 1) for j in range(max_bucket + 1)])
    pmf[max_bucket] = 2.0 ** -max_bucket if max_bucket > 0 else 1.0
    return pmf
