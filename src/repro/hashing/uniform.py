"""Uniform hashing helpers: PET codes and Aloha-frame slot selection.

PET assigns each tag a uniform ``H``-bit random code, conceptually a leaf
of the estimating tree (Sec. 4.1: ``H(tagID) -> [0, 2^H - 1]``).  Framed
protocols (FNEB, USE, UPE, EZB) map each tag to a uniform slot of a frame.
Both derive from the same 64-bit hash family.
"""

from __future__ import annotations

import numpy as np

from ..errors import ConfigurationError
from .family import HashFamily, default_family


def uniform_code(
    seed: int,
    tag_id: int,
    bits: int,
    family: HashFamily | None = None,
) -> int:
    """Return a uniform ``bits``-bit PET code for one tag.

    Parameters
    ----------
    seed:
        The per-round random seed broadcast by the reader (Algorithm 2),
        or a fixed manufacturing seed for preloaded codes (Sec. 4.5).
    tag_id:
        The tag's unique ID.
    bits:
        Code width ``H``.
    family:
        Hash family; defaults to :func:`repro.hashing.default_family`.
    """
    family = family or default_family()
    return family.code(seed, tag_id, bits)


def uniform_codes(
    seed: int,
    tag_ids: np.ndarray,
    bits: int,
    family: HashFamily | None = None,
) -> np.ndarray:
    """Vectorized :func:`uniform_code` over an array of tag IDs."""
    family = family or default_family()
    return family.codes(seed, np.asarray(tag_ids, dtype=np.uint64), bits)


def uniform_slot(
    seed: int,
    tag_id: int,
    frame_size: int,
    family: HashFamily | None = None,
) -> int:
    """Return a uniform slot index in ``[0, frame_size)`` for one tag.

    Used by FNEB (first-nonempty-slot search frame) and the framed-Aloha
    estimators.  ``frame_size`` need not be a power of two; the 64-bit
    digest makes modulo bias negligible (< 2^-40 for frames < 2^24).
    """
    if frame_size < 1:
        raise ConfigurationError(f"frame_size must be >= 1, got {frame_size}")
    family = family or default_family()
    return family.digest(seed, tag_id) % frame_size


def uniform_slots(
    seed: int,
    tag_ids: np.ndarray,
    frame_size: int,
    family: HashFamily | None = None,
) -> np.ndarray:
    """Vectorized :func:`uniform_slot` over an array of tag IDs."""
    if frame_size < 1:
        raise ConfigurationError(f"frame_size must be >= 1, got {frame_size}")
    family = family or default_family()
    digests = family.digest_many(seed, np.asarray(tag_ids, dtype=np.uint64))
    return _slots_from_digests(digests, frame_size)


def uniform_slot_matrix(
    seeds: np.ndarray,
    tag_ids: np.ndarray,
    frame_size: int,
    family: HashFamily | None = None,
) -> np.ndarray:
    """:func:`uniform_slots` for every seed of a vector at once.

    Returns a ``(len(seeds), len(tag_ids))`` ``int64`` matrix whose row
    ``i`` is bit-identical to ``uniform_slots(seeds[i], ...)`` — the
    batched comparison engine relies on this to match the scalar
    protocols' per-round draws exactly.
    """
    if frame_size < 1:
        raise ConfigurationError(f"frame_size must be >= 1, got {frame_size}")
    family = family or default_family()
    digests = family.digest_matrix(
        np.asarray(seeds, dtype=np.uint64),
        np.asarray(tag_ids, dtype=np.uint64),
    )
    return _slots_from_digests(digests, frame_size)


def _slots_from_digests(digests: np.ndarray, frame_size: int) -> np.ndarray:
    """Reduce digests mod ``frame_size``; ``d % 2^k == d & (2^k - 1)``
    exactly, and the AND form is markedly cheaper than uint64 division
    on the batched engines' hot path.  ``digests`` is consumed in place
    (every caller passes a freshly built array)."""
    if frame_size & (frame_size - 1) == 0:
        digests &= np.uint64(frame_size - 1)
    else:
        digests %= np.uint64(frame_size)
    return digests.astype(np.int64)


def uniform_min_slots(
    seeds: np.ndarray,
    tag_ids: np.ndarray,
    frame_size: int,
    family: HashFamily | None = None,
) -> np.ndarray:
    """Per-seed minimum slot index: FNEB's sufficient statistic.

    Equivalent to ``uniform_slot_matrix(...).min(axis=1)`` but reduces
    before the int64 conversion, so the full-size slot matrix is never
    copied — the batched FNEB engine's hot path.
    """
    if frame_size < 1:
        raise ConfigurationError(f"frame_size must be >= 1, got {frame_size}")
    family = family or default_family()
    digests = family.digest_matrix(
        np.asarray(seeds, dtype=np.uint64),
        np.asarray(tag_ids, dtype=np.uint64),
    )
    if frame_size & (frame_size - 1) == 0:
        digests &= np.uint64(frame_size - 1)
    else:
        digests %= np.uint64(frame_size)
    return digests.min(axis=1).astype(np.int64)
