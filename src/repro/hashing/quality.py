"""Hash-quality diagnostics.

PET's analysis assumes the tag codes behave as i.i.d. uniform bits
(Sec. 4.2); the whole estimator inherits any hash defects.  This module
provides the statistical checks the test suite (and the validation
example) run against each hash family:

* :func:`uniformity_chi2` — chi-square of bucketed digests against the
  uniform law;
* :func:`avalanche_score` — mean fraction of output bits flipped by a
  single input-bit flip (ideal: 0.5);
* :func:`bit_bias` — per-output-bit deviation from the 50/50 law;
* :func:`prefix_collision_rate` — empirical probability that two tags
  share a ``j``-bit code prefix (ideal: ``2^-j``), the quantity PET's
  gray-depth law actually depends on.
"""

from __future__ import annotations

import math

import numpy as np

from ..errors import AnalysisError
from .family import HashFamily, default_family


def _digests(
    family: HashFamily, seed: int, count: int
) -> np.ndarray:
    keys = np.arange(count, dtype=np.uint64)
    return family.digest_many(seed, keys)


def uniformity_chi2(
    family: HashFamily | None = None,
    seed: int = 1,
    samples: int = 50_000,
    buckets: int = 256,
) -> float:
    """Chi-square statistic of bucketed digests vs uniform.

    Returns the statistic normalized by its degrees of freedom
    (``buckets - 1``): values near 1.0 indicate uniformity; values
    above ~1.5 at these sample sizes indicate structure.
    """
    if samples < buckets * 10:
        raise AnalysisError(
            f"need >= 10 samples per bucket ({buckets * 10}), "
            f"got {samples}"
        )
    family = family or default_family()
    digests = _digests(family, seed, samples)
    assignments = (digests % np.uint64(buckets)).astype(np.int64)
    counts = np.bincount(assignments, minlength=buckets)
    expected = samples / buckets
    chi2 = float(((counts - expected) ** 2 / expected).sum())
    return chi2 / (buckets - 1)


def avalanche_score(
    family: HashFamily | None = None,
    seed: int = 1,
    samples: int = 2_000,
) -> float:
    """Mean fraction of the 64 output bits flipped by one input flip.

    For each sample key, flips one random input bit and counts output
    Hamming distance; a good mixer scores ~0.5.
    """
    if samples < 1:
        raise AnalysisError(f"samples must be >= 1, got {samples}")
    family = family or default_family()
    rng = np.random.default_rng(seed)
    keys = rng.integers(0, 2**63, size=samples, dtype=np.int64).astype(
        np.uint64
    )
    flip_bits = rng.integers(0, 64, size=samples)
    flipped = keys ^ (np.uint64(1) << flip_bits.astype(np.uint64))
    base = family.digest_many(seed, keys)
    perturbed = family.digest_many(seed, flipped)
    from .geometric import _popcount64

    distances = _popcount64(base ^ perturbed)
    return float(distances.mean()) / 64.0


def bit_bias(
    family: HashFamily | None = None,
    seed: int = 1,
    samples: int = 50_000,
) -> np.ndarray:
    """Per-bit deviation of the digest bits from probability 1/2.

    Returns an array of 64 absolute deviations; a good family keeps
    every entry within a few standard errors (``0.5/sqrt(samples)``).
    """
    if samples < 1:
        raise AnalysisError(f"samples must be >= 1, got {samples}")
    family = family or default_family()
    digests = _digests(family, seed, samples)
    biases = np.empty(64)
    for bit in range(64):
        ones = int(
            ((digests >> np.uint64(bit)) & np.uint64(1)).sum()
        )
        biases[bit] = abs(ones / samples - 0.5)
    return biases


def prefix_collision_rate(
    prefix_bits: int,
    family: HashFamily | None = None,
    seed: int = 1,
    samples: int = 20_000,
    code_bits: int = 32,
) -> float:
    """Empirical ``P(two tags share a j-bit code prefix)``.

    This is the probability PET's gray-depth law is built on
    (``2^-j`` for uniform codes).  Measured by bucketing codes by their
    ``j``-bit prefix and counting collisions pairwise.
    """
    if not 1 <= prefix_bits <= code_bits:
        raise AnalysisError(
            f"prefix_bits must lie in [1, {code_bits}], got {prefix_bits}"
        )
    family = family or default_family()
    keys = np.arange(samples, dtype=np.uint64)
    codes = family.codes(seed, keys, code_bits)
    prefixes = codes >> np.uint64(code_bits - prefix_bits)
    _, counts = np.unique(prefixes, return_counts=True)
    colliding_pairs = float((counts * (counts - 1) // 2).sum())
    total_pairs = samples * (samples - 1) / 2
    return colliding_pairs / total_pairs


def summarize_family(
    family: HashFamily | None = None, seed: int = 1
) -> dict[str, float]:
    """All diagnostics in one dict (used by the validation example)."""
    family = family or default_family()
    return {
        "chi2_per_dof": uniformity_chi2(family, seed=seed),
        "avalanche": avalanche_score(family, seed=seed),
        "max_bit_bias": float(bit_bias(family, seed=seed).max()),
        "prefix8_collision_over_ideal": (
            prefix_collision_rate(8, family, seed=seed) / 2.0**-8
        ),
    }
