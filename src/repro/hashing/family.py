"""Seeded hash families producing reproducible 64-bit digests.

A :class:`HashFamily` turns ``(seed, tag_id)`` pairs into uniform 64-bit
values.  Three concrete families are provided:

* :class:`SplitMix64Family` — a fast integer mixer; the library default.
  Its vectorized path hashes millions of tags per second with numpy.
* :class:`Md5HashFamily` / :class:`Sha1HashFamily` — the digest functions
  the paper names for preloading PET codes during manufacturing
  (Sec. 4.5: "MD5 and SHA-1 ... trivially convert them to shorter
  length").  Slower, used in tests and the passive-tag example to match
  the paper literally.

All families guarantee:

* determinism: the same ``(seed, key)`` always yields the same digest;
* seed sensitivity: different seeds induce (statistically) independent
  mappings, which is what makes PET estimation rounds independent.
"""

from __future__ import annotations

import abc
import hashlib

import numpy as np

from ..errors import ConfigurationError

_MASK64 = (1 << 64) - 1

# SplitMix64 constants (Steele, Lea & Flood 2014, public domain).
_GOLDEN_GAMMA = 0x9E3779B97F4A7C15
_MIX_A = 0xBF58476D1CE4E5B9
_MIX_B = 0x94D049BB133111EB


def _normalized_seed(seed: int) -> int:
    """Reduce an arbitrary Python int seed to its canonical 64-bit form.

    Every hash path used to re-apply ``seed & _MASK64`` inline; this is
    the single place that normalization now happens, so the scalar and
    vectorized paths cannot drift apart on out-of-range seeds.
    """
    return seed & _MASK64


def splitmix64(value: int) -> int:
    """Mix a 64-bit integer through the SplitMix64 finalizer."""
    value = (value + _GOLDEN_GAMMA) & _MASK64
    value = ((value ^ (value >> 30)) * _MIX_A) & _MASK64
    value = ((value ^ (value >> 27)) * _MIX_B) & _MASK64
    return value ^ (value >> 31)


class HashFamily(abc.ABC):
    """A keyed family of hash functions ``h_seed: key -> uint64``."""

    @abc.abstractmethod
    def digest(self, seed: int, key: int) -> int:
        """Return a uniform 64-bit digest of ``key`` under ``seed``."""

    def digest_many(self, seed: int, keys: np.ndarray) -> np.ndarray:
        """Vectorized :meth:`digest`; returns a ``uint64`` array.

        The base implementation loops in Python; subclasses with a numpy
        fast path override this.
        """
        out = np.empty(len(keys), dtype=np.uint64)
        for index, key in enumerate(keys):
            out[index] = self.digest(seed, int(key))
        return out

    def code(self, seed: int, key: int, bits: int) -> int:
        """Return the top ``bits`` bits of the digest as a PET-style code.

        Truncation to the top bits mirrors the paper's "trivially convert
        [a 128-bit digest] to shorter length" (Sec. 4.5).
        """
        _check_bits(bits)
        return self.digest(seed, key) >> (64 - bits)

    def codes(self, seed: int, keys: np.ndarray, bits: int) -> np.ndarray:
        """Vectorized :meth:`code`; returns a ``uint64`` array."""
        _check_bits(bits)
        digests = self.digest_many(seed, keys)
        return digests >> np.uint64(64 - bits)

    def digest_matrix(self, seeds: np.ndarray, keys: np.ndarray) -> np.ndarray:
        """Digests for every (seed, key) pair: a ``(len(seeds), len(keys))``
        ``uint64`` matrix with ``out[i, j] == digest(seeds[i], keys[j])``.

        The base implementation loops over seeds calling
        :meth:`digest_many`; families with a numpy fast path override it
        with a single broadcast (the batched experiment engine computes
        many per-round code sets at once through this hook).
        """
        seeds = np.asarray(seeds)
        out = np.empty((len(seeds), len(keys)), dtype=np.uint64)
        for index, seed in enumerate(seeds):
            out[index] = self.digest_many(int(seed), keys)
        return out

    def code_matrix(
        self, seeds: np.ndarray, keys: np.ndarray, bits: int
    ) -> np.ndarray:
        """Vectorized :meth:`code` over every (seed, key) pair."""
        _check_bits(bits)
        return self.digest_matrix(seeds, keys) >> np.uint64(64 - bits)


def _check_bits(bits: int) -> None:
    if not 1 <= bits <= 64:
        raise ConfigurationError(f"code width must lie in [1, 64], got {bits}")


class SplitMix64Family(HashFamily):
    """Default fast hash family based on the SplitMix64 finalizer.

    The seed and key are combined with distinct odd multipliers before
    mixing, so ``h_seed`` and ``h_seed'`` behave as independent functions.
    """

    def digest(self, seed: int, key: int) -> int:
        mixed = (
            splitmix64(_normalized_seed(seed)) ^ (key & _MASK64)
        ) & _MASK64
        return splitmix64(mixed)

    def digest_many(self, seed: int, keys: np.ndarray) -> np.ndarray:
        keys64 = np.asarray(keys, dtype=np.uint64)
        seeded = np.uint64(splitmix64(_normalized_seed(seed)))
        return _splitmix64_vec(keys64 ^ seeded)

    def digest_matrix(self, seeds: np.ndarray, keys: np.ndarray) -> np.ndarray:
        """One broadcast over the (seeds x keys) grid; no Python loop."""
        seeds64 = np.asarray(seeds, dtype=np.uint64)
        keys64 = np.asarray(keys, dtype=np.uint64)
        seeded = _splitmix64_vec(seeds64)
        return _splitmix64_vec(keys64[None, :] ^ seeded[:, None])


def _splitmix64_vec(values: np.ndarray) -> np.ndarray:
    """Vectorized SplitMix64 finalizer, routed through the active
    kernel backend.

    The reference (numpy) implementation lives in
    :mod:`repro.sim.backends.numpy_backend`; selecting another backend
    (``--backend``, ``REPRO_BACKEND``) swaps the execution substrate of
    every hash pass while keeping the bit pattern — the backend
    contract tests enforce element-wise equality with the scalar
    :func:`splitmix64`.
    """
    return _active_backend().splitmix64_vec(values)


def _active_backend():
    """The process-wide kernel backend (lazily imported).

    The import happens at call time, not module-import time, because
    :mod:`repro.sim` sits above the hashing layer; by the first hash
    pass it is always importable.
    """
    global _backend_resolver
    if _backend_resolver is None:
        from ..sim.backends import active_backend

        _backend_resolver = active_backend
    return _backend_resolver()


_backend_resolver = None


class _DigestFamily(HashFamily):
    """Shared implementation for hashlib-backed families."""

    _algorithm: str = ""

    def digest(self, seed: int, key: int) -> int:
        hasher = hashlib.new(self._algorithm)
        hasher.update(seed.to_bytes(8, "big", signed=False))
        hasher.update(key.to_bytes(16, "big", signed=False))
        return int.from_bytes(hasher.digest()[:8], "big")


class Md5HashFamily(_DigestFamily):
    """MD5-based family: the digest function named in Sec. 4.5."""

    _algorithm = "md5"


class Sha1HashFamily(_DigestFamily):
    """SHA-1-based family: the other digest function named in Sec. 4.5."""

    _algorithm = "sha1"


_DEFAULT = SplitMix64Family()


def default_family() -> HashFamily:
    """Return the library-wide default hash family (SplitMix64)."""
    return _DEFAULT
