"""Hashing substrate for the PET reproduction.

RFID estimation protocols derive per-tag randomness from hash functions:

* PET maps each tag to a uniform ``H``-bit code (Sec. 4.1), either freshly
  per round from a reader-broadcast seed (active tags, Algorithm 2) or a
  preloaded MD5/SHA-1-style digest of the tag ID (passive tags, Sec. 4.5).
* LoF uses a geometric-distribution hash (slot ``j`` with probability
  ``2^-(j+1)``).
* FNEB / USE / UPE / EZB use uniform hashes into a frame of slots.

This package provides seeded, reproducible implementations of all of the
above, with both scalar (per-tag, used by the slot-level simulator) and
vectorized (numpy, used by the fast simulators) entry points.
"""

from .family import (
    HashFamily,
    Md5HashFamily,
    Sha1HashFamily,
    SplitMix64Family,
    default_family,
)
from .geometric import (
    geometric_bucket,
    geometric_bucket_matrix,
    geometric_buckets,
)
from .quality import summarize_family
from .uniform import (
    uniform_code,
    uniform_codes,
    uniform_min_slots,
    uniform_slot,
    uniform_slot_matrix,
    uniform_slots,
)

__all__ = [
    "HashFamily",
    "Md5HashFamily",
    "Sha1HashFamily",
    "SplitMix64Family",
    "default_family",
    "uniform_code",
    "uniform_codes",
    "uniform_slot",
    "uniform_slots",
    "uniform_slot_matrix",
    "uniform_min_slots",
    "geometric_bucket",
    "geometric_buckets",
    "geometric_bucket_matrix",
    "summarize_family",
]
