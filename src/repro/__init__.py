"""repro — reproduction of PET: Probabilistic Estimating Tree (Zheng & Li).

PET estimates the cardinality of an RFID tag population in
``O(log log n)`` time slots per round by locating the *gray node* along
a random estimating path of a conceptual binary tree of hashed tag
codes.  This package implements the full system: the PET protocol in
all its variants, the radio/tag/reader substrates it runs on, the
baseline estimators it is evaluated against (FNEB, LoF, USE/UPE/EZB)
and the classical identification protocols it is motivated by, plus
the analysis, simulation and benchmark machinery that regenerates
every table and figure of the paper's evaluation.

Quickstart
----------
>>> import repro
>>> result = repro.estimate(50_000, protocol="pet", seed=7, rounds=256)
>>> 40_000 < result.n_hat < 60_000
True

:func:`estimate` is the one-call facade over population synthesis, the
protocol registry, and round planning; the simulators and protocol
classes below are the full-control API behind it.  See
``examples/quickstart.py`` for the tour, ``DESIGN.md`` for the system
inventory, and ``docs/OBSERVABILITY.md`` for the metrics subsystem.
"""

from .api import (
    EstimateRequest,
    EstimateResponse,
    ResolvedRequest,
    estimate,
    execute_request,
    resolve_request,
)
from .config import (
    AccuracyRequirement,
    ChannelConfig,
    PetConfig,
    TimingConfig,
)
from .core import (
    PHI,
    SIGMA_H,
    EstimateResult,
    EstimatingPath,
    PetEstimator,
    PetTree,
    estimate_from_depths,
    rounds_required,
)
from .core.adaptive import AdaptivePetEstimator, AdaptiveResult
from .errors import (
    AnalysisError,
    ChannelError,
    ConfigurationError,
    EstimationError,
    ProtocolError,
    ReproError,
)
from .obs import (
    ConsoleSummaryExporter,
    InMemoryExporter,
    JsonLinesExporter,
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from .protocols import (
    FnebProtocol,
    FramedAlohaIdentification,
    LofProtocol,
    PetProtocol,
    ProtocolResult,
    TreeWalkIdentification,
    available_protocols,
    make_protocol,
    protocol_names,
)
from .obs.monitor import CardinalityMonitor, EpochReport
from .radio import SlottedChannel
from .reader import PetReader, ReaderController
from .sim import (
    ExperimentRunner,
    SampledSimulator,
    SlotLevelSimulator,
    VectorizedSimulator,
)
from .tags import TagPopulation

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # the one-call facade and the request model behind it
    "estimate",
    "EstimateRequest",
    "EstimateResponse",
    "ResolvedRequest",
    "resolve_request",
    "execute_request",
    # configuration
    "AccuracyRequirement",
    "PetConfig",
    "ChannelConfig",
    "TimingConfig",
    # core
    "PHI",
    "SIGMA_H",
    "EstimatingPath",
    "PetTree",
    "PetEstimator",
    "EstimateResult",
    "rounds_required",
    "estimate_from_depths",
    "AdaptivePetEstimator",
    "AdaptiveResult",
    "CardinalityMonitor",
    "EpochReport",
    # substrates
    "SlottedChannel",
    "TagPopulation",
    "PetReader",
    "ReaderController",
    # simulators
    "SlotLevelSimulator",
    "VectorizedSimulator",
    "SampledSimulator",
    "ExperimentRunner",
    # protocol zoo
    "PetProtocol",
    "FnebProtocol",
    "LofProtocol",
    "ProtocolResult",
    "FramedAlohaIdentification",
    "TreeWalkIdentification",
    "make_protocol",
    "available_protocols",
    "protocol_names",
    # observability
    "MetricsRegistry",
    "get_registry",
    "set_registry",
    "use_registry",
    "InMemoryExporter",
    "JsonLinesExporter",
    "ConsoleSummaryExporter",
    # errors
    "ReproError",
    "ConfigurationError",
    "ProtocolError",
    "ChannelError",
    "EstimationError",
    "AnalysisError",
]
