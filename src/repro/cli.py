"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro <experiment> [--runs N]
    pet-repro <experiment>

where ``<experiment>`` is one of ``fig3``, ``fig4``, ``table3``,
``table4``, ``table5``, ``fig5a``, ``fig5b``, ``fig6``, ``fig7``,
``ablations``, or ``all``.

With ``--metrics-out PATH`` the run is instrumented: every simulator
and protocol records into a :class:`~repro.obs.MetricsRegistry`, the
full metric/span/event stream is appended to ``PATH`` as JSON lines,
and a console summary is printed at the end.  Without the flag the
no-op registry is active and nothing is recorded.
"""

from __future__ import annotations

import argparse
from typing import Callable

from .config import PAPER_RUNS_PER_POINT
from .obs import (
    ConsoleSummaryExporter,
    JsonLinesExporter,
    MetricsRegistry,
    use_registry,
)
from .figures import (
    ablations,
    extensions,
    fig3_trace,
    fig4,
    fig5,
    fig6,
    fig7,
    table3,
)


def _run_fig5a() -> None:
    fig5.table(
        fig5.epsilon_sweep(
            epsilons=fig5.FIG5A_EPSILONS, validation_runs=0
        ),
        "Fig. 5a — fine epsilon sweep (delta = 1%)",
        "epsilon",
    ).print()


def _run_fig5b() -> None:
    fig5.table(
        fig5.delta_sweep(deltas=fig5.FIG5B_DELTAS, validation_runs=0),
        "Fig. 5b — fine delta sweep (epsilon = 5%)",
        "delta",
    ).print()


def _run_table4() -> None:
    fig5.table(
        fig5.epsilon_sweep(),
        "Table 4 — total slots vs epsilon (delta = 1%, n = 50,000)",
        "epsilon",
    ).print()


def _run_table5() -> None:
    fig5.table(
        fig5.delta_sweep(),
        "Table 5 — total slots vs delta (epsilon = 5%, n = 50,000)",
        "delta",
    ).print()


def _experiments(
    runs: int, workers: int | None = None
) -> dict[str, Callable[[], None]]:
    return {
        "fig3": fig3_trace.main,
        "fig4": lambda: fig4.main(runs=runs, workers=workers),
        "table3": table3.main,
        "table4": _run_table4,
        "table5": _run_table5,
        "fig5a": _run_fig5a,
        "fig5b": _run_fig5b,
        "fig6": lambda: fig6.main(runs=max(runs, 100)),
        "fig7": fig7.main,
        "ablations": ablations.main,
        "extensions": extensions.main,
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry; returns a process exit code."""
    parser = argparse.ArgumentParser(
        prog="pet-repro",
        description=(
            "Regenerate the tables and figures of 'PET: Probabilistic "
            "Estimating Tree for Large-Scale RFID Estimation'."
        ),
    )
    experiment_names = sorted(_experiments(1)) + ["all"]
    parser.add_argument(
        "experiment",
        choices=experiment_names,
        help="which paper artifact to regenerate",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=PAPER_RUNS_PER_POINT,
        help="simulation repetitions per data point (paper: 300)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for sweep experiments (default: serial); "
            "results are bit-identical for any worker count"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help=(
            "record metrics/spans/events and append them to PATH as "
            "JSON lines; also prints a console summary at the end"
        ),
    )
    parser.add_argument(
        "--metrics-summary",
        action="store_true",
        help=(
            "print the end-of-run metrics summary without writing a "
            "file (implied by --metrics-out)"
        ),
    )
    args = parser.parse_args(argv)
    experiments = _experiments(args.runs, args.workers)

    def run_selected() -> None:
        if args.experiment == "all":
            for name in sorted(experiments):
                print(f"===== {name} =====")
                experiments[name]()
                print()
        else:
            experiments[args.experiment]()

    if args.metrics_out is None and not args.metrics_summary:
        run_selected()
        return 0

    registry = MetricsRegistry()
    with use_registry(registry):
        run_selected()
    if args.metrics_out is not None:
        JsonLinesExporter(args.metrics_out).export(registry)
        print(f"metrics written to {args.metrics_out}")
    print()
    print(ConsoleSummaryExporter().render(registry))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
