"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro <experiment> [--runs N]
    pet-repro <experiment>

where ``<experiment>`` is one of ``fig3``, ``fig4``, ``table3``,
``table4``, ``table5``, ``fig5a``, ``fig5b``, ``fig6``, ``fig7``,
``ablations``, ``extensions``, ``protocols`` (the batched baseline
comparison sweep), or ``all``.

Two service commands dispatch to :mod:`repro.serve.cli` before the
experiment parser: ``python -m repro serve`` (JSON-lines estimation
service on stdin/stdout) and ``python -m repro loadgen`` (traffic
generator + SLO report).  See docs/SERVING.md.  A third,
``python -m repro traceview``, renders a terminal waterfall for one
distributed trace from a span file or live metrics endpoint
(:mod:`repro.obs.traceview`), and a fourth,
``python -m repro fleetview``, a per-shard terminal dashboard for a
sharded fleet from a live endpoint or saved snapshot
(:mod:`repro.obs.fleetview`).

With ``--metrics-out PATH`` the run is instrumented: every simulator
and protocol records into a :class:`~repro.obs.MetricsRegistry`, the
full metric/span/event stream is appended to ``PATH`` as JSON lines,
and a console summary is printed at the end.  Without any
observability flag the no-op registry is active and nothing is
recorded.

The diagnostics flags build on the same registry:

* ``--diagnose [PATH]`` attaches an
  :class:`~repro.obs.EstimatorHealth` monitor and a
  :class:`~repro.obs.RoundTraceRecorder`, prints the terminal
  diagnostics report, and writes the self-contained HTML report to
  ``PATH`` (default ``diagnostics.html``);
* ``--trace-out PATH`` writes the retained round-trace records (each
  deterministically replayable) as JSON lines;
* ``--trace-sample POLICY`` picks which rounds are retained —
  ``all``, ``every_k:K``, or ``outliers_only[:THRESHOLD]`` (default);
* ``--prom-out PATH`` writes the final metrics in OpenMetrics text
  format for Prometheus scrapes / textfile collectors;
* ``--progress`` renders a live stderr status line for sweep
  experiments (``fig4``, ``protocols``) with per-cell throughput and
  ETA — parallel sweeps stream worker heartbeats back to the parent;
* ``--profile-out PATH`` attaches the batched-kernel phase profiler
  (seed_matrix / hash_passes / reduction / finalize) and writes the
  per-phase wall-time report to PATH as JSON.
"""

from __future__ import annotations

import argparse
from typing import Callable

from .config import PAPER_RUNS_PER_POINT
from .errors import ReproError
from .obs import (
    ConsoleSummaryExporter,
    EstimatorHealth,
    JsonLinesExporter,
    MetricsRegistry,
    PhaseProfiler,
    PrometheusExporter,
    RoundTraceRecorder,
    SamplingPolicy,
    render_text_report,
    use_registry,
    write_html_report,
    write_trace,
)
from .obs.profile import write_phase_json
from .figures import (
    ablations,
    extensions,
    fig3_trace,
    fig4,
    fig5,
    fig6,
    fig7,
    table3,
)


def _run_fig5a() -> None:
    fig5.table(
        fig5.epsilon_sweep(
            epsilons=fig5.FIG5A_EPSILONS, validation_runs=0
        ),
        "Fig. 5a — fine epsilon sweep (delta = 1%)",
        "epsilon",
    ).print()


def _run_fig5b() -> None:
    fig5.table(
        fig5.delta_sweep(deltas=fig5.FIG5B_DELTAS, validation_runs=0),
        "Fig. 5b — fine delta sweep (epsilon = 5%)",
        "delta",
    ).print()


def _run_table4() -> None:
    fig5.table(
        fig5.epsilon_sweep(),
        "Table 4 — total slots vs epsilon (delta = 1%, n = 50,000)",
        "epsilon",
    ).print()


def _run_table5() -> None:
    fig5.table(
        fig5.delta_sweep(),
        "Table 5 — total slots vs delta (epsilon = 5%, n = 50,000)",
        "delta",
    ).print()


def _experiments(
    runs: int,
    workers: int | None = None,
    progress: bool = False,
) -> dict[str, Callable[[], None]]:
    return {
        "fig3": fig3_trace.main,
        "fig4": lambda: fig4.main(
            runs=runs, workers=workers, progress=progress
        ),
        "table3": table3.main,
        "table4": _run_table4,
        "table5": _run_table5,
        "fig5a": _run_fig5a,
        "fig5b": _run_fig5b,
        "fig6": lambda: fig6.main(runs=max(runs, 100)),
        "fig7": fig7.main,
        "ablations": ablations.main,
        "extensions": extensions.main,
        "protocols": lambda: table3.protocol_main(
            runs=runs, workers=workers, progress=progress
        ),
    }


def main(argv: list[str] | None = None) -> int:
    """CLI entry; returns a process exit code."""
    if argv is None:
        import sys

        argv = sys.argv[1:]
    # Service commands live in their own sub-CLI with their own flag
    # surface; dispatch before the experiment parser sees them.
    if argv and argv[0] in ("serve", "loadgen"):
        from .serve.cli import main as serve_main

        return serve_main(argv)
    if argv and argv[0] == "traceview":
        from .obs.traceview import main as traceview_main

        return traceview_main(argv[1:])
    if argv and argv[0] == "fleetview":
        from .obs.fleetview import main as fleetview_main

        return fleetview_main(argv[1:])
    parser = argparse.ArgumentParser(
        prog="pet-repro",
        description=(
            "Regenerate the tables and figures of 'PET: Probabilistic "
            "Estimating Tree for Large-Scale RFID Estimation'."
        ),
    )
    experiment_names = sorted(_experiments(1)) + ["all"]
    parser.add_argument(
        "experiment",
        choices=experiment_names,
        help="which paper artifact to regenerate",
    )
    parser.add_argument(
        "--runs",
        type=int,
        default=PAPER_RUNS_PER_POINT,
        help="simulation repetitions per data point (paper: 300)",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help=(
            "worker processes for sweep experiments (default: serial); "
            "results are bit-identical for any worker count"
        ),
    )
    parser.add_argument(
        "--metrics-out",
        metavar="PATH",
        default=None,
        help=(
            "record metrics/spans/events and append them to PATH as "
            "JSON lines; also prints a console summary at the end"
        ),
    )
    parser.add_argument(
        "--metrics-summary",
        action="store_true",
        help=(
            "print the end-of-run metrics summary without writing a "
            "file (implied by --metrics-out)"
        ),
    )
    parser.add_argument(
        "--diagnose",
        metavar="HTML_PATH",
        nargs="?",
        const="diagnostics.html",
        default=None,
        help=(
            "attach the estimator-health monitor and round-trace "
            "recorder, print the terminal diagnostics report, and "
            "write the HTML report to HTML_PATH "
            "(default: diagnostics.html)"
        ),
    )
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help=(
            "write the retained round-trace records (replayable) to "
            "PATH as JSON lines; implies the trace recorder"
        ),
    )
    parser.add_argument(
        "--trace-sample",
        metavar="POLICY",
        default="outliers_only",
        help=(
            "round-trace sampling policy: 'all', 'every_k:K', or "
            "'outliers_only[:THRESHOLD]' (default: outliers_only)"
        ),
    )
    parser.add_argument(
        "--prom-out",
        metavar="PATH",
        default=None,
        help=(
            "write the final metrics in OpenMetrics (Prometheus) text "
            "format to PATH"
        ),
    )
    parser.add_argument(
        "--progress",
        action="store_true",
        help=(
            "render a live stderr status line (throughput, ETA) for "
            "sweep experiments; parallel sweeps stream worker "
            "heartbeats back to the parent"
        ),
    )
    parser.add_argument(
        "--profile-out",
        metavar="PATH",
        default=None,
        help=(
            "profile the batched-kernel phases (seed_matrix, "
            "hash_passes, reduction, finalize) and write per-phase "
            "wall-time totals to PATH as JSON"
        ),
    )
    parser.add_argument(
        "--backend",
        metavar="NAME",
        default=None,
        help=(
            "kernel backend for the vectorized hash passes "
            "(overrides the REPRO_BACKEND environment variable; "
            "default: numpy). All backends are bit-identical; see "
            "docs/BACKENDS.md"
        ),
    )
    args = parser.parse_args(argv)
    if args.backend is not None:
        from .sim.backends import set_active_backend

        try:
            set_active_backend(args.backend)
        except ReproError as error:
            parser.error(str(error))
    experiments = _experiments(args.runs, args.workers, args.progress)

    def run_selected() -> None:
        if args.experiment == "all":
            for name in sorted(experiments):
                print(f"===== {name} =====")
                experiments[name]()
                print()
        else:
            experiments[args.experiment]()

    diagnostics_on = (
        args.diagnose is not None or args.trace_out is not None
    )
    observing = (
        args.metrics_out is not None
        or args.metrics_summary
        or args.prom_out is not None
        or args.profile_out is not None
        or diagnostics_on
    )
    if not observing:
        run_selected()
        return 0

    registry = MetricsRegistry()
    recorder = None
    health = None
    profiler = None
    if diagnostics_on:
        recorder = RoundTraceRecorder(
            policy=SamplingPolicy.parse(args.trace_sample),
            registry=registry,
        )
        health = EstimatorHealth(registry=registry)
    if args.profile_out is not None:
        profiler = PhaseProfiler(registry=registry)
    if diagnostics_on or profiler is not None:
        registry.attach_diagnostics(
            round_trace=recorder, health=health, profiler=profiler
        )
    with use_registry(registry):
        run_selected()
    if args.profile_out is not None:
        # The registry holds the merged cross-process phase timings
        # (worker profilers mirror into profile.*.seconds histograms,
        # which snapshot/merge carries back); the local profiler only
        # saw this process.
        write_phase_json(
            args.profile_out,
            registry,
            profiler=profiler,
            extra={"experiment": args.experiment},
        )
        print(f"phase profile written to {args.profile_out}")
    if args.metrics_out is not None:
        with JsonLinesExporter(args.metrics_out) as exporter:
            exporter.export(registry)
        print(f"metrics written to {args.metrics_out}")
    if args.prom_out is not None:
        PrometheusExporter(args.prom_out).export(registry)
        print(f"OpenMetrics written to {args.prom_out}")
    if args.trace_out is not None:
        assert recorder is not None
        written = write_trace(args.trace_out, recorder.records)
        print(
            f"{written} round-trace records written to {args.trace_out}"
        )
    if args.diagnose is not None:
        print()
        print(
            render_text_report(
                registry, health=health, recorder=recorder
            )
        )
        write_html_report(
            args.diagnose, registry, health=health, recorder=recorder
        )
        print(f"HTML diagnostics report written to {args.diagnose}")
    if args.metrics_out is not None or args.metrics_summary:
        print()
        print(ConsoleSummaryExporter().render(registry))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
