"""Tests for the continuous cardinality monitor."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs.monitor import (
    CardinalityMonitor,
    monitor_population,
    simulate_monitoring,
)


class TestValidation:
    def test_rejects_bad_parameters(self):
        with pytest.raises(ConfigurationError):
            CardinalityMonitor(rounds_per_epoch=0)
        with pytest.raises(ConfigurationError):
            CardinalityMonitor(rounds_per_epoch=10, alpha=0.0)
        with pytest.raises(ConfigurationError):
            CardinalityMonitor(rounds_per_epoch=10, warmup_epochs=0)

    def test_rejects_nonpositive_estimates(self):
        monitor = CardinalityMonitor(rounds_per_epoch=64)
        with pytest.raises(ConfigurationError):
            monitor.observe(0.0)


class TestDetection:
    def test_steady_stream_never_flags(self):
        monitor = CardinalityMonitor(rounds_per_epoch=256)
        for _ in range(30):
            monitor.observe(10_000.0)
        assert monitor.change_epochs == []

    def test_step_change_detected(self):
        monitor = CardinalityMonitor(rounds_per_epoch=256)
        for _ in range(5):
            monitor.observe(10_000.0)
        report = monitor.observe(14_000.0)  # +40% step
        assert report.changed
        assert monitor.change_epochs == [5]

    def test_detector_reanchors_after_change(self):
        monitor = CardinalityMonitor(rounds_per_epoch=256)
        for _ in range(5):
            monitor.observe(10_000.0)
        monitor.observe(14_000.0)
        # Subsequent epochs at the new level are quiet.
        for _ in range(5):
            report = monitor.observe(14_000.0)
            assert not report.changed

    def test_warmup_suppresses_flags(self):
        monitor = CardinalityMonitor(
            rounds_per_epoch=256, warmup_epochs=4
        )
        monitor.observe(10_000.0)
        report = monitor.observe(20_000.0)  # epoch 1 < warmup
        assert not report.changed

    def test_noise_within_tolerance_ignored(self):
        # 256 rounds -> relative std ~ 8%; 1-sigma wiggles stay quiet
        # at the default delta = 1% (threshold ~2.58 sigma).
        monitor = CardinalityMonitor(rounds_per_epoch=256)
        sigma = monitor.epoch_relative_std
        base = 10_000.0
        for offset in (1, -1, 1, -1, 1, -1):
            monitor.observe(base * (1 + offset * sigma))
        assert monitor.change_epochs == []

    def test_first_report_has_nan_z(self):
        monitor = CardinalityMonitor(rounds_per_epoch=64)
        report = monitor.observe(5_000.0)
        assert math.isnan(report.z_score)


class TestHelpers:
    def test_monitor_population_stream(self):
        reports = monitor_population(
            [100.0, 100.0, 100.0, 100.0, 100.0, 200.0],
            rounds_per_epoch=256,
        )
        assert len(reports) == 6
        assert reports[-1].changed

    def test_simulate_monitoring_tracks_real_change(self):
        # 12 epochs at 5k, then a jump to 15k: the monitor should flag
        # at or shortly after the jump, and nowhere in steady state
        # after warm-up settles.
        sizes = [5_000] * 12 + [15_000] * 4
        reports = simulate_monitoring(
            sizes, rounds_per_epoch=512, seed=3
        )
        flagged = [r.epoch for r in reports if r.changed]
        assert any(12 <= e <= 13 for e in flagged)
        assert not any(5 <= e < 12 for e in flagged)


class TestObsIntegration:
    """Satellite: the monitor is part of the obs surface now."""

    def test_shim_and_obs_expose_the_same_class(self):
        import warnings

        with warnings.catch_warnings():
            # The shim's DeprecationWarning is asserted in
            # test_monitor_shim.py; here we only need its attributes.
            warnings.simplefilter("ignore", DeprecationWarning)
            import repro.monitor as shim
        import repro.obs as obs
        import repro.obs.monitor as home

        assert shim.CardinalityMonitor is home.CardinalityMonitor
        assert obs.CardinalityMonitor is home.CardinalityMonitor
        assert shim.EpochReport is home.EpochReport

    def test_drift_emits_event_and_counter(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        monitor = CardinalityMonitor(
            rounds_per_epoch=256, registry=registry
        )
        for _ in range(6):
            monitor.observe(100.0)
        monitor.observe(500.0)
        counters = registry.snapshot()["counters"]
        assert counters["monitor.drift.alerts"] == 1
        (event,) = [
            e for e in registry.events if e["name"] == "monitor.drift"
        ]
        assert event["estimate"] == 500.0
        assert abs(event["z_score"]) > 0

    def test_steady_stream_emits_nothing(self):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        monitor = CardinalityMonitor(
            rounds_per_epoch=256, registry=registry
        )
        for _ in range(10):
            monitor.observe(100.0)
        assert not registry.events
        assert "monitor.drift.alerts" not in (
            registry.snapshot()["counters"]
        )

    def test_active_registry_is_default(self):
        from repro.obs import MetricsRegistry, use_registry

        registry = MetricsRegistry()
        with use_registry(registry):
            monitor = CardinalityMonitor(rounds_per_epoch=256)
        for _ in range(6):
            monitor.observe(100.0)
        monitor.observe(500.0)
        assert any(
            e["name"] == "monitor.drift" for e in registry.events
        )
