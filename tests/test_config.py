"""Tests for the configuration dataclasses."""

from __future__ import annotations

import pytest

from repro.config import (
    AccuracyRequirement,
    ChannelConfig,
    PetConfig,
    TimingConfig,
)
from repro.errors import ConfigurationError


class TestAccuracyRequirement:
    def test_defaults_match_paper(self):
        requirement = AccuracyRequirement()
        assert requirement.epsilon == 0.05
        assert requirement.delta == 0.01

    def test_interval_scales_with_n(self):
        requirement = AccuracyRequirement(0.05, 0.01)
        low, high = requirement.interval(50_000)
        assert low == pytest.approx(47_500)
        assert high == pytest.approx(52_500)

    def test_contains_accepts_inside_values(self):
        requirement = AccuracyRequirement(0.05, 0.01)
        assert requirement.contains(50_000, 50_000)
        assert requirement.contains(47_500, 50_000)
        assert requirement.contains(52_500, 50_000)

    def test_contains_rejects_outside_values(self):
        requirement = AccuracyRequirement(0.05, 0.01)
        assert not requirement.contains(47_499, 50_000)
        assert not requirement.contains(52_501, 50_000)

    @pytest.mark.parametrize("epsilon", [0.0, 1.0, -0.1, 1.5])
    def test_rejects_bad_epsilon(self, epsilon):
        with pytest.raises(ConfigurationError):
            AccuracyRequirement(epsilon=epsilon)

    @pytest.mark.parametrize("delta", [0.0, 1.0, -0.01])
    def test_rejects_bad_delta(self, delta):
        with pytest.raises(ConfigurationError):
            AccuracyRequirement(delta=delta)


class TestPetConfig:
    def test_defaults(self):
        config = PetConfig()
        assert config.tree_height == 32
        assert config.binary_search
        assert not config.passive_tags
        assert config.rounds is None

    @pytest.mark.parametrize("height", [0, 65, -3])
    def test_rejects_bad_height(self, height):
        with pytest.raises(ConfigurationError):
            PetConfig(tree_height=height)

    def test_rejects_nonpositive_rounds(self):
        with pytest.raises(ConfigurationError):
            PetConfig(rounds=0)

    def test_with_rounds_preserves_other_fields(self):
        config = PetConfig(tree_height=16, binary_search=False)
        updated = config.with_rounds(7)
        assert updated.rounds == 7
        assert updated.tree_height == 16
        assert not updated.binary_search
        # frozen: original unchanged
        assert config.rounds is None


class TestChannelConfig:
    def test_default_is_lossless(self):
        assert ChannelConfig().lossless

    def test_loss_makes_not_lossless(self):
        assert not ChannelConfig(loss_probability=0.1).lossless
        assert not ChannelConfig(capture_probability=0.1).lossless

    @pytest.mark.parametrize("value", [-0.1, 1.1])
    def test_rejects_bad_probabilities(self, value):
        with pytest.raises(ConfigurationError):
            ChannelConfig(loss_probability=value)
        with pytest.raises(ConfigurationError):
            ChannelConfig(capture_probability=value)


class TestTimingConfig:
    def test_slot_duration_positive_and_monotone(self):
        timing = TimingConfig()
        short = timing.slot_duration_us(1)
        long = timing.slot_duration_us(32)
        assert 0 < short < long

    def test_rejects_negative_payload(self):
        with pytest.raises(ConfigurationError):
            TimingConfig().slot_duration_us(-1)

    def test_rejects_bad_bitrates(self):
        with pytest.raises(ConfigurationError):
            TimingConfig(reader_bitrate_bps=0)
        with pytest.raises(ConfigurationError):
            TimingConfig(tag_bitrate_bps=-1)

    def test_rejects_negative_overheads(self):
        with pytest.raises(ConfigurationError):
            TimingConfig(command_overhead_bits=-1)
        with pytest.raises(ConfigurationError):
            TimingConfig(turnaround_us=-1.0)
