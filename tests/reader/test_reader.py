"""Tests for the PET reader state machine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PetConfig
from repro.core.path import EstimatingPath
from repro.core.tree import PetTree
from repro.radio.channel import SlottedChannel
from repro.reader.reader import PetReader
from repro.tags.pet_tags import PassivePetTag
from repro.tags.population import TagPopulation


def build_channel(codes: list[int], height: int) -> SlottedChannel:
    channel = SlottedChannel(rng=np.random.default_rng(0))
    for index, code in enumerate(codes):
        channel.attach(
            PassivePetTag(index, height, preloaded_code=code)
        )
    return channel


class TestRoundExecution:
    @pytest.mark.parametrize("binary", [False, True])
    def test_depth_matches_explicit_tree(self, binary):
        rng = np.random.default_rng(12)
        height = 8
        codes = [int(c) for c in rng.integers(0, 256, size=12)]
        channel = build_channel(codes, height)
        reader = PetReader(
            channel,
            config=PetConfig(
                tree_height=height,
                binary_search=binary,
                passive_tags=True,
                rounds=1,
            ),
            rng=rng,
        )
        tree = PetTree(height, codes)
        for _ in range(20):
            path = EstimatingPath.random(height, rng)
            depth, slots = reader.run_round(path, 0)
            assert depth == tree.gray_depth(path)
            assert slots >= 1

    def test_empty_population_depth_zero(self):
        channel = build_channel([], 8)
        reader = PetReader(
            channel,
            config=PetConfig(
                tree_height=8, passive_tags=True, rounds=1
            ),
            rng=np.random.default_rng(0),
        )
        path = EstimatingPath.from_string("10101010")
        depth, _ = reader.run_round(path, 0)
        assert depth == 0

    def test_active_rounds_broadcast_seed(self):
        channel = SlottedChannel(rng=np.random.default_rng(0))
        population = TagPopulation.sequential(10)
        channel.attach_all(population.build_active_tags(8))
        reader = PetReader(
            channel,
            config=PetConfig(tree_height=8, rounds=1),
            rng=np.random.default_rng(1),
        )
        command = reader.start_round(
            EstimatingPath.from_string("00000000")
        )
        assert command.seed is not None

    def test_passive_rounds_send_no_seed(self):
        channel = build_channel([1], 8)
        reader = PetReader(
            channel,
            config=PetConfig(
                tree_height=8, passive_tags=True, rounds=1
            ),
            rng=np.random.default_rng(1),
        )
        assert reader.draw_seed() is None


class TestSlotAccounting:
    def test_binary_round_is_five_slots_at_h32(self):
        rng = np.random.default_rng(2)
        codes = [int(c) for c in rng.integers(0, 2**32, size=200)]
        channel = build_channel(codes, 32)
        reader = PetReader(
            channel,
            config=PetConfig(passive_tags=True, rounds=1),
            rng=rng,
        )
        path = EstimatingPath.random(32, rng)
        _, slots = reader.run_round(path, 0)
        assert slots == 5

    def test_trace_includes_start_and_queries(self):
        channel = build_channel([0b0001], 4)
        reader = PetReader(
            channel,
            config=PetConfig(
                tree_height=4,
                binary_search=False,
                passive_tags=True,
                rounds=1,
            ),
            rng=np.random.default_rng(0),
        )
        path = EstimatingPath.from_string("0001")
        _, slots = reader.run_round(path, 0)
        # Trace = 1 start broadcast + the query slots.
        assert channel.trace.total_slots == slots + 1
        assert channel.trace.events[0].command.startswith("start")
