"""Tests for the multi-reader controller (Sec. 4.6.3 scenarios)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PetConfig
from repro.core.estimator import PetEstimator
from repro.core.path import EstimatingPath
from repro.core.tree import PetTree
from repro.errors import ProtocolError
from repro.radio.channel import SlottedChannel
from repro.reader.controller import ReaderController
from repro.tags.pet_tags import PassivePetTag


HEIGHT = 8


def split_deployment(
    codes: list[int], num_readers: int, duplicate_every: int = 0
) -> list[SlottedChannel]:
    """Scatter tags over readers; optionally attach every k-th tag to
    two channels (the overlap scenario)."""
    channels = [
        SlottedChannel(rng=np.random.default_rng(i))
        for i in range(num_readers)
    ]
    for index, code in enumerate(codes):
        tag = PassivePetTag(index, HEIGHT, preloaded_code=code)
        home = index % num_readers
        channels[home].attach(tag)
        if duplicate_every and index % duplicate_every == 0:
            other = (home + 1) % num_readers
            channels[other].attach(
                PassivePetTag(index, HEIGHT, preloaded_code=code)
            )
    return channels


class TestController:
    def test_requires_a_reader(self):
        with pytest.raises(ProtocolError):
            ReaderController([])

    def test_aggregate_matches_global_tree(self):
        rng = np.random.default_rng(21)
        codes = [int(c) for c in rng.integers(0, 256, size=30)]
        channels = split_deployment(codes, num_readers=3)
        controller = ReaderController(
            channels,
            config=PetConfig(
                tree_height=HEIGHT, passive_tags=True, rounds=1
            ),
            rng=rng,
        )
        tree = PetTree(HEIGHT, codes)
        for _ in range(15):
            path = EstimatingPath.random(HEIGHT, rng)
            depth, _ = controller.run_round(path, 0)
            assert depth == tree.gray_depth(path)

    def test_duplicates_do_not_change_depth(self):
        # Sec. 4.6.3: a tag heard by several readers counts once.
        rng = np.random.default_rng(22)
        codes = [int(c) for c in rng.integers(0, 256, size=30)]
        clean = split_deployment(codes, 3, duplicate_every=0)
        overlapped = split_deployment(codes, 3, duplicate_every=2)
        config = PetConfig(
            tree_height=HEIGHT, passive_tags=True, rounds=1
        )
        clean_ctrl = ReaderController(
            clean, config=config, rng=np.random.default_rng(1)
        )
        dup_ctrl = ReaderController(
            overlapped, config=config, rng=np.random.default_rng(1)
        )
        for _ in range(15):
            path = EstimatingPath.random(HEIGHT, rng)
            depth_clean, _ = clean_ctrl.run_round(path, 0)
            depth_dup, _ = dup_ctrl.run_round(path, 0)
            assert depth_clean == depth_dup

    def test_wall_clock_slots_counted_once_across_readers(self):
        rng = np.random.default_rng(23)
        codes = [int(c) for c in rng.integers(0, 256, size=30)]
        channels = split_deployment(codes, 4)
        controller = ReaderController(
            channels,
            config=PetConfig(
                tree_height=HEIGHT, passive_tags=True, rounds=1
            ),
            rng=rng,
        )
        path = EstimatingPath.random(HEIGHT, rng)
        _, slots = controller.run_round(path, 0)
        # Readers query concurrently: the controller charges one slot
        # per probe regardless of reader count.
        assert slots <= 4  # ceil(log2 8) + possible depth-0 check

    def test_full_estimation_through_estimator(self):
        rng = np.random.default_rng(24)
        codes = [int(c) for c in rng.integers(0, 256, size=40)]
        channels = split_deployment(codes, 2)
        config = PetConfig(
            tree_height=HEIGHT, passive_tags=True, rounds=64
        )
        controller = ReaderController(channels, config=config, rng=rng)
        estimator = PetEstimator(config=config, rng=rng)
        result = estimator.run(controller)
        assert 5 < result.n_hat < 400  # sane for n = 40 at 64 rounds
