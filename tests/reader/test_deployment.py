"""Tests for geometric reader deployment."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PetConfig
from repro.core.estimator import PetEstimator
from repro.errors import ConfigurationError
from repro.reader.controller import ReaderController
from repro.reader.deployment import Deployment, ReaderPlacement
from repro.tags.pet_tags import PassivePetTag
from repro.tags.population import TagPopulation


class TestReaderPlacement:
    def test_covers_inside(self):
        reader = ReaderPlacement(x=0.0, y=0.0, radius=5.0)
        assert reader.covers(3.0, 4.0)  # on the circle
        assert reader.covers(0.0, 0.0)
        assert not reader.covers(3.1, 4.1)

    def test_rejects_bad_radius(self):
        with pytest.raises(ConfigurationError):
            ReaderPlacement(0, 0, 0)


class TestDeployment:
    def test_grid_counts(self):
        deployment = Deployment.grid(100, 60, rows=2, cols=3)
        assert len(deployment.readers) == 6

    def test_grid_covers_region(self):
        deployment = Deployment.grid(100, 60, rows=2, cols=3)
        rng = np.random.default_rng(0)
        population = TagPopulation.random(500, rng)
        field = deployment.scatter_tags(population, rng)
        assert field.covered_tags == set(
            int(i) for i in population.tag_ids
        )

    def test_overlap_exists_in_grid(self):
        deployment = Deployment.grid(100, 100, rows=2, cols=2)
        rng = np.random.default_rng(1)
        population = TagPopulation.random(2000, rng)
        field = deployment.scatter_tags(population, rng)
        assert len(field.duplicated_tags) > 0

    def test_undersized_radius_raises(self):
        deployment = Deployment(
            100, 100, [ReaderPlacement(50, 50, 1.0)]
        )
        rng = np.random.default_rng(2)
        population = TagPopulation.random(50, rng)
        with pytest.raises(ConfigurationError):
            deployment.scatter_tags(population, rng)

    def test_rejects_degenerate_inputs(self):
        with pytest.raises(ConfigurationError):
            Deployment(0, 10, [ReaderPlacement(0, 0, 1)])
        with pytest.raises(ConfigurationError):
            Deployment(10, 10, [])
        with pytest.raises(ConfigurationError):
            Deployment.grid(10, 10, rows=0, cols=1)


class TestEndToEndDeployment:
    def test_estimation_over_deployed_grid(self):
        height = 16
        deployment = Deployment.grid(80, 80, rows=2, cols=2)
        rng = np.random.default_rng(3)
        population = TagPopulation.random(300, rng)
        field = deployment.scatter_tags(population, rng)
        tags_by_id = {
            int(tag_id): PassivePetTag(int(tag_id), height)
            for tag_id in population.tag_ids
        }
        channels = deployment.build_channels(field, tags_by_id, rng=rng)
        config = PetConfig(
            tree_height=height, passive_tags=True, rounds=128
        )
        controller = ReaderController(channels, config=config, rng=rng)
        result = PetEstimator(config=config, rng=rng).run(controller)
        # 128 rounds: expect within ~35% of truth with high probability.
        assert 150 < result.n_hat < 600
