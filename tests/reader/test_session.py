"""Tests for estimation sessions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AccuracyRequirement, PetConfig
from repro.errors import ConfigurationError
from repro.reader.session import EstimationSession
from repro.sim.persist import load_experiment, rows_of
from repro.sim.sampled import SampledSimulator


def sampled_factory(sizes):
    """Driver factory over a per-epoch size schedule."""

    def factory(epoch: int):
        n = sizes[min(epoch, len(sizes) - 1)]
        return SampledSimulator(
            n,
            config=PetConfig(),
            rng=np.random.default_rng((123, epoch)),
        )

    return factory


class TestSessionBasics:
    def test_requires_sizing(self):
        with pytest.raises(ConfigurationError):
            EstimationSession(driver_factory=sampled_factory([100]))

    def test_epochs_accumulate(self):
        session = EstimationSession(
            driver_factory=sampled_factory([1_000]),
            config=PetConfig(rounds=128),
        )
        results = session.run(4)
        assert [r.epoch for r in results] == [0, 1, 2, 3]
        assert len(session.history) == 4
        for result in results:
            assert result.rounds == 128
            assert result.slots == 128 * 5

    def test_rounds_from_requirement(self):
        session = EstimationSession(
            driver_factory=sampled_factory([1_000]),
            requirement=AccuracyRequirement(0.2, 0.1),
        )
        result = session.run_epoch()
        assert result.rounds == session._epoch_rounds()
        assert result.rounds < 200  # loose contract -> small m

    def test_estimates_track_truth(self):
        session = EstimationSession(
            driver_factory=sampled_factory([5_000]),
            config=PetConfig(rounds=512),
        )
        results = session.run(3)
        for result in results:
            assert 0.85 < result.n_hat / 5_000 < 1.15

    def test_rejects_zero_epochs(self):
        session = EstimationSession(
            driver_factory=sampled_factory([100]),
            config=PetConfig(rounds=8),
        )
        with pytest.raises(ConfigurationError):
            session.run(0)


class TestSessionMonitoring:
    def test_change_detected_on_step(self):
        sizes = [2_000] * 6 + [6_000] * 3
        session = EstimationSession(
            driver_factory=sampled_factory(sizes),
            config=PetConfig(rounds=512),
        )
        session.run(len(sizes))
        assert any(6 <= e <= 7 for e in session.change_epochs)

    def test_monitor_can_be_disabled(self):
        session = EstimationSession(
            driver_factory=sampled_factory([100, 100_000]),
            config=PetConfig(rounds=64),
            monitor=False,
        )
        session.run(2)
        assert session.change_epochs == []
        assert session.history[0].monitor_report is None


class TestSessionPersistence:
    def test_save_round_trips(self, tmp_path):
        session = EstimationSession(
            driver_factory=sampled_factory([500]),
            config=PetConfig(rounds=32),
        )
        session.run(3)
        path = session.save(tmp_path / "session.json", name="demo")
        document = load_experiment(path)
        assert document["experiment"] == "demo"
        rows = rows_of(document)
        assert len(rows) == 3
        assert rows[0]["rounds"] == 32
