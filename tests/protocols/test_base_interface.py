"""Tests for the shared protocol interface helpers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AccuracyRequirement
from repro.errors import ConfigurationError
from repro.protocols.base import IdentificationResult, ProtocolResult
from repro.protocols.pet import PetProtocol
from repro.tags.population import TagPopulation


class TestProtocolResult:
    def test_accuracy(self):
        result = ProtocolResult(
            protocol="X", n_hat=110.0, rounds=1, total_slots=5
        )
        assert result.accuracy(100) == pytest.approx(1.1)

    def test_accuracy_rejects_bad_n(self):
        result = ProtocolResult(
            protocol="X", n_hat=1.0, rounds=1, total_slots=1
        )
        with pytest.raises(ConfigurationError):
            result.accuracy(0)


class TestIdentificationResult:
    def test_count_is_set_size(self):
        result = IdentificationResult(
            protocol="I", identified=frozenset({1, 2, 3}), total_slots=9
        )
        assert result.count == 3


class TestInterfaceHelpers:
    def test_estimate_with_requirement_plans_and_runs(self):
        protocol = PetProtocol()
        requirement = AccuracyRequirement(0.30, 0.20)  # tiny m
        population = TagPopulation.random(
            2_000, np.random.default_rng(0)
        )
        result = protocol.estimate_with_requirement(
            population, requirement, np.random.default_rng(1)
        )
        assert result.rounds == protocol.plan_rounds(requirement)

    def test_planned_slots_product(self):
        protocol = PetProtocol()
        requirement = AccuracyRequirement(0.10, 0.05)
        assert protocol.planned_slots(requirement) == (
            protocol.plan_rounds(requirement)
            * protocol.slots_per_round()
        )
