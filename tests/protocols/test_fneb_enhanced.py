"""Tests for Enhanced FNEB (adaptive frame shrinking)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AccuracyRequirement
from repro.errors import ConfigurationError, EstimationError
from repro.protocols.fneb import FnebProtocol
from repro.protocols.fneb_enhanced import EnhancedFnebProtocol
from repro.tags.population import TagPopulation


class TestValidation:
    def test_rejects_bad_pilot(self):
        with pytest.raises(ConfigurationError):
            EnhancedFnebProtocol(pilot_rounds=0)

    def test_rejects_bad_kappa(self):
        with pytest.raises(ConfigurationError):
            EnhancedFnebProtocol(kappa=0.0)

    def test_shrunk_bound_requires_positive_estimate(self):
        with pytest.raises(EstimationError):
            EnhancedFnebProtocol().shrunk_bound(0.0)


class TestShrinking:
    def test_bound_shrinks_with_n(self):
        protocol = EnhancedFnebProtocol()
        assert protocol.shrunk_bound(100_000) < protocol.shrunk_bound(
            1_000
        )

    def test_bound_clamped_to_frame(self):
        protocol = EnhancedFnebProtocol(frame_size=2**16)
        assert protocol.shrunk_bound(0.001) == 2**16
        assert protocol.shrunk_bound(10**12) == 2

    def test_shrunk_slots_below_full(self):
        protocol = EnhancedFnebProtocol()
        assert protocol.shrunk_slots_per_round(
            50_000
        ) < protocol.slots_per_round()


class TestEstimation:
    def test_accuracy_matches_plain_fneb(self):
        population = TagPopulation.random(
            10_000, np.random.default_rng(0)
        )
        enhanced = EnhancedFnebProtocol(frame_size=2**20)
        result = enhanced.estimate(
            population, rounds=600, rng=np.random.default_rng(1)
        )
        assert 0.9 < result.accuracy(10_000) < 1.1

    def test_fewer_slots_than_plain(self):
        population = TagPopulation.random(
            50_000, np.random.default_rng(2)
        )
        rng = np.random.default_rng(3)
        plain = FnebProtocol().estimate(population, 400, rng)
        enhanced = EnhancedFnebProtocol().estimate(
            population, 400, rng
        )
        assert enhanced.total_slots < plain.total_slots
        # The shrink is substantial: bound ~ kappa f / n ~ 4000 slots
        # searched instead of 2^24.
        assert enhanced.total_slots < 0.75 * plain.total_slots

    def test_boundary_misses_fall_back(self):
        # A tiny kappa makes boundary misses common; the protocol must
        # stay correct (estimate fine), just costlier per miss.
        population = TagPopulation.random(
            5_000, np.random.default_rng(4)
        )
        protocol = EnhancedFnebProtocol(kappa=0.5)
        result = protocol.estimate(
            population, rounds=400, rng=np.random.default_rng(5)
        )
        assert 0.85 < result.accuracy(5_000) < 1.15

    def test_pilot_longer_than_rounds_ok(self):
        population = TagPopulation.random(
            1_000, np.random.default_rng(6)
        )
        protocol = EnhancedFnebProtocol(pilot_rounds=64)
        result = protocol.estimate(
            population, rounds=8, rng=np.random.default_rng(7)
        )
        assert result.rounds == 8

    def test_plan_rounds_delegates(self):
        requirement = AccuracyRequirement(0.05, 0.01)
        assert EnhancedFnebProtocol().plan_rounds(
            requirement
        ) == FnebProtocol().plan_rounds(requirement)
