"""Tests for the budgeted (fixed-slots-per-round) PET variant."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.config import AccuracyRequirement, PetConfig
from repro.core.accuracy import PHI
from repro.errors import ConfigurationError
from repro.protocols.pet_budgeted import BudgetedPetProtocol
from repro.tags.population import TagPopulation


class TestValidation:
    def test_rejects_bad_budget(self):
        with pytest.raises(ConfigurationError):
            BudgetedPetProtocol(slot_budget=0)
        with pytest.raises(ConfigurationError):
            BudgetedPetProtocol(slot_budget=33)

    def test_rejects_deflation(self):
        with pytest.raises(ConfigurationError):
            BudgetedPetProtocol(slot_budget=16, censor_inflation=0.9)

    def test_for_max_population_sizing(self):
        protocol = BudgetedPetProtocol.for_max_population(50_000)
        expected = math.ceil(math.log2(PHI * 50_000)) + 2
        assert protocol.slot_budget == expected

    def test_for_max_population_clamps_to_height(self):
        protocol = BudgetedPetProtocol.for_max_population(
            2**40, config=PetConfig(tree_height=20)
        )
        assert protocol.slot_budget == 20


class TestCensoring:
    def test_censored_fraction_monotone(self):
        protocol = BudgetedPetProtocol(slot_budget=16)
        assert protocol.censored_fraction(
            100_000
        ) > protocol.censored_fraction(1_000)

    def test_sized_budget_keeps_censoring_moderate(self):
        protocol = BudgetedPetProtocol.for_max_population(50_000)
        assert protocol.censored_fraction(50_000) < 0.5

    def test_slots_exactly_budget_times_rounds(self):
        protocol = BudgetedPetProtocol(slot_budget=18)
        population = TagPopulation.random(
            5_000, np.random.default_rng(0)
        )
        result = protocol.estimate(
            population, rounds=64, rng=np.random.default_rng(1)
        )
        assert result.total_slots == 64 * 18
        assert (result.per_round_statistics <= 18).all()


class TestAccuracy:
    def test_estimates_truth_active(self):
        protocol = BudgetedPetProtocol.for_max_population(50_000)
        population = TagPopulation.random(
            30_000, np.random.default_rng(2)
        )
        result = protocol.estimate(
            population, rounds=512, rng=np.random.default_rng(3)
        )
        assert 0.9 < result.accuracy(30_000) < 1.1

    def test_estimates_truth_passive(self):
        protocol = BudgetedPetProtocol(
            slot_budget=16,
            config=PetConfig(passive_tags=True),
        )
        population = TagPopulation.random(
            8_000, np.random.default_rng(4)
        )
        result = protocol.estimate(
            population, rounds=512, rng=np.random.default_rng(5)
        )
        assert 0.85 < result.accuracy(8_000) < 1.15

    def test_unbiased_under_heavy_censoring(self):
        # Budget well below E[d]: most rounds censored, estimate still
        # centred (this is what the censored MLE buys).
        n = 50_000
        protocol = BudgetedPetProtocol(slot_budget=14)
        assert protocol.censored_fraction(n) > 0.8
        population = TagPopulation.random(
            n, np.random.default_rng(6)
        )
        estimates = [
            protocol.estimate(
                population, 512, np.random.default_rng((7, t))
            ).n_hat
            for t in range(20)
        ]
        assert np.mean(estimates) / n == pytest.approx(1.0, abs=0.08)

    def test_meets_relaxed_contract(self):
        requirement = AccuracyRequirement(0.25, 0.15)
        protocol = BudgetedPetProtocol.for_max_population(20_000)
        rounds = protocol.plan_rounds(requirement)
        n = 10_000
        population = TagPopulation.random(
            n, np.random.default_rng(8)
        )
        hits = 0
        trials = 40
        for trial in range(trials):
            result = protocol.estimate(
                population, rounds, np.random.default_rng((9, trial))
            )
            hits += abs(result.n_hat - n) <= requirement.epsilon * n
        assert hits / trials >= 1.0 - requirement.delta - 0.08

    def test_plan_inflates_base(self):
        from repro.core.accuracy import rounds_required

        requirement = AccuracyRequirement(0.10, 0.05)
        protocol = BudgetedPetProtocol(slot_budget=16)
        assert protocol.plan_rounds(requirement) == math.ceil(
            rounds_required(0.10, 0.05) * 1.5
        )
