"""Tests for PET behind the zoo interface."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AccuracyRequirement, PetConfig
from repro.protocols.pet import PetProtocol
from repro.tags.population import TagPopulation


class TestPlanning:
    def test_plan_matches_eq20(self):
        from repro.core.accuracy import rounds_required

        protocol = PetProtocol()
        requirement = AccuracyRequirement(0.05, 0.01)
        assert protocol.plan_rounds(requirement) == rounds_required(
            0.05, 0.01
        )

    def test_slots_per_round_binary(self):
        assert PetProtocol().slots_per_round() == 5  # H = 32

    def test_slots_per_round_linear(self):
        protocol = PetProtocol(config=PetConfig(binary_search=False))
        assert protocol.slots_per_round() == 32

    def test_expected_slots_linear_grows_with_n(self):
        protocol = PetProtocol(config=PetConfig(binary_search=False))
        assert protocol.expected_slots_per_round(
            10**6
        ) > protocol.expected_slots_per_round(100)

    def test_expected_slots_binary_flat(self):
        protocol = PetProtocol()
        assert protocol.expected_slots_per_round(100) == \
            protocol.expected_slots_per_round(10**6) == 5.0

    def test_planned_slots(self):
        protocol = PetProtocol()
        requirement = AccuracyRequirement(0.05, 0.01)
        assert protocol.planned_slots(requirement) == (
            protocol.plan_rounds(requirement) * 5
        )

    def test_rejects_unknown_tier(self):
        with pytest.raises(ValueError):
            PetProtocol(tier="quantum")


class TestEstimation:
    @pytest.mark.parametrize("tier", ["vectorized", "sampled"])
    def test_estimate_close_at_512_rounds(self, tier):
        protocol = PetProtocol(tier=tier)
        population = TagPopulation.random(
            5_000, np.random.default_rng(0)
        )
        result = protocol.estimate(
            population, rounds=512, rng=np.random.default_rng(1)
        )
        assert result.protocol == "PET"
        assert result.rounds == 512
        assert result.total_slots == 512 * 5
        assert 0.85 < result.accuracy(5_000) < 1.15

    def test_passive_variant_estimates(self):
        protocol = PetProtocol(config=PetConfig(passive_tags=True))
        population = TagPopulation.random(
            2_000, np.random.default_rng(2)
        )
        result = protocol.estimate(
            population, rounds=512, rng=np.random.default_rng(3)
        )
        assert 0.7 < result.accuracy(2_000) < 1.4

    def test_statistics_recorded(self):
        protocol = PetProtocol()
        population = TagPopulation.random(
            1_000, np.random.default_rng(4)
        )
        result = protocol.estimate(
            population, rounds=32, rng=np.random.default_rng(5)
        )
        assert result.per_round_statistics.shape == (32,)
        assert (result.per_round_statistics >= 0).all()
        assert (result.per_round_statistics <= 32).all()
