"""Tests for the USE/UPE/EZB framed-Aloha estimators."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AccuracyRequirement
from repro.errors import ConfigurationError, EstimationError
from repro.protocols.framed import EzbProtocol, UpeProtocol, UseProtocol
from repro.tags.population import TagPopulation


class TestUse:
    def test_estimate_accurate_at_light_load(self):
        protocol = UseProtocol(frame_size=8192)
        population = TagPopulation.random(
            2_000, np.random.default_rng(0)
        )
        result = protocol.estimate(
            population, rounds=20, rng=np.random.default_rng(1)
        )
        assert 0.9 < result.accuracy(2_000) < 1.1

    def test_saturated_frame_raises(self):
        # With n >> f every slot is busy; USE cannot invert.
        protocol = UseProtocol(frame_size=16)
        population = TagPopulation.sequential(5_000)
        with pytest.raises(EstimationError):
            protocol.estimate(
                population, rounds=3, rng=np.random.default_rng(2)
            )

    def test_empty_population_estimates_zero(self):
        protocol = UseProtocol(frame_size=256)
        result = protocol.estimate(
            TagPopulation([]), rounds=4, rng=np.random.default_rng(3)
        )
        assert result.n_hat == pytest.approx(0.0)

    def test_slots_per_round_is_frame(self):
        assert UseProtocol(frame_size=512).slots_per_round() == 512

    def test_plan_rounds_positive(self):
        assert UseProtocol().plan_rounds(
            AccuracyRequirement(0.05, 0.01)
        ) >= 1


class TestUpe:
    def test_persistence_from_prior(self):
        protocol = UpeProtocol(frame_size=1024, prior_n=4096)
        assert protocol.persistence == pytest.approx(0.25)

    def test_persistence_caps_at_one(self):
        protocol = UpeProtocol(frame_size=1024, prior_n=10)
        assert protocol.persistence == 1.0

    def test_estimate_with_persistence(self):
        protocol = UpeProtocol(frame_size=1024, prior_n=4096)
        population = TagPopulation.random(
            4_000, np.random.default_rng(4)
        )
        result = protocol.estimate(
            population, rounds=40, rng=np.random.default_rng(5)
        )
        assert 0.85 < result.accuracy(4_000) < 1.15

    def test_rejects_bad_prior(self):
        with pytest.raises(ConfigurationError):
            UpeProtocol(prior_n=0)


class TestEzb:
    def test_slots_include_subframes(self):
        protocol = EzbProtocol(
            frame_size=256, frames_per_round=4
        )
        assert protocol.slots_per_round() == 1024

    def test_estimate_reasonable(self):
        protocol = EzbProtocol(frame_size=2048, persistence=0.5)
        population = TagPopulation.random(
            2_000, np.random.default_rng(6)
        )
        result = protocol.estimate(
            population, rounds=10, rng=np.random.default_rng(7)
        )
        assert 0.85 < result.accuracy(2_000) < 1.15

    def test_rejects_bad_frames_per_round(self):
        with pytest.raises(ConfigurationError):
            EzbProtocol(frames_per_round=0)


class TestEmptySlotsEdges:
    """Edge branches of ``_ZeroFrameEstimator.empty_slots``."""

    def test_persistence_mask_thins_participation(self):
        # persistence = 64/128 = 0.5: roughly half the tags answer, so
        # a frame the population would saturate at p=1 keeps empties.
        protocol = UpeProtocol(frame_size=64, prior_n=128)
        assert protocol.persistence == pytest.approx(0.5)
        population = TagPopulation.random(
            128, np.random.default_rng(11)
        )
        full = UseProtocol(frame_size=64)
        empties = [
            protocol.empty_slots(seed, population)
            for seed in range(200)
        ]
        empties_full = [
            full.empty_slots(seed, population) for seed in range(200)
        ]
        assert all(0 <= e <= 64 for e in empties)
        # Thinning leaves strictly more slots empty on average.
        assert np.mean(empties) > np.mean(empties_full)

    def test_empty_population_returns_whole_frame(self):
        protocol = UseProtocol(frame_size=96)
        assert protocol.empty_slots(123, TagPopulation([])) == 96

    def test_all_tags_masked_returns_whole_frame(self):
        # persistence ~ 1e-6: the participation threshold is ~1 of
        # 2^20 buckets, so every tag of a small population sits out.
        protocol = EzbProtocol(
            frame_size=32, persistence=1e-6, frames_per_round=1
        )
        population = TagPopulation.random(
            50, np.random.default_rng(12)
        )
        for seed in range(20):
            assert protocol.empty_slots(seed, population) == 32

    def test_batched_engine_matches_edges(self):
        # The batched statistic must agree with the scalar branch on
        # the same edge cases, seed for seed.
        seeds = np.arange(20, dtype=np.uint64)
        for protocol, population in [
            (
                UpeProtocol(frame_size=64, prior_n=128),
                TagPopulation.random(128, np.random.default_rng(13)),
            ),
            (UseProtocol(frame_size=96), TagPopulation([])),
            (
                EzbProtocol(
                    frame_size=32,
                    persistence=1e-6,
                    frames_per_round=1,
                ),
                TagPopulation.random(50, np.random.default_rng(14)),
            ),
        ]:
            engine = protocol.batched_engine()
            batched = engine.round_statistics(seeds, population)
            scalar = [
                float(protocol.empty_slots(int(seed), population))
                for seed in seeds
            ]
            assert batched.tolist() == scalar


class TestSharedValidation:
    def test_rejects_bad_frame_size(self):
        with pytest.raises(ConfigurationError):
            UseProtocol(frame_size=0)

    def test_rejects_bad_persistence(self):
        with pytest.raises(ConfigurationError):
            EzbProtocol(persistence=0.0)
        with pytest.raises(ConfigurationError):
            EzbProtocol(persistence=1.5)

    def test_rejects_zero_rounds(self):
        with pytest.raises(ConfigurationError):
            UseProtocol().estimate(
                TagPopulation.sequential(5), 0,
                np.random.default_rng(0),
            )
