"""Tests for the LoF baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AccuracyRequirement
from repro.errors import ConfigurationError, EstimationError
from repro.protocols.lof import KAPPA, LofProtocol
from repro.tags.population import TagPopulation


class TestPlanning:
    def test_slots_per_round_is_frame(self):
        assert LofProtocol().slots_per_round() == 32
        assert LofProtocol(frame_slots=16).slots_per_round() == 16

    def test_plan_monotone(self):
        protocol = LofProtocol()
        assert protocol.plan_rounds(
            AccuracyRequirement(0.05, 0.01)
        ) > protocol.plan_rounds(AccuracyRequirement(0.10, 0.01))

    def test_rejects_tiny_frame(self):
        with pytest.raises(ConfigurationError):
            LofProtocol(frame_slots=1)


class TestStatistic:
    def test_empty_population_statistic_zero(self):
        assert LofProtocol().first_empty_bucket(
            0, TagPopulation([])
        ) == 0

    def test_statistic_in_range(self):
        protocol = LofProtocol()
        population = TagPopulation.sequential(1000)
        for seed in range(20):
            r = protocol.first_empty_bucket(seed, population)
            assert 0 <= r <= 32

    def test_statistic_mean_near_theory(self):
        import math

        protocol = LofProtocol()
        population = TagPopulation.sequential(5_000)
        values = [
            protocol.first_empty_bucket(seed, population)
            for seed in range(400)
        ]
        mean = float(np.mean(values))
        assert mean == pytest.approx(
            math.log2(KAPPA * 5_000), abs=0.35
        )

    def test_statistic_grows_with_n(self):
        protocol = LofProtocol()
        small = TagPopulation.sequential(100)
        large = TagPopulation.sequential(100_000)
        mean_small = np.mean(
            [protocol.first_empty_bucket(s, small) for s in range(100)]
        )
        mean_large = np.mean(
            [protocol.first_empty_bucket(s, large) for s in range(100)]
        )
        assert mean_large > mean_small + 8  # ~ log2(1000) ~ 10


class TestEstimation:
    def test_hashed_estimate_reasonable(self):
        protocol = LofProtocol()
        population = TagPopulation.random(
            10_000, np.random.default_rng(0)
        )
        result = protocol.estimate(
            population, rounds=1500, rng=np.random.default_rng(1)
        )
        assert 0.9 < result.accuracy(10_000) < 1.1
        assert result.total_slots == 1500 * 32

    def test_sampled_estimate_reasonable(self):
        protocol = LofProtocol()
        result = protocol.estimate_sampled(
            50_000, rounds=1500, rng=np.random.default_rng(2)
        )
        assert 0.9 < result.accuracy(50_000) < 1.1

    def test_sampled_matches_hashed_distribution(self):
        protocol = LofProtocol()
        population = TagPopulation.random(
            3_000, np.random.default_rng(3)
        )
        rng = np.random.default_rng(4)
        hashed_stats = np.concatenate([
            protocol.estimate(population, 50, rng).per_round_statistics
            for _ in range(10)
        ])
        sampled_stats = np.concatenate([
            protocol.estimate_sampled(
                3_000, 50, rng
            ).per_round_statistics
            for _ in range(10)
        ])
        assert hashed_stats.mean() == pytest.approx(
            sampled_stats.mean(), abs=0.2
        )

    def test_zero_mean_rejected(self):
        with pytest.raises(EstimationError):
            LofProtocol().estimate_from_mean(0.0)

    def test_estimate_rejects_bad_rounds(self):
        with pytest.raises(ConfigurationError):
            LofProtocol().estimate(
                TagPopulation.sequential(5), 0,
                np.random.default_rng(0),
            )


class TestSampledLaw:
    def test_pmf_sums_to_one_exactly(self):
        for n in (1, 100, 50_000):
            pmf = LofProtocol().round_statistic_pmf(n)
            assert pmf.shape == (33,)
            assert (pmf >= 0).all()
            assert pmf.sum() == pytest.approx(1.0, abs=1e-12)

    def test_pmf_rejects_empty_population(self):
        with pytest.raises(EstimationError):
            LofProtocol().round_statistic_pmf(0)

    def test_inverse_cdf_matches_multinomial_reference(self):
        # The two samplers draw from the same law (up to the
        # independent-bucket approximation): their mean statistics
        # agree within Monte-Carlo noise.
        protocol = LofProtocol()
        rng = np.random.default_rng(31)
        fast = np.array([
            protocol.estimate_sampled(5_000, 64, rng).n_hat
            for _ in range(40)
        ])
        reference = np.array([
            protocol.estimate_sampled_multinomial(5_000, 64, rng).n_hat
            for _ in range(40)
        ])
        assert fast.mean() == pytest.approx(reference.mean(), rel=0.05)


class TestSampledBatch:
    def test_bit_identical_to_sequential_runs(self):
        protocol = LofProtocol()
        batch = protocol.estimate_sampled_batch(
            5_000, 48, 30, np.random.default_rng(8)
        )
        rng = np.random.default_rng(8)
        sequential = [
            protocol.estimate_sampled(5_000, 48, rng).n_hat
            for _ in range(30)
        ]
        assert batch.estimates.tolist() == sequential
        assert batch.saturated_runs == 0
        assert batch.slots_per_run == 48 * protocol.slots_per_round()

    def test_saturated_runs_flagged_nan(self):
        # n = 1, one round: R = 0 happens with probability 1/2, and a
        # zero mean is exactly the case the scalar path raises on.
        protocol = LofProtocol()
        batch = protocol.estimate_sampled_batch(
            1, 1, 400, np.random.default_rng(9)
        )
        assert batch.saturated_runs > 0
        assert np.isnan(batch.estimates).sum() == batch.saturated_runs
        finite = batch.estimates[np.isfinite(batch.estimates)]
        assert finite.size == 400 - batch.saturated_runs

    def test_rejects_bad_arguments(self):
        protocol = LofProtocol()
        with pytest.raises(ConfigurationError):
            protocol.estimate_sampled_batch(
                100, 0, 5, np.random.default_rng(0)
            )
        with pytest.raises(ConfigurationError):
            protocol.estimate_sampled_batch(
                100, 5, 0, np.random.default_rng(0)
            )
