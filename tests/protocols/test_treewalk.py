"""Tests for binary tree-splitting identification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.protocols.treewalk import TreeWalkIdentification
from repro.tags.population import TagPopulation


class TestIdentification:
    def test_identifies_everyone(self):
        population = TagPopulation.random(
            1_000, np.random.default_rng(0)
        )
        result = TreeWalkIdentification().identify(population)
        assert result.identified == frozenset(
            int(i) for i in population.tag_ids
        )

    def test_empty_population_costs_one_slot(self):
        result = TreeWalkIdentification().identify(TagPopulation([]))
        assert result.count == 0
        assert result.total_slots == 1  # the root query hears silence

    def test_single_tag_costs_one_slot(self):
        result = TreeWalkIdentification().identify(TagPopulation([42]))
        assert result.count == 1
        assert result.total_slots == 1

    def test_cost_linear_in_n(self):
        # Tree walking resolves n tags in ~2.9n slots for random IDs.
        rng = np.random.default_rng(1)
        protocol = TreeWalkIdentification()
        for n in (256, 1024):
            population = TagPopulation.random(n, rng)
            slots = protocol.identify(population).total_slots
            assert 2.0 * n < slots < 4.0 * n

    def test_adjacent_ids_resolved(self):
        # Dense sequential IDs force deep splits near the leaves.
        population = TagPopulation.sequential(64)
        result = TreeWalkIdentification().identify(population)
        assert result.count == 64

    def test_deterministic_cost(self):
        population = TagPopulation.sequential(100)
        protocol = TreeWalkIdentification()
        first = protocol.identify(population).total_slots
        second = protocol.identify(population).total_slots
        assert first == second

    def test_count_helper(self):
        population = TagPopulation.sequential(33)
        count, slots = TreeWalkIdentification().count(population)
        assert count == 33
        assert slots >= 33


class TestValidation:
    def test_rejects_bad_id_bits(self):
        with pytest.raises(ConfigurationError):
            TreeWalkIdentification(id_bits=0)
        with pytest.raises(ConfigurationError):
            TreeWalkIdentification(id_bits=65)

    def test_rejects_wide_ids(self):
        protocol = TreeWalkIdentification(id_bits=4)
        with pytest.raises(ConfigurationError):
            protocol.identify(TagPopulation([16]))

    def test_narrow_id_space_works(self):
        protocol = TreeWalkIdentification(id_bits=6)
        population = TagPopulation(range(0, 64, 3))
        result = protocol.identify(population)
        assert result.count == len(range(0, 64, 3))
