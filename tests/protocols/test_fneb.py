"""Tests for the FNEB baseline."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AccuracyRequirement
from repro.errors import ConfigurationError, EstimationError
from repro.protocols.fneb import FnebProtocol
from repro.tags.population import TagPopulation


class TestPlanning:
    def test_slots_per_round_is_log_frame(self):
        assert FnebProtocol(frame_size=2**24).slots_per_round() == 24
        assert FnebProtocol(frame_size=2**16).slots_per_round() == 16

    def test_plan_scales_inverse_square_epsilon(self):
        protocol = FnebProtocol()
        tight = protocol.plan_rounds(AccuracyRequirement(0.05, 0.01))
        loose = protocol.plan_rounds(AccuracyRequirement(0.10, 0.01))
        assert tight == pytest.approx(4 * loose, rel=0.05)

    def test_rejects_tiny_frame(self):
        with pytest.raises(ConfigurationError):
            FnebProtocol(frame_size=1)


class TestStatistic:
    def test_first_nonempty_in_range(self):
        protocol = FnebProtocol(frame_size=2**16)
        population = TagPopulation.sequential(100)
        for seed in range(20):
            x = protocol.first_nonempty(seed, population)
            assert 1 <= x <= 2**16

    def test_empty_population_rejected(self):
        protocol = FnebProtocol()
        with pytest.raises(EstimationError):
            protocol.first_nonempty(0, TagPopulation([]))

    def test_statistic_mean_near_f_over_n(self):
        protocol = FnebProtocol(frame_size=2**18)
        population = TagPopulation.sequential(512)
        values = [
            protocol.first_nonempty(seed, population)
            for seed in range(300)
        ]
        mean = float(np.mean(values))
        assert 0.7 * 2**18 / 512 < mean < 1.4 * 2**18 / 512


class TestEstimation:
    def test_hashed_estimate_reasonable(self):
        protocol = FnebProtocol(frame_size=2**20)
        population = TagPopulation.random(
            10_000, np.random.default_rng(0)
        )
        result = protocol.estimate(
            population, rounds=800, rng=np.random.default_rng(1)
        )
        assert 0.9 < result.accuracy(10_000) < 1.1
        assert result.total_slots == 800 * 20

    def test_sampled_estimate_reasonable(self):
        protocol = FnebProtocol()
        result = protocol.estimate_sampled(
            50_000, rounds=2000, rng=np.random.default_rng(2)
        )
        assert 0.92 < result.accuracy(50_000) < 1.08

    def test_sampled_matches_hashed_distribution(self):
        # Same population size, same rounds: the two paths must agree
        # in distribution (compare means across repetitions).
        protocol = FnebProtocol(frame_size=2**18)
        population = TagPopulation.random(
            2_000, np.random.default_rng(3)
        )
        rng = np.random.default_rng(4)
        hashed = np.array([
            protocol.estimate(population, 64, rng).n_hat
            for _ in range(25)
        ])
        sampled = np.array([
            protocol.estimate_sampled(2_000, 64, rng).n_hat
            for _ in range(25)
        ])
        assert np.mean(hashed) == pytest.approx(
            np.mean(sampled), rel=0.15
        )

    def test_saturated_mean_clamps(self):
        protocol = FnebProtocol(frame_size=2**10)
        # mean_x <= 1 means every round hit slot 1: clamp, don't blow up.
        estimate = protocol.estimate_from_mean(1.0)
        assert np.isfinite(estimate)
        assert estimate > 2**10

    def test_estimate_rejects_bad_rounds(self):
        protocol = FnebProtocol()
        population = TagPopulation.sequential(10)
        with pytest.raises(ConfigurationError):
            protocol.estimate(
                population, 0, np.random.default_rng(0)
            )
        with pytest.raises(EstimationError):
            protocol.estimate_sampled(0, 10, np.random.default_rng(0))


class TestSampledBatch:
    def test_bit_identical_to_sequential_runs(self):
        protocol = FnebProtocol()
        batch = protocol.estimate_sampled_batch(
            50_000, 24, 25, np.random.default_rng(5)
        )
        rng = np.random.default_rng(5)
        sequential = [
            protocol.estimate_sampled(50_000, 24, rng).n_hat
            for _ in range(25)
        ]
        assert batch.estimates.tolist() == sequential
        assert batch.saturated_runs == 0

    def test_rejects_bad_arguments(self):
        protocol = FnebProtocol()
        with pytest.raises(EstimationError):
            protocol.estimate_sampled_batch(
                0, 4, 4, np.random.default_rng(0)
            )
        with pytest.raises(ConfigurationError):
            protocol.estimate_sampled_batch(
                100, 0, 4, np.random.default_rng(0)
            )
