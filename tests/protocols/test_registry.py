"""Tests for the protocol registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AccuracyRequirement
from repro.errors import ConfigurationError
from repro.protocols.registry import available_protocols, make_protocol
from repro.tags.population import TagPopulation


class TestRegistry:
    def test_lists_all_protocols(self):
        names = available_protocols()
        for expected in (
            "pet", "pet-linear", "pet-passive", "fneb", "lof",
            "use", "upe", "ezb",
        ):
            assert expected in names

    def test_names_case_insensitive(self):
        assert make_protocol("PET").name == "PET"
        assert make_protocol("FnEb").name == "FNEB"

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_protocol("chirp")

    def test_variants_differ(self):
        binary = make_protocol("pet")
        linear = make_protocol("pet-linear")
        assert binary.slots_per_round() < linear.slots_per_round()
        passive = make_protocol("pet-passive")
        assert passive.config.passive_tags  # type: ignore[attr-defined]

    def test_every_protocol_satisfies_interface(self):
        requirement = AccuracyRequirement(0.10, 0.05)
        population = TagPopulation.random(
            500, np.random.default_rng(0)
        )
        rng = np.random.default_rng(1)
        for name in available_protocols():
            protocol = make_protocol(name)
            rounds = protocol.plan_rounds(requirement)
            assert rounds >= 1
            assert protocol.slots_per_round() >= 1
            if name in ("use", "upe", "ezb"):
                # Framed estimators need load-matched frames; just
                # check planning here (estimation covered in their own
                # test modules).
                continue
            result = protocol.estimate(
                population, min(rounds, 64), rng
            )
            assert result.n_hat > 0
