"""Tests for the protocol registry."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AccuracyRequirement, PetConfig
from repro.core.accuracy import rounds_required
from repro.errors import ConfigurationError
from repro.protocols.registry import (
    available_protocols,
    make_protocol,
    protocol_names,
)
from repro.tags.population import TagPopulation


class TestRegistry:
    def test_lists_all_protocols(self):
        names = protocol_names()
        for expected in (
            "pet", "pet-linear", "pet-passive", "fneb", "lof",
            "use", "upe", "ezb",
        ):
            assert expected in names

    def test_available_protocols_are_name_summary_pairs(self):
        pairs = available_protocols()
        assert [name for name, _ in pairs] == protocol_names()
        for name, summary in pairs:
            assert isinstance(summary, str) and summary, name

    def test_names_case_insensitive(self):
        assert make_protocol("PET").name == "PET"
        assert make_protocol("FnEb").name == "FNEB"

    def test_unknown_name_rejected(self):
        with pytest.raises(ConfigurationError):
            make_protocol("chirp")

    def test_variants_differ(self):
        binary = make_protocol("pet")
        linear = make_protocol("pet-linear")
        assert binary.slots_per_round() < linear.slots_per_round()
        passive = make_protocol("pet-passive")
        assert passive.config.passive_tags  # type: ignore[attr-defined]

    def test_every_protocol_satisfies_interface(self):
        requirement = AccuracyRequirement(0.10, 0.05)
        population = TagPopulation.random(
            500, np.random.default_rng(0)
        )
        rng = np.random.default_rng(1)
        for name in protocol_names():
            protocol = make_protocol(name)
            rounds = protocol.plan_rounds(requirement)
            assert rounds >= 1
            assert protocol.slots_per_round() >= 1
            if name in ("use", "upe", "ezb"):
                # Framed estimators need load-matched frames; just
                # check planning here (estimation covered in their own
                # test modules).
                continue
            result = protocol.estimate(
                population, min(rounds, 64), rng
            )
            assert result.n_hat > 0


class TestMakeProtocolConfig:
    def test_fneb_frame_size_forwarded(self):
        protocol = make_protocol("fneb", frame_size=2**16)
        assert protocol.frame_size == 2**16
        assert protocol.slots_per_round() == 16

    def test_fneb_enhanced_kwargs_forwarded(self):
        protocol = make_protocol(
            "fneb-enhanced", frame_size=2**12, pilot_rounds=4
        )
        assert protocol.frame_size == 2**12
        assert protocol.pilot_rounds == 4

    def test_lof_frame_slots_forwarded(self):
        assert make_protocol("lof", frame_slots=48).frame_slots == 48

    def test_pet_config_fields_forwarded(self):
        protocol = make_protocol(
            "pet", tree_height=16, rounds=128, binary_search=False
        )
        assert protocol.config.tree_height == 16
        assert protocol.config.rounds == 128
        assert not protocol.config.binary_search

    def test_pet_config_object_forwarded(self):
        config = PetConfig(tree_height=24, passive_tags=True)
        protocol = make_protocol("pet", config=config)
        assert protocol.config is config

    def test_pet_config_object_plus_field_override(self):
        config = PetConfig(tree_height=24)
        protocol = make_protocol("pet", config=config, rounds=64)
        assert protocol.config.tree_height == 24
        assert protocol.config.rounds == 64

    def test_pet_accuracy_plans_rounds(self):
        requirement = AccuracyRequirement(epsilon=0.05, delta=0.01)
        protocol = make_protocol("pet", accuracy=requirement)
        assert protocol.config.rounds == rounds_required(0.05, 0.01)

    def test_pet_explicit_rounds_beat_accuracy(self):
        protocol = make_protocol(
            "pet",
            rounds=32,
            accuracy=AccuracyRequirement(epsilon=0.05, delta=0.01),
        )
        assert protocol.config.rounds == 32

    def test_pet_tier_forwarded(self):
        assert make_protocol("pet", tier="sampled").tier == "sampled"

    def test_pet_budgeted_slot_budget(self):
        protocol = make_protocol("pet-budgeted", slot_budget=12)
        assert protocol.slot_budget == 12

    def test_pet_budgeted_n_max(self):
        small = make_protocol("pet-budgeted", n_max=1_000)
        large = make_protocol("pet-budgeted", n_max=1_000_000)
        assert small.slot_budget < large.slot_budget

    def test_unknown_kwarg_rejected_with_accepted_list(self):
        with pytest.raises(ConfigurationError) as excinfo:
            make_protocol("fneb", frame_sise=64)
        message = str(excinfo.value)
        assert "fneb" in message
        assert "frame_sise" in message
        assert "frame_size" in message  # the accepted-keywords list

    def test_unknown_kwarg_rejected_for_pet(self):
        with pytest.raises(ConfigurationError) as excinfo:
            make_protocol("pet", frame_size=64)
        message = str(excinfo.value)
        assert "frame_size" in message
        assert "tree_height" in message

    def test_invalid_value_surfaces_as_configuration_error(self):
        with pytest.raises(ConfigurationError):
            make_protocol("fneb", frame_size=1)
