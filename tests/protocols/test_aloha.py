"""Tests for framed-Aloha identification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.protocols.aloha import FramedAlohaIdentification
from repro.tags.population import TagPopulation


class TestIdentification:
    def test_identifies_everyone(self):
        population = TagPopulation.random(
            500, np.random.default_rng(0)
        )
        result = FramedAlohaIdentification().identify(
            population, np.random.default_rng(1)
        )
        assert result.identified == frozenset(
            int(i) for i in population.tag_ids
        )
        assert result.count == 500

    def test_empty_population(self):
        result = FramedAlohaIdentification().identify(
            TagPopulation([]), np.random.default_rng(2)
        )
        assert result.count == 0
        assert result.total_slots == 0

    def test_cost_roughly_linear(self):
        rng = np.random.default_rng(3)
        protocol = FramedAlohaIdentification()
        costs = {}
        for n in (500, 2_000):
            population = TagPopulation.random(n, rng)
            costs[n] = protocol.identify(population, rng).total_slots
        ratio = costs[2_000] / costs[500]
        assert 2.5 < ratio < 6.0  # ~4x for 4x the tags

    def test_cost_near_theoretical_throughput(self):
        # Optimal framed Aloha resolves ~1/e tags per slot: expect
        # roughly e*n slots, within a loose band for Q adaptation.
        rng = np.random.default_rng(4)
        n = 3_000
        population = TagPopulation.random(n, rng)
        slots = FramedAlohaIdentification().identify(
            population, rng
        ).total_slots
        assert 2.0 * n < slots < 6.0 * n

    def test_count_helper(self):
        rng = np.random.default_rng(5)
        population = TagPopulation.random(100, rng)
        count, slots = FramedAlohaIdentification().count(
            population, rng
        )
        assert count == 100
        assert slots > 100


class TestValidation:
    def test_rejects_bad_q_range(self):
        with pytest.raises(ConfigurationError):
            FramedAlohaIdentification(initial_q=5, max_q=4)
        with pytest.raises(ConfigurationError):
            FramedAlohaIdentification(min_q=-1)

    def test_rejects_inverted_clamp(self):
        with pytest.raises(ConfigurationError):
            FramedAlohaIdentification(initial_q=2, min_q=3, max_q=8)
