"""Tests for framed-Aloha identification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.config import AccuracyRequirement
from repro.protocols.aloha import (
    AlohaEstimatorProtocol,
    FramedAlohaIdentification,
)
from repro.protocols.registry import make_protocol
from repro.tags.population import TagPopulation


class TestIdentification:
    def test_identifies_everyone(self):
        population = TagPopulation.random(
            500, np.random.default_rng(0)
        )
        result = FramedAlohaIdentification().identify(
            population, np.random.default_rng(1)
        )
        assert result.identified == frozenset(
            int(i) for i in population.tag_ids
        )
        assert result.count == 500

    def test_empty_population(self):
        result = FramedAlohaIdentification().identify(
            TagPopulation([]), np.random.default_rng(2)
        )
        assert result.count == 0
        assert result.total_slots == 0

    def test_cost_roughly_linear(self):
        rng = np.random.default_rng(3)
        protocol = FramedAlohaIdentification()
        costs = {}
        for n in (500, 2_000):
            population = TagPopulation.random(n, rng)
            costs[n] = protocol.identify(population, rng).total_slots
        ratio = costs[2_000] / costs[500]
        assert 2.5 < ratio < 6.0  # ~4x for 4x the tags

    def test_cost_near_theoretical_throughput(self):
        # Optimal framed Aloha resolves ~1/e tags per slot: expect
        # roughly e*n slots, within a loose band for Q adaptation.
        rng = np.random.default_rng(4)
        n = 3_000
        population = TagPopulation.random(n, rng)
        slots = FramedAlohaIdentification().identify(
            population, rng
        ).total_slots
        assert 2.0 * n < slots < 6.0 * n

    def test_count_helper(self):
        rng = np.random.default_rng(5)
        population = TagPopulation.random(100, rng)
        count, slots = FramedAlohaIdentification().count(
            population, rng
        )
        assert count == 100
        assert slots > 100


class TestValidation:
    def test_rejects_bad_q_range(self):
        with pytest.raises(ConfigurationError):
            FramedAlohaIdentification(initial_q=5, max_q=4)
        with pytest.raises(ConfigurationError):
            FramedAlohaIdentification(min_q=-1)

    def test_rejects_inverted_clamp(self):
        with pytest.raises(ConfigurationError):
            FramedAlohaIdentification(initial_q=2, min_q=3, max_q=8)


class TestEstimator:
    def test_accurate_at_design_load(self):
        # Schoute at t = n/f = 1 is essentially unbiased.
        protocol = AlohaEstimatorProtocol(frame_size=1024)
        population = TagPopulation.random(
            1_000, np.random.default_rng(21)
        )
        result = protocol.estimate(
            population, rounds=30, rng=np.random.default_rng(22)
        )
        assert 0.9 < result.accuracy(1_000) < 1.1

    def test_plan_rounds_positive_and_monotone(self):
        protocol = AlohaEstimatorProtocol()
        tight = protocol.plan_rounds(AccuracyRequirement(0.05, 0.01))
        loose = protocol.plan_rounds(AccuracyRequirement(0.10, 0.01))
        assert tight >= loose >= 1

    def test_empty_population_statistic_zero(self):
        protocol = AlohaEstimatorProtocol(frame_size=64)
        assert protocol.round_statistic(5, TagPopulation([])) == 0.0

    def test_registry_entry(self):
        protocol = make_protocol("aloha", frame_size=256)
        assert isinstance(protocol, AlohaEstimatorProtocol)
        assert protocol.frame_size == 256

    def test_rejects_bad_frame_size(self):
        with pytest.raises(ConfigurationError):
            AlohaEstimatorProtocol(frame_size=0)

    def test_batched_engine_matches_scalar_statistic(self):
        protocol = AlohaEstimatorProtocol(frame_size=128)
        population = TagPopulation.random(
            128, np.random.default_rng(23)
        )
        seeds = np.arange(50, dtype=np.uint64)
        batched = protocol.batched_engine().round_statistics(
            seeds, population
        )
        scalar = [
            protocol.round_statistic(int(seed), population)
            for seed in seeds
        ]
        assert batched.tolist() == scalar
