"""Tests for the maximum-likelihood estimator extension."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.mle import (
    depth_log_likelihood,
    mle_estimate,
    mle_estimate_censored,
)
from repro.errors import AnalysisError, EstimationError
from repro.sim.sampled import SampledSimulator


def sample_depths(n: int, rounds: int, seed: int) -> np.ndarray:
    simulator = SampledSimulator(
        n, rng=np.random.default_rng(seed)
    )
    return simulator.sample_depths(rounds)


class TestLogLikelihood:
    def test_peaks_near_truth(self):
        n = 10_000
        depths = sample_depths(n, 512, seed=0)
        at_truth = depth_log_likelihood(depths, n, 32)
        at_half = depth_log_likelihood(depths, n // 2, 32)
        at_double = depth_log_likelihood(depths, n * 2, 32)
        assert at_truth > at_half
        assert at_truth > at_double

    def test_rejects_bad_n(self):
        with pytest.raises(AnalysisError):
            depth_log_likelihood(np.array([5]), 0, 32)


class TestMleEstimate:
    def test_recovers_truth(self):
        for n in (1_000, 50_000, 1_000_000):
            depths = sample_depths(n, 1024, seed=n)
            estimate = mle_estimate(depths, 32)
            assert 0.9 < estimate / n < 1.1, n

    def test_at_least_as_good_as_moment_estimator(self):
        from repro.core.accuracy import estimate_from_depths

        n, rounds, trials = 20_000, 64, 60
        mle_errors, moment_errors = [], []
        for trial in range(trials):
            depths = sample_depths(n, rounds, seed=1000 + trial)
            mle_errors.append(abs(mle_estimate(depths, 32) - n) / n)
            moment_errors.append(
                abs(estimate_from_depths(depths) - n) / n
            )
        mle_rms = float(np.sqrt(np.mean(np.square(mle_errors))))
        moment_rms = float(
            np.sqrt(np.mean(np.square(moment_errors)))
        )
        # MLE should not be worse; typically a few % better.
        assert mle_rms <= moment_rms * 1.05

    def test_rejects_empty_and_out_of_range(self):
        with pytest.raises(EstimationError):
            mle_estimate([], 32)
        with pytest.raises(EstimationError):
            mle_estimate([33], 32)

    def test_bracket_validation(self):
        with pytest.raises(AnalysisError):
            mle_estimate([5], 32, n_min=10, n_max=10)


class TestCensoredMle:
    def test_censored_equals_uncensored_when_no_censoring(self):
        n = 5_000
        depths = sample_depths(n, 256, seed=3)
        censor = 32  # nothing actually censored at H
        plain = mle_estimate(depths, 32)
        censored = mle_estimate_censored(depths, 32, censor_at=censor)
        assert censored == pytest.approx(plain, rel=0.02)

    def test_recovers_truth_under_censoring(self):
        n = 50_000
        censor = 14  # below E[d] ~ 15.9: heavy censoring
        depths = np.minimum(
            sample_depths(n, 2048, seed=4), censor
        )
        estimate = mle_estimate_censored(depths, 32, censor_at=censor)
        assert 0.85 < estimate / n < 1.15

    def test_rejects_inconsistent_observations(self):
        with pytest.raises(EstimationError):
            mle_estimate_censored([10], 32, censor_at=5)

    def test_rejects_bad_censor_point(self):
        with pytest.raises(AnalysisError):
            mle_estimate_censored([1], 32, censor_at=0)
