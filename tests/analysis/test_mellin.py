"""Tests for the gray-depth distribution and Mellin asymptotics."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.mellin import (
    expected_height_asymptotic,
    expected_height_exact,
    gray_depth_cdf,
    gray_depth_moments,
    gray_depth_pmf,
    gray_height_pmf,
    periodic_fluctuation,
)
from repro.core.accuracy import PHI, SIGMA_H
from repro.errors import AnalysisError


class TestPmf:
    @pytest.mark.parametrize("n", [0, 1, 10, 1000, 10**6])
    def test_sums_to_one(self, n):
        pmf = gray_depth_pmf(n, 32)
        assert pmf.sum() == pytest.approx(1.0)
        assert (pmf >= -1e-12).all()

    def test_empty_population_all_mass_at_zero(self):
        pmf = gray_depth_pmf(0, 16)
        assert pmf[0] == pytest.approx(1.0)

    def test_cdf_monotone(self):
        cdf = gray_depth_cdf(1000, 32)
        assert (np.diff(cdf) >= -1e-15).all()
        assert cdf[-1] == pytest.approx(1.0)

    def test_matches_paper_eq5_in_height_form(self):
        # P(h) = p^(2^(h-1)) (1 - p^(2^(h-1))) with p = (1 - 2^-H)^n,
        # for heights 1..H (the paper's analysis range).
        n, height = 1000, 32
        p = (1.0 - 2.0**-height) ** n
        pmf_h = gray_height_pmf(n, height)
        for h in range(1, height + 1):
            expected = p ** (2.0 ** (h - 1)) * (
                1.0 - p ** (2.0 ** (h - 1))
            )
            # Eq. 5 treats the 2^(h-1) leaves of each subtree as
            # independently white w.p. p; the exact law differs by the
            # O(n/2^H) dependence between subtrees.
            assert pmf_h[h] == pytest.approx(expected, abs=2e-4)

    def test_pmf_mode_near_log2_phi_n(self):
        n = 50_000
        pmf = gray_depth_pmf(n, 32)
        mode = int(pmf.argmax())
        assert abs(mode - math.log2(PHI * n)) <= 1.0

    def test_rejects_bad_inputs(self):
        with pytest.raises(AnalysisError):
            gray_depth_pmf(-1, 32)
        with pytest.raises(AnalysisError):
            gray_depth_pmf(10, 0)


class TestMoments:
    def test_exact_mean_close_to_asymptotic(self):
        # Eq. 8's error terms are O(1e-5) at large n.
        for n in (1_000, 50_000, 5_000_000):
            moments = gray_depth_moments(n, 32)
            assert moments.mean_depth == pytest.approx(
                moments.asymptotic_mean_depth, abs=0.01
            )

    def test_exact_std_close_to_sigma_h(self):
        for n in (1_000, 50_000, 1_000_000):
            moments = gray_depth_moments(n, 32)
            assert moments.std_depth == pytest.approx(SIGMA_H, abs=0.01)

    def test_mean_height_complements_depth(self):
        moments = gray_depth_moments(1000, 32)
        assert moments.mean_height == pytest.approx(
            32 - moments.mean_depth
        )

    def test_expected_height_forms_agree(self):
        for n in (10_000, 100_000):
            exact = expected_height_exact(n, 32)
            asymptotic = expected_height_asymptotic(n, 32)
            assert exact == pytest.approx(asymptotic, abs=0.01)

    def test_saturation_shrinks_mean_height(self):
        # When 2^H ~ n the expectation departs from the asymptotic form.
        moments = gray_depth_moments(50_000, 16)
        assert moments.mean_depth < moments.asymptotic_mean_depth

    def test_rejects_zero_n(self):
        with pytest.raises(AnalysisError):
            gray_depth_moments(0, 32)


class TestPeriodicFluctuation:
    def test_amplitude_below_paper_bound(self):
        # The paper bounds |P(log2 n)| by 1e-5 (Sec. 4.2).
        for n in (10, 137, 1_000, 48_611, 10**6):
            assert abs(periodic_fluctuation(n)) < 1e-5

    def test_periodic_in_log2_n(self):
        assert periodic_fluctuation(1000) == pytest.approx(
            periodic_fluctuation(2000), abs=1e-9
        )

    def test_rejects_nonpositive(self):
        with pytest.raises(AnalysisError):
            periodic_fluctuation(0)
