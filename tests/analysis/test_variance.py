"""Tests for the exact finite-m estimate moments."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.variance import (
    bias_corrected_estimate,
    estimate_moments,
    rounds_for_normalized_rms,
)
from repro.core.accuracy import SIGMA_H, estimate_std
from repro.errors import AnalysisError


class TestEstimateMoments:
    def test_bias_positive_and_shrinks_with_m(self):
        # Log-normal convexity: E[n_hat] > n, with bias ~ c/m.
        small_m = estimate_moments(10_000, 32, 8)
        large_m = estimate_moments(10_000, 32, 256)
        assert small_m.relative_bias > large_m.relative_bias > 0.0
        assert small_m.relative_bias > 0.05
        assert large_m.relative_bias < 0.005

    def test_bias_ratio_matches_one_over_m(self):
        m8 = estimate_moments(10_000, 32, 8).relative_bias
        m64 = estimate_moments(10_000, 32, 64).relative_bias
        assert m8 / m64 == pytest.approx(8.0, rel=0.25)

    def test_rms_matches_linearized_theory_at_large_m(self):
        n, m = 50_000, 1024
        exact = estimate_moments(n, 32, m)
        linear = estimate_std(n, m)
        assert exact.rms_error == pytest.approx(linear, rel=0.1)

    def test_rms_exceeds_linear_theory_at_small_m(self):
        # The Fig. 4c observation: measured normalized std beats the
        # first-order line at m = 8.
        n, m = 50_000, 8
        exact = estimate_moments(n, 32, m)
        linear = estimate_std(n, m) / n
        assert exact.normalized_rms > linear * 1.15

    def test_matches_simulation(self):
        from repro.sim.sampled import SampledSimulator

        n, m = 10_000, 32
        simulator = SampledSimulator(
            n, rng=np.random.default_rng(0)
        )
        estimates = simulator.estimate_batch(m, 4_000)
        exact = estimate_moments(n, 32, m)
        assert estimates.mean() == pytest.approx(exact.mean, rel=0.02)
        measured_rms = float(
            np.sqrt(np.mean((estimates - n) ** 2))
        )
        assert measured_rms == pytest.approx(exact.rms_error, rel=0.06)

    def test_rejects_bad_inputs(self):
        with pytest.raises(AnalysisError):
            estimate_moments(0, 32, 8)
        with pytest.raises(AnalysisError):
            estimate_moments(10, 32, 0)


class TestBiasCorrection:
    def test_correction_removes_bias(self):
        from repro.sim.sampled import SampledSimulator

        n, m = 10_000, 16
        simulator = SampledSimulator(
            n, rng=np.random.default_rng(1)
        )
        from repro.core.accuracy import PHI

        depths = simulator.sample_depths(m * 2_000).reshape(2_000, m)
        mean_depths = depths.mean(axis=1)
        plain = 2.0**mean_depths / PHI
        corrected = np.array(
            [
                bias_corrected_estimate(d, p, 32, m)
                for d, p in zip(mean_depths, plain)
            ]
        )
        # Plain estimator biased high at m=16; corrected within 1%.
        assert plain.mean() / n > 1.02
        assert corrected.mean() / n == pytest.approx(1.0, abs=0.012)


class TestExactPlanner:
    def test_monotone_in_target(self):
        loose = rounds_for_normalized_rms(50_000, 32, 0.2)
        tight = rounds_for_normalized_rms(50_000, 32, 0.05)
        assert tight > loose

    def test_eq20_is_mildly_conservative(self):
        # Eq. 20 for (eps=10%, delta=32%) ~ z=1: rounds to reach
        # normalized sigma ~ 0.1.  The exact-law m for RMS 0.1 should
        # be in the same ballpark but not larger.
        from repro.core.accuracy import rounds_required

        exact_m = rounds_for_normalized_rms(50_000, 32, 0.10)
        linear_m = (SIGMA_H * np.log(2) / 0.10) ** 2
        assert exact_m == pytest.approx(linear_m, rel=0.25)

    def test_unreachable_target_rejected(self):
        with pytest.raises(AnalysisError):
            rounds_for_normalized_rms(
                50_000, 32, 1e-6, max_rounds=1024
            )
