"""Tests for the predicted sampling distributions."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.theory import (
    estimate_distribution,
    fneb_round_moments,
    lof_round_moments,
    pet_round_moments,
    within_interval_probability,
)
from repro.errors import AnalysisError


class TestPetDistribution:
    def test_density_integrates_to_about_one(self):
        grid = np.linspace(30_000, 80_000, 4001)
        _, pdf = estimate_distribution(50_000, 32, 4697, grid=grid)
        trapezoid = getattr(np, "trapezoid", None) or np.trapz
        mass = float(trapezoid(pdf, grid))
        assert mass == pytest.approx(1.0, abs=1e-3)

    def test_density_peaks_near_n(self):
        grid, pdf = estimate_distribution(50_000, 32, 4697)
        peak = float(grid[pdf.argmax()])
        assert abs(peak - 50_000) < 1_500

    def test_more_rounds_concentrate(self):
        grid = np.linspace(45_000, 55_000, 501)
        _, loose = estimate_distribution(50_000, 32, 100, grid=grid)
        _, tight = estimate_distribution(50_000, 32, 10_000, grid=grid)
        assert tight.max() > loose.max()

    def test_rejects_bad_inputs(self):
        with pytest.raises(AnalysisError):
            estimate_distribution(50_000, 32, 0)
        with pytest.raises(AnalysisError):
            estimate_distribution(
                50_000, 32, 10, grid=np.array([-1.0, 1.0])
            )


class TestWithinInterval:
    def test_planned_rounds_meet_target(self):
        # m = 4697 was planned for (5%, 1%): predicted coverage >= 99%.
        coverage = within_interval_probability(50_000, 32, 4697, 0.05)
        assert coverage >= 0.99

    def test_fewer_rounds_lose_coverage(self):
        high = within_interval_probability(50_000, 32, 4697, 0.05)
        low = within_interval_probability(50_000, 32, 500, 0.05)
        assert low < high

    def test_wider_interval_gains_coverage(self):
        narrow = within_interval_probability(50_000, 32, 1000, 0.02)
        wide = within_interval_probability(50_000, 32, 1000, 0.10)
        assert wide > narrow

    def test_rejects_bad_epsilon(self):
        with pytest.raises(AnalysisError):
            within_interval_probability(1000, 32, 10, 0.0)


class TestPetRoundMoments:
    def test_consistent_with_mellin(self):
        from repro.analysis.mellin import gray_depth_moments

        expected = gray_depth_moments(10_000, 32)
        moments = pet_round_moments(10_000, 32)
        assert moments.mean == expected.mean_depth
        assert moments.std == expected.std_depth


class TestFnebMoments:
    def test_mean_tracks_f_over_n(self):
        moments = fneb_round_moments(1000, 2**20)
        assert moments.mean == pytest.approx(2**20 / 1000, rel=0.01)

    def test_std_comparable_to_mean(self):
        # Geometric-like: sigma ~ mean for n << f.
        moments = fneb_round_moments(1000, 2**20)
        assert 0.9 < moments.std / moments.mean < 1.05

    def test_exact_and_closed_forms_agree(self):
        # frame 2^16 uses the exact sum; scale the same load up to the
        # closed form and compare.  At equal load the finite-n
        # correction (1 - x/f)^n vs e^(-nx/f) shifts the small-n exact
        # mean by ~n^-1 relative terms, so agreement is ~2%.
        exact = fneb_round_moments(64, 2**16)
        closed = fneb_round_moments(64 * 256, 2**24)
        assert exact.mean == pytest.approx(closed.mean, rel=0.02)
        assert exact.std == pytest.approx(closed.std, rel=0.04)
        # What actually matters downstream (the round planner) is the
        # relative deviation, which agrees to ~2%.
        assert exact.std / exact.mean == pytest.approx(
            closed.std / closed.mean, rel=0.02
        )

    def test_rejects_bad_inputs(self):
        with pytest.raises(AnalysisError):
            fneb_round_moments(0, 100)
        with pytest.raises(AnalysisError):
            fneb_round_moments(10, 0)


class TestLofMoments:
    def test_mean_near_log2_kappa_n(self):
        import math

        for n in (1_000, 50_000):
            moments = lof_round_moments(n, 32)
            assert moments.mean == pytest.approx(
                math.log2(0.77351 * n), abs=0.15
            )

    def test_std_near_fm_constant(self):
        # FM-sketch analyses give sigma(R) ~ 1.12.
        moments = lof_round_moments(50_000, 32)
        assert 1.0 < moments.std < 1.25

    def test_rejects_bad_inputs(self):
        with pytest.raises(AnalysisError):
            lof_round_moments(0, 32)
        with pytest.raises(AnalysisError):
            lof_round_moments(10, 0)
