"""Tests for saturation analysis and the corrected estimator."""

from __future__ import annotations

import pytest

from repro.analysis.saturation import (
    corrected_estimate,
    effective_range,
    estimator_bias,
    expected_depth_exact,
    saturation_level,
)
from repro.errors import AnalysisError


class TestSaturationLevel:
    def test_empty_population_unsaturated(self):
        assert saturation_level(0, 32) == 0.0

    def test_paper_sizing_claim(self):
        # "H = 32 can accommodate n = 40,000,000 with p >= 0.99":
        # saturation (black fraction) stays below 1%.
        assert saturation_level(40_000_000, 32) < 0.01

    def test_saturation_grows_with_n(self):
        assert saturation_level(10**6, 16) > saturation_level(10**4, 16)

    def test_rejects_bad_inputs(self):
        with pytest.raises(AnalysisError):
            saturation_level(-1, 32)
        with pytest.raises(AnalysisError):
            saturation_level(10, 0)


class TestEstimatorBias:
    def test_unbiased_when_unsaturated(self):
        assert abs(estimator_bias(50_000, 32)) < 0.01

    def test_negative_bias_when_saturated(self):
        assert estimator_bias(50_000, 16) < -0.2

    def test_bias_worsens_with_saturation(self):
        assert estimator_bias(50_000, 16) < estimator_bias(50_000, 20)


class TestCorrectedEstimate:
    def test_inverts_exact_depth(self):
        # Feed the corrected estimator the exact expected depth: it
        # should recover n even deep into saturation.
        for n, height in ((50_000, 18), (50_000, 17), (200_000, 20)):
            mean_depth = expected_depth_exact(n, height)
            estimate = corrected_estimate(mean_depth, height)
            assert estimate == pytest.approx(n, rel=0.02), (n, height)

    def test_matches_plain_estimator_when_unsaturated(self):
        from repro.core.accuracy import PHI

        n, height = 10_000, 32
        mean_depth = expected_depth_exact(n, height)
        corrected = corrected_estimate(mean_depth, height)
        plain = 2.0**mean_depth / PHI
        assert corrected == pytest.approx(plain, rel=0.02)

    def test_saturated_observation_returns_bracket(self):
        estimate = corrected_estimate(16.0, 16, max_n=10**7)
        assert estimate == pytest.approx(10**7)

    def test_rejects_out_of_range_depth(self):
        with pytest.raises(AnalysisError):
            corrected_estimate(33.0, 32)
        with pytest.raises(AnalysisError):
            corrected_estimate(-1.0, 32)


class TestEffectiveRange:
    def test_h32_covers_tens_of_millions(self):
        assert effective_range(32) > 10_000_000

    def test_larger_h_larger_range(self):
        assert effective_range(24) > effective_range(18)

    def test_range_consistent_with_bias(self):
        height = 20
        limit = effective_range(height, bias_tolerance=0.05)
        assert abs(estimator_bias(limit, height)) <= 0.05
        assert abs(estimator_bias(limit * 2, height)) > 0.05

    def test_rejects_tiny_height(self):
        with pytest.raises(AnalysisError):
            effective_range(4)

    def test_rejects_bad_tolerance(self):
        with pytest.raises(AnalysisError):
            effective_range(32, bias_tolerance=0.0)
