"""Tests for experiment summary statistics."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.stats import summarize
from repro.errors import AnalysisError


class TestSummarize:
    def test_perfect_estimates(self):
        summary = summarize([100.0] * 10, true_n=100)
        assert summary.accuracy == pytest.approx(1.0)
        assert summary.std == pytest.approx(0.0)
        assert summary.normalized_std == pytest.approx(0.0)
        assert summary.runs == 10

    def test_std_is_rms_around_truth(self):
        # Eq. 23: sqrt(E[(n_hat - n)^2]), not the sample std.
        summary = summarize([90.0, 110.0], true_n=100)
        assert summary.std == pytest.approx(10.0)
        # A biased series has nonzero Eq. 23 std even with zero spread.
        biased = summarize([110.0, 110.0], true_n=100)
        assert biased.std == pytest.approx(10.0)

    def test_within_fraction(self):
        estimates = [95.0, 100.0, 105.0, 120.0]
        summary = summarize(estimates, true_n=100, epsilon=0.05)
        assert summary.within_fraction == pytest.approx(0.75)

    def test_within_fraction_nan_without_epsilon(self):
        summary = summarize([100.0], true_n=100)
        assert math.isnan(summary.within_fraction)

    def test_row_rendering(self):
        row = summarize([100.0], true_n=100, epsilon=0.05).row()
        assert row["n"] == 100
        assert row["accuracy"] == pytest.approx(1.0)

    def test_rejects_empty(self):
        with pytest.raises(AnalysisError):
            summarize([], true_n=10)

    def test_rejects_bad_n(self):
        with pytest.raises(AnalysisError):
            summarize([1.0], true_n=0)

    def test_numpy_input(self):
        summary = summarize(np.array([99.0, 101.0]), true_n=100)
        assert summary.mean_estimate == pytest.approx(100.0)
