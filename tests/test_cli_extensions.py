"""CLI coverage for the extension and ablation entry points."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCliExtensionEntries:
    def test_extensions_listed(self):
        # argparse help should accept the extensions choice.
        with pytest.raises(SystemExit) as excinfo:
            main(["--help"])
        assert excinfo.value.code == 0

    def test_table5(self, capsys):
        assert main(["table5"]) == 0
        out = capsys.readouterr().out
        assert "Table 5" in out
        assert "PET/FNEB" in out

    def test_fig5b(self, capsys):
        assert main(["fig5b"]) == 0
        assert "Fig. 5b" in capsys.readouterr().out

    def test_runs_flag_respected(self, capsys):
        assert main(["fig4", "--runs", "10"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4a" in out


class TestEntryPoint:
    def test_module_main_importable(self):
        import repro.__main__  # noqa: F401  (import side effects only)

    def test_console_script_target(self):
        from repro.cli import main as entry

        assert callable(entry)
