"""Tests for the exception hierarchy and package surface."""

from __future__ import annotations

import pytest

import repro
from repro.errors import (
    AnalysisError,
    ChannelError,
    ConfigurationError,
    EstimationError,
    ProtocolError,
    ReproError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            ConfigurationError,
            ProtocolError,
            ChannelError,
            EstimationError,
            AnalysisError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)
        assert issubclass(exc, Exception)

    def test_catchable_as_base(self):
        with pytest.raises(ReproError):
            raise ConfigurationError("boom")


class TestPackageSurface:
    def test_version_is_semver(self):
        parts = repro.__version__.split(".")
        assert len(parts) == 3
        assert all(part.isdigit() for part in parts)

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_headline_constants_exported(self):
        assert 1.25 < repro.PHI < 1.26
        assert 1.87 < repro.SIGMA_H < 1.88

    def test_subpackages_importable(self):
        import repro.analysis
        import repro.core
        import repro.figures
        import repro.hashing
        import repro.protocols
        import repro.radio
        import repro.reader
        import repro.sim
        import repro.tags

        for module in (
            repro.core,
            repro.analysis,
            repro.protocols,
        ):
            assert module.__doc__
