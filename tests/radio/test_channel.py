"""Tests for the slotted channel."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ChannelError
from repro.radio.channel import SlottedChannel
from repro.radio.slots import SlotType


class EchoTag:
    """Responds whenever the command equals its trigger."""

    def __init__(self, tag_id: int, trigger: object):
        self._tag_id = tag_id
        self.trigger = trigger
        self.heard: list[object] = []

    @property
    def tag_id(self) -> int:
        return self._tag_id

    def hear(self, command: object) -> bool:
        self.heard.append(command)
        return command == self.trigger


class TestAttachment:
    def test_attach_and_broadcast(self):
        channel = SlottedChannel()
        channel.attach(EchoTag(1, "go"))
        outcome = channel.broadcast("go")
        assert outcome.slot_type is SlotType.SINGLETON

    def test_duplicate_attach_rejected(self):
        channel = SlottedChannel()
        channel.attach(EchoTag(1, "go"))
        with pytest.raises(ChannelError):
            channel.attach(EchoTag(1, "go"))

    def test_detach(self):
        channel = SlottedChannel()
        channel.attach(EchoTag(1, "go"))
        channel.detach(1)
        outcome = channel.broadcast("go")
        assert outcome.slot_type is SlotType.IDLE

    def test_detach_unknown_rejected(self):
        with pytest.raises(ChannelError):
            SlottedChannel().detach(5)

    def test_attach_all(self):
        channel = SlottedChannel()
        channel.attach_all([EchoTag(i, "go") for i in range(3)])
        assert len(channel.listeners) == 3


class TestBroadcast:
    def test_every_listener_hears_every_command(self):
        channel = SlottedChannel()
        tags = [EchoTag(i, "never") for i in range(4)]
        channel.attach_all(tags)
        channel.broadcast("a")
        channel.broadcast("b")
        for tag in tags:
            assert tag.heard == ["a", "b"]

    def test_collision_when_multiple_respond(self):
        channel = SlottedChannel()
        channel.attach_all([EchoTag(i, "go") for i in range(3)])
        outcome = channel.broadcast("go")
        assert outcome.slot_type is SlotType.COLLISION
        assert set(outcome.responders) == {0, 1, 2}

    def test_trace_records_slots(self):
        channel = SlottedChannel()
        channel.attach(EchoTag(1, "go"))
        channel.broadcast("go", label="query", payload_bits=6)
        channel.broadcast("stop", label="other", payload_bits=1)
        assert channel.trace.total_slots == 2
        assert channel.trace.total_payload_bits == 7
        assert channel.trace.count(SlotType.SINGLETON) == 1
        assert channel.trace.count(SlotType.IDLE) == 1

    def test_last_event(self):
        channel = SlottedChannel()
        with pytest.raises(ChannelError):
            channel.last_event()
        channel.broadcast("x", label="cmd")
        assert channel.last_event().command == "cmd"

    def test_loss_applies(self):
        from repro.config import ChannelConfig

        channel = SlottedChannel(
            config=ChannelConfig(loss_probability=1.0),
            rng=np.random.default_rng(0),
        )
        channel.attach(EchoTag(1, "go"))
        outcome = channel.broadcast("go")
        assert outcome.slot_type is SlotType.IDLE
