"""Tests for the slot timing model."""

from __future__ import annotations

import pytest

from repro.config import TimingConfig
from repro.radio.events import ChannelTrace
from repro.radio.slots import SlotOutcome, SlotType
from repro.radio.timing import SlotTimingModel


class TestUniformBudget:
    def test_scales_linearly_with_slots(self):
        model = SlotTimingModel()
        one = model.uniform(1, 6)
        hundred = model.uniform(100, 6)
        assert hundred.microseconds == pytest.approx(
            100 * one.microseconds
        )
        assert hundred.slots == 100

    def test_unit_conversions(self):
        budget = SlotTimingModel().uniform(1000, 6)
        assert budget.milliseconds == pytest.approx(
            budget.microseconds / 1e3
        )
        assert budget.seconds == pytest.approx(budget.microseconds / 1e6)

    def test_larger_payload_costs_more(self):
        model = SlotTimingModel()
        assert (
            model.uniform(10, 32).microseconds
            > model.uniform(10, 1).microseconds
        )


class TestTraceBudget:
    def test_respects_per_slot_payloads(self):
        model = SlotTimingModel(TimingConfig(turnaround_us=0.0))
        trace = ChannelTrace()
        idle = SlotOutcome(slot_type=SlotType.IDLE)
        trace.record("a", 1, idle)
        trace.record("b", 33, idle)
        budget = model.of_trace(trace)
        by_hand = (
            model.uniform(1, 1).microseconds
            + model.uniform(1, 33).microseconds
        )
        assert budget.microseconds == pytest.approx(by_hand)
        assert budget.slots == 2

    def test_pet_round_is_milliseconds(self):
        # Sanity: a 5-slot PET round at default Gen2-ish parameters sits
        # in the single-digit millisecond range.
        budget = SlotTimingModel().uniform(5, 6)
        assert 1.0 < budget.milliseconds < 10.0
