"""Tests for slot outcome classification."""

from __future__ import annotations

from repro.radio.slots import SlotOutcome, SlotType, classify


class TestClassify:
    def test_zero_responders_is_idle(self):
        assert classify(0) is SlotType.IDLE

    def test_one_responder_is_singleton(self):
        assert classify(1) is SlotType.SINGLETON

    def test_many_responders_collide(self):
        assert classify(2) is SlotType.COLLISION
        assert classify(100) is SlotType.COLLISION

    def test_without_collision_detection_busy_is_collision(self):
        assert classify(1, detect_collisions=False) is SlotType.COLLISION
        assert classify(0, detect_collisions=False) is SlotType.IDLE


class TestSlotType:
    def test_busy_property(self):
        assert not SlotType.IDLE.busy
        assert SlotType.SINGLETON.busy
        assert SlotType.COLLISION.busy


class TestSlotOutcome:
    def test_decoded_tag_for_singleton(self):
        outcome = SlotOutcome(
            slot_type=SlotType.SINGLETON, responders=(42,), transmitted=1
        )
        assert outcome.decoded_tag == 42
        assert outcome.busy

    def test_no_decoded_tag_for_collision(self):
        outcome = SlotOutcome(
            slot_type=SlotType.COLLISION,
            responders=(1, 2),
            transmitted=2,
        )
        assert outcome.decoded_tag is None

    def test_no_decoded_tag_for_idle(self):
        outcome = SlotOutcome(slot_type=SlotType.IDLE)
        assert outcome.decoded_tag is None
        assert not outcome.busy
