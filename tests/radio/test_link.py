"""Tests for the link model (loss and capture)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ChannelConfig
from repro.radio.link import LinkModel
from repro.radio.slots import SlotType


def make_link(rng_seed: int = 0, **kwargs) -> LinkModel:
    return LinkModel(
        ChannelConfig(**kwargs), np.random.default_rng(rng_seed)
    )


class TestLosslessDelivery:
    def test_idle(self):
        outcome = make_link().deliver(())
        assert outcome.slot_type is SlotType.IDLE
        assert outcome.transmitted == 0

    def test_singleton(self):
        outcome = make_link().deliver((7,))
        assert outcome.slot_type is SlotType.SINGLETON
        assert outcome.responders == (7,)

    def test_collision(self):
        outcome = make_link().deliver((1, 2, 3))
        assert outcome.slot_type is SlotType.COLLISION
        assert outcome.transmitted == 3


class TestLoss:
    def test_total_loss_turns_busy_into_idle(self):
        link = make_link(loss_probability=1.0)
        outcome = link.deliver((1, 2, 3))
        assert outcome.slot_type is SlotType.IDLE
        assert outcome.transmitted == 3  # trace still sees attempts

    def test_partial_loss_rate(self):
        link = make_link(rng_seed=3, loss_probability=0.3)
        survivors = 0
        trials = 2000
        for _ in range(trials):
            outcome = link.deliver((1,))
            survivors += outcome.busy
        assert 0.65 < survivors / trials < 0.75

    def test_zero_loss_keeps_everyone(self):
        link = make_link(loss_probability=0.0)
        outcome = link.deliver(tuple(range(10)))
        assert len(outcome.responders) == 10


class TestCapture:
    def test_capture_resolves_collision_to_singleton(self):
        link = make_link(capture_probability=1.0)
        outcome = link.deliver((5, 6, 7))
        assert outcome.slot_type is SlotType.SINGLETON
        assert outcome.responders[0] in (5, 6, 7)

    def test_capture_does_not_touch_singletons(self):
        link = make_link(capture_probability=1.0)
        outcome = link.deliver((5,))
        assert outcome.responders == (5,)

    def test_capture_rate(self):
        link = make_link(rng_seed=4, capture_probability=0.5)
        captures = 0
        trials = 2000
        for _ in range(trials):
            outcome = link.deliver((1, 2))
            captures += outcome.slot_type is SlotType.SINGLETON
        assert 0.45 < captures / trials < 0.55


class TestDetectCollisions:
    def test_disabled_detection_reports_collisions(self):
        link = make_link(detect_collisions=False)
        outcome = link.deliver((9,))
        assert outcome.slot_type is SlotType.COLLISION
        assert outcome.busy
