"""Tests for channel traces."""

from __future__ import annotations

from repro.radio.events import ChannelTrace
from repro.radio.slots import SlotOutcome, SlotType


def busy_outcome(*responders: int) -> SlotOutcome:
    slot_type = (
        SlotType.SINGLETON if len(responders) == 1 else SlotType.COLLISION
    )
    return SlotOutcome(
        slot_type=slot_type,
        responders=responders,
        transmitted=len(responders),
    )


class TestChannelTrace:
    def test_indices_increment(self):
        trace = ChannelTrace()
        first = trace.record("a", 1, busy_outcome(1))
        second = trace.record("b", 2, busy_outcome(1, 2))
        assert first.index == 0
        assert second.index == 1
        assert len(trace) == 2

    def test_totals(self):
        trace = ChannelTrace()
        trace.record("a", 5, busy_outcome(1))
        trace.record("b", 3, SlotOutcome(slot_type=SlotType.IDLE))
        assert trace.total_slots == 2
        assert trace.total_payload_bits == 8

    def test_count_by_type(self):
        trace = ChannelTrace()
        trace.record("a", 0, busy_outcome(1))
        trace.record("b", 0, busy_outcome(1, 2))
        trace.record("c", 0, SlotOutcome(slot_type=SlotType.IDLE))
        assert trace.count(SlotType.SINGLETON) == 1
        assert trace.count(SlotType.COLLISION) == 1
        assert trace.count(SlotType.IDLE) == 1

    def test_render_contains_commands_and_outcomes(self):
        trace = ChannelTrace()
        trace.record("00**", 6, busy_outcome(3, 4))
        rendering = trace.render()
        assert "00**" in rendering
        assert "collision" in rendering
        assert "3,4" in rendering

    def test_iteration(self):
        trace = ChannelTrace()
        trace.record("a", 0, busy_outcome(1))
        assert [event.command for event in trace] == ["a"]
