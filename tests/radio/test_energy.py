"""Tests for the energy model."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.radio.energy import (
    EnergyConfig,
    EnergyModel,
    pet_tag_energy,
)
from repro.radio.events import ChannelTrace
from repro.radio.slots import SlotOutcome, SlotType


class TestEnergyConfig:
    def test_rejects_negative_constants(self):
        with pytest.raises(ConfigurationError):
            EnergyConfig(tag_rx_nj_per_bit=-1.0)
        with pytest.raises(ConfigurationError):
            EnergyConfig(reader_tx_mw=-5.0)


class TestPlanBudget:
    def test_scales_with_rounds(self):
        model = EnergyModel()
        one = model.of_plan(100, 5, 1, 200.0, 0.0)
        two = model.of_plan(200, 5, 1, 400.0, 0.0)
        assert two.tag_nj == pytest.approx(2 * one.tag_nj)
        assert two.reader_mj == pytest.approx(2 * one.reader_mj)

    def test_hashing_dominates_active_tags(self):
        model = EnergyModel()
        passive = model.of_plan(1000, 5, 1, 2000.0, 0.0)
        active = model.of_plan(1000, 5, 1, 2000.0, 1.0)
        assert active.tag_nj > passive.tag_nj
        # 1000 hashes at 150 nJ = 150k nJ extra.
        assert active.tag_nj - passive.tag_nj == pytest.approx(150_000)

    def test_rejects_degenerate_plans(self):
        with pytest.raises(ConfigurationError):
            EnergyModel().of_plan(0, 5, 1, 0.0, 0.0)


class TestTraceBudget:
    def test_reads_bits_from_trace(self):
        trace = ChannelTrace()
        idle = SlotOutcome(slot_type=SlotType.IDLE)
        trace.record("a", 10, idle)
        trace.record("b", 10, idle)
        model = EnergyModel()
        budget = model.of_trace(
            trace, responses_per_tag=0.0, hashes_per_tag=0.0
        )
        assert budget.tag_nj == pytest.approx(
            20 * model.config.tag_rx_nj_per_bit
        )
        assert budget.reader_mj > 0


class TestPetTagEnergy:
    def test_passive_cheaper_than_active(self):
        passive = pet_tag_energy(1000, passive=True)
        active = pet_tag_energy(1000, passive=False)
        assert passive.tag_nj < active.tag_nj

    def test_energy_linear_in_rounds(self):
        short = pet_tag_energy(100)
        long = pet_tag_energy(1000)
        assert long.tag_nj == pytest.approx(10 * short.tag_nj, rel=0.01)
