"""Tests for the CLI entry point."""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import get_registry
from repro.obs.registry import NULL_REGISTRY


class TestCli:
    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        assert "Table 3" in capsys.readouterr().out

    def test_fig4_with_small_runs(self, capsys):
        assert main(["fig4", "--runs", "20"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4a" in out
        assert "Fig. 4c" in out

    def test_fig7(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 7a" in out

    def test_fig5a(self, capsys):
        assert main(["fig5a"]) == 0
        assert "Fig. 5a" in capsys.readouterr().out

    def test_unknown_experiment_exits_nonzero(self):
        with pytest.raises(SystemExit):
            main(["figNaN"])


class TestCliMetrics:
    def test_metrics_out_writes_jsonl_and_prints_summary(
        self, tmp_path, capsys
    ):
        path = tmp_path / "metrics.jsonl"
        assert main(
            ["fig4", "--runs", "5", "--metrics-out", str(path)]
        ) == 0
        out = capsys.readouterr().out
        assert "metrics summary" in out
        assert f"metrics written to {path}" in out

        records = [
            json.loads(line)
            for line in path.read_text().strip().split("\n")
        ]
        counters = {
            r["name"]: r["value"]
            for r in records
            if r["kind"] == "counter"
        }
        # Slot-outcome accounting from the sampled tier.
        assert counters["sim.slots"] > 0
        assert (
            counters["sim.slots.busy"] + counters["sim.slots.idle"]
            == counters["sim.slots"]
        )
        # Per-cell timings (spans) and final estimates (cell events).
        spans = [r for r in records if r["kind"] == "span"]
        assert any(r["name"] == "cell" for r in spans)
        cells = [
            r
            for r in records
            if r["kind"] == "event" and r["name"] == "cell"
        ]
        assert cells and all(
            cell["mean_estimate"] > 0 for cell in cells
        )

    def test_metrics_summary_flag_without_file(self, capsys):
        assert main(["fig3", "--metrics-summary"]) == 0
        assert "metrics summary" in capsys.readouterr().out

    def test_registry_restored_after_instrumented_run(self, tmp_path):
        main(
            [
                "fig3",
                "--metrics-out",
                str(tmp_path / "m.jsonl"),
            ]
        )
        assert get_registry() is NULL_REGISTRY

    def test_no_flag_keeps_null_registry(self, capsys):
        assert main(["fig3"]) == 0
        assert "metrics summary" not in capsys.readouterr().out

    def test_metrics_out_schema(self, tmp_path):
        # Contract for downstream log pipelines: every JSONL record
        # carries the routing triplet type / name / ts.
        path = tmp_path / "metrics.jsonl"
        assert main(
            ["fig3", "--metrics-out", str(path)]
        ) == 0
        lines = path.read_text().strip().split("\n")
        assert lines
        for line in lines:
            record = json.loads(line)
            assert record["type"] in {
                "counter", "gauge", "histogram", "span", "event",
            }
            assert record["type"] == record["kind"]
            assert isinstance(record["name"], str) and record["name"]
            assert isinstance(record["ts"], float)


class TestCliDiagnostics:
    def test_diagnose_prom_trace_end_to_end(self, tmp_path, capsys):
        from repro.core.accuracy import rounds_required
        from repro.obs import parse_openmetrics, read_trace, verify_replay

        html_path = tmp_path / "diag.html"
        prom_path = tmp_path / "metrics.prom"
        trace_path = tmp_path / "trace.jsonl"
        assert main(
            [
                "fig4",
                "--runs", "3",
                "--diagnose", str(html_path),
                "--prom-out", str(prom_path),
                "--trace-out", str(trace_path),
                "--trace-sample", "every_k:997",
            ]
        ) == 0
        out = capsys.readouterr().out
        assert "Convergence" in out  # terminal report printed

        # The OpenMetrics file is valid and carries the health gauges.
        samples, types = parse_openmetrics(prom_path.read_text())
        assert types["repro_diag_n_hat"] == "gauge"
        assert samples["repro_sim_rounds_total"] > 0
        assert samples["repro_diag_rounds_total"] > 0

        # Every written trace record replays bit-for-bit.
        records = list(read_trace(str(trace_path)))
        assert records
        for record in records[:200]:
            assert verify_replay(record)

        # The HTML convergence section quotes the Eq. 20 round budget
        # from core/accuracy.
        html_text = html_path.read_text()
        assert 'id="convergence"' in html_text
        assert f"{rounds_required(0.05, 0.01):,}" in html_text

    def test_diagnose_defaults_to_outliers_only(self, tmp_path, capsys):
        import os

        html_default = tmp_path / "diagnostics.html"
        cwd = os.getcwd()
        os.chdir(tmp_path)
        try:
            assert main(["fig3", "--diagnose"]) == 0
        finally:
            os.chdir(cwd)
        assert html_default.exists()
        assert "<!DOCTYPE html>" in html_default.read_text()

    def test_registry_restored_after_diagnosed_run(self, tmp_path):
        main(["fig3", "--diagnose", str(tmp_path / "d.html")])
        assert get_registry() is NULL_REGISTRY


class TestCliProtocols:
    def test_protocols_sweep_prints_table(self, capsys):
        assert main(["protocols", "--runs", "5"]) == 0
        out = capsys.readouterr().out
        assert "Baseline-protocol comparison sweep" in out
        assert "FNEB" in out
        assert "ALOHA" in out

    def test_protocols_with_workers(self, capsys):
        assert main(
            ["protocols", "--runs", "5", "--workers", "2"]
        ) == 0
        assert "ALOHA" in capsys.readouterr().out
