"""Tests for the CLI entry point."""

from __future__ import annotations

import pytest

from repro.cli import main


class TestCli:
    def test_fig3(self, capsys):
        assert main(["fig3"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 3" in out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        assert "Table 3" in capsys.readouterr().out

    def test_fig4_with_small_runs(self, capsys):
        assert main(["fig4", "--runs", "20"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 4a" in out
        assert "Fig. 4c" in out

    def test_fig7(self, capsys):
        assert main(["fig7"]) == 0
        out = capsys.readouterr().out
        assert "Fig. 7a" in out

    def test_fig5a(self, capsys):
        assert main(["fig5a"]) == 0
        assert "Fig. 5a" in capsys.readouterr().out

    def test_unknown_experiment_exits_nonzero(self):
        with pytest.raises(SystemExit):
            main(["figNaN"])
