"""Integration tests for the paper's scale claims."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.saturation import saturation_level
from repro.config import PetConfig
from repro.core.accuracy import minimum_height
from repro.sim.sampled import SampledSimulator


class TestMillionsOfTags:
    def test_ten_million_tags_estimate(self):
        # "providing the capability to support millions of RFID tags."
        n = 10_000_000
        simulator = SampledSimulator(
            n, config=PetConfig(), rng=np.random.default_rng(0)
        )
        result = simulator.estimate(rounds=1024)
        assert 0.93 < result.n_hat / n < 1.07
        assert result.total_slots == 1024 * 5

    def test_slots_constant_across_scales(self):
        slots = set()
        for n in (1_000, 1_000_000):
            simulator = SampledSimulator(
                n, rng=np.random.default_rng(n)
            )
            slots.add(simulator.estimate(rounds=64).total_slots)
        assert len(slots) == 1  # 5 slots/round regardless of n

    def test_forty_million_sizing_claim(self):
        # "H = 32 can accommodate n = 40,000,000 with p >= 0.99."
        assert saturation_level(40_000_000, 32) <= 0.01
        assert minimum_height(40_000_000, 0.99) <= 32

    def test_rounds_planned_do_not_depend_on_n(self):
        # Eq. 20's independence from n is the scalability core: the
        # whole plan is computable before knowing anything about the
        # population.
        from repro.core.accuracy import rounds_required

        m = rounds_required(0.05, 0.01)
        assert m == rounds_required(0.05, 0.01)
        assert 4600 <= m <= 4800


class TestLinearVariantScaling:
    def test_linear_slot_cost_grows_logarithmically(self):
        import math

        from repro.core.accuracy import PHI

        means = {}
        for n in (10_000, 10_000_000):
            simulator = SampledSimulator(
                n,
                config=PetConfig(binary_search=False),
                rng=np.random.default_rng(n),
            )
            result = simulator.estimate(rounds=200)
            means[n] = result.total_slots / 200
        # +3 decades of n -> ~ +log2(1000) ~ 10 slots/round.
        growth = means[10_000_000] - means[10_000]
        assert growth == pytest.approx(math.log2(1000), abs=1.0)
        for n, mean_slots in means.items():
            predicted = math.log2(PHI * n) + 1.0
            assert mean_slots == pytest.approx(predicted, abs=0.8)
