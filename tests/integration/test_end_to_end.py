"""End-to-end integration tests across the whole stack."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    AccuracyRequirement,
    PetConfig,
    PetEstimator,
    SampledSimulator,
    TagPopulation,
    VectorizedSimulator,
)
from repro.protocols import FnebProtocol, LofProtocol, PetProtocol


class TestAccuracyContract:
    """The headline guarantee: Pr{|n_hat - n| <= eps n} >= 1 - delta."""

    def test_relaxed_contract_met_empirically(self):
        # Use a loose requirement so the planned rounds stay testable:
        # eps = 20%, delta = 10% -> m ~ 88 rounds.
        requirement = AccuracyRequirement(epsilon=0.20, delta=0.10)
        estimator = PetEstimator(
            requirement=requirement, rng=np.random.default_rng(0)
        )
        rounds = estimator.planned_rounds
        n = 20_000
        simulator = SampledSimulator(
            n, config=PetConfig(), rng=np.random.default_rng(1)
        )
        estimates = simulator.estimate_batch(rounds, repetitions=400)
        low, high = requirement.interval(n)
        within = float(
            ((estimates >= low) & (estimates <= high)).mean()
        )
        assert within >= 1.0 - requirement.delta - 0.03

    def test_contract_independent_of_scale(self):
        requirement = AccuracyRequirement(epsilon=0.25, delta=0.15)
        estimator = PetEstimator(
            requirement=requirement, rng=np.random.default_rng(2)
        )
        rounds = estimator.planned_rounds
        for n in (500, 50_000, 2_000_000):
            simulator = SampledSimulator(
                n, rng=np.random.default_rng(n)
            )
            estimates = simulator.estimate_batch(
                rounds, repetitions=200
            )
            low, high = requirement.interval(n)
            within = float(
                ((estimates >= low) & (estimates <= high)).mean()
            )
            assert within >= 1.0 - requirement.delta - 0.05, f"n={n}"


class TestProtocolsOnSamePopulation:
    def test_all_estimators_converge_to_truth(self):
        n = 8_000
        population = TagPopulation.random(
            n, np.random.default_rng(3)
        )
        rng = np.random.default_rng(4)
        pet = PetProtocol().estimate(population, 1024, rng)
        fneb = FnebProtocol(frame_size=2**20).estimate(
            population, 1024, rng
        )
        lof = LofProtocol().estimate(population, 1024, rng)
        for result in (pet, fneb, lof):
            assert 0.9 < result.accuracy(n) < 1.1, result.protocol

    def test_pet_cheapest_at_equal_rounds_quality(self):
        # At the same round count, PET consumes the fewest slots.
        n = 8_000
        population = TagPopulation.random(
            n, np.random.default_rng(5)
        )
        rng = np.random.default_rng(6)
        pet = PetProtocol().estimate(population, 256, rng)
        fneb = FnebProtocol().estimate(population, 256, rng)
        lof = LofProtocol().estimate(population, 256, rng)
        # 5 slots/round (PET) < 24 (FNEB binary search) < 32 (LoF frame)
        assert pet.total_slots < fneb.total_slots < lof.total_slots


class TestDynamicPopulation:
    def test_estimation_tracks_growth(self):
        # Estimate, grow the population 4x, estimate again.
        rng = np.random.default_rng(7)
        small = TagPopulation.random(2_000, rng)
        big = small.union(TagPopulation.random(6_000, rng))
        config = PetConfig(rounds=512)
        est_small = VectorizedSimulator(
            small, config=config, rng=rng
        ).estimate()
        est_big = VectorizedSimulator(
            big, config=config, rng=rng
        ).estimate()
        assert est_big.n_hat > 2.5 * est_small.n_hat

    def test_churned_population_estimates_current_size(self):
        from repro.tags.dynamics import PopulationDynamics

        rng = np.random.default_rng(9)
        population = TagPopulation.random(3_000, rng)
        dynamics = PopulationDynamics(
            join_rate=50.0, leave_rate=30.0, rng=rng
        )
        for round_index in range(20):
            population = dynamics.step(population, round_index)
        result = VectorizedSimulator(
            population, config=PetConfig(rounds=1024), rng=rng
        ).estimate()
        # 1024 rounds: relative std ~ ln2 * 1.87 / 32 ~ 4%.
        assert 0.85 < result.n_hat / population.size < 1.15


class TestAnonymity:
    def test_responses_never_carry_tag_ids(self):
        # Sec. 4.6.4: during estimation a tag never transmits its ID;
        # the reader's decisions depend only on slot busy-ness.  We
        # verify the protocol-level artifact: every reader command is a
        # StartRound or PrefixQuery (no ID-bearing ACK/select), and the
        # estimate is computed without reading responder identities.
        from repro.core.messages import PrefixQuery, StartRound
        from repro.sim.slotsim import SlotLevelSimulator

        population = TagPopulation.random(
            100, np.random.default_rng(9)
        )
        simulator = SlotLevelSimulator(
            population,
            config=PetConfig(rounds=8, passive_tags=True),
            rng=np.random.default_rng(10),
        )
        simulator.estimate()
        # All trace commands are PET commands rendered as strings;
        # check none embeds a tag ID (PET commands are prefix patterns
        # or the round-start banner).
        for event in simulator.trace:
            assert event.command.startswith("start") or set(
                event.command
            ) <= {"0", "1", "*"}
