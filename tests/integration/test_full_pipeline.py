"""Grand end-to-end test: the full stack on one realistic scenario.

EPC-structured cargo -> geometric reader deployment -> multi-reader
estimation session with change monitoring -> persisted epoch log.
Exercises every layer of the library in one flow, the way a downstream
adopter would wire it.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PetConfig
from repro.reader.session import EstimationSession
from repro.sim.multireader import MultiReaderSimulator
from repro.sim.persist import load_experiment, rows_of
from repro.tags.epc import mixed_cargo_ids
from repro.tags.mobility import MobileTagField
from repro.tags.population import TagPopulation

HEIGHT = 24
ROUNDS = 512


@pytest.fixture(scope="module")
def cargo_schedule():
    """Epoch -> population: 20 pallets, then 8 leave, then 14 arrive."""
    rng = np.random.default_rng(2011)
    full = TagPopulation(mixed_cargo_ids(20, 100, rng))
    ids = [int(t) for t in full.tag_ids]
    reduced = TagPopulation(ids[: 12 * 100])
    arrivals = TagPopulation(mixed_cargo_ids(14, 100, rng))
    grown = reduced.union(arrivals)
    return (
        [full] * 4 + [reduced] * 3 + [grown] * 3
    )


def test_full_pipeline(cargo_schedule, tmp_path):
    def driver_factory(epoch: int):
        population = cargo_schedule[
            min(epoch, len(cargo_schedule) - 1)
        ]
        field = MobileTagField.random(
            population.tag_ids,
            num_readers=3,
            overlap_probability=0.2,
            rng=np.random.default_rng((1, epoch)),
        )
        return MultiReaderSimulator(
            population,
            field,
            config=PetConfig(tree_height=HEIGHT, passive_tags=True),
            rng=np.random.default_rng((2, epoch)),
        )

    session = EstimationSession(
        driver_factory=driver_factory,
        config=PetConfig(
            tree_height=HEIGHT, passive_tags=True, rounds=ROUNDS
        ),
        monitor=True,
        base_seed=42,
    )
    results = session.run(len(cargo_schedule))

    # 1. Every epoch's estimate tracks its ground truth.
    for epoch, result in enumerate(results):
        truth = cargo_schedule[epoch].size
        assert 0.85 < result.n_hat / truth < 1.15, f"epoch {epoch}"
        # H = 24 is not a power of two: the binary search takes 4 or 5
        # probes depending on the boundary's position.
        assert ROUNDS * 4 <= result.slots <= ROUNDS * 5

    # 2. The monitor flags both cargo movements (epochs 4 and 7) and
    #    stays quiet in steady state after warm-up.
    flags = set(session.change_epochs)
    assert 4 in flags
    assert 7 in flags
    assert not flags & {3, 5, 6, 8, 9}

    # 3. The persisted log round-trips with the right shape.
    path = session.save(tmp_path / "pipeline.json", name="pipeline")
    document = load_experiment(path)
    rows = rows_of(document)
    assert len(rows) == len(cargo_schedule)
    assert [row["changed"] for row in rows].count(True) >= 2
    assert document["parameters"]["tree_height"] == HEIGHT


def test_pipeline_estimates_match_single_reader_law(cargo_schedule):
    # Cross-check: the multi-reader pipeline's estimate distribution
    # matches a plain vectorized single-reader run over the same
    # population (duplicate insensitivity end to end).
    population = cargo_schedule[0]
    field = MobileTagField.random(
        population.tag_ids, 3, 0.5, np.random.default_rng(9)
    )
    config = PetConfig(tree_height=HEIGHT, passive_tags=True)
    multi = MultiReaderSimulator(
        population, field, config=config,
        rng=np.random.default_rng(10),
    ).estimate(rounds=ROUNDS)

    from repro.sim.vectorized import VectorizedSimulator

    single = VectorizedSimulator(
        population, config=config, rng=np.random.default_rng(10)
    ).estimate(rounds=ROUNDS)
    # Same codes, same reader RNG stream -> identical estimates.
    assert multi.n_hat == pytest.approx(single.n_hat)
