"""Tests for the repro.estimate one-call facade."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.config import AccuracyRequirement
from repro.core.accuracy import rounds_required
from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry
from repro.tags.population import TagPopulation


class TestEstimate:
    def test_exported_from_package_root(self):
        assert repro.estimate is not None
        assert "estimate" in repro.__all__

    def test_integer_population_synthesized(self):
        result = repro.estimate(5_000, seed=1, rounds=256)
        assert result.protocol == "PET"
        assert result.rounds == 256
        assert 3_000 < result.n_hat < 7_000

    def test_seed_makes_runs_reproducible(self):
        first = repro.estimate(5_000, seed=1, rounds=64)
        second = repro.estimate(5_000, seed=1, rounds=64)
        assert first.n_hat == second.n_hat

    def test_existing_population_used_as_is(self):
        population = TagPopulation.random(
            1_000, np.random.default_rng(0)
        )
        result = repro.estimate(population, seed=3, rounds=128)
        assert 500 < result.n_hat < 2_000

    def test_iterable_of_tag_ids(self):
        result = repro.estimate(range(500), seed=3, rounds=128)
        assert 200 < result.n_hat < 1_200

    def test_protocol_and_config_forwarded(self):
        result = repro.estimate(
            5_000,
            protocol="fneb",
            seed=1,
            rounds=32,
            frame_size=2**14,
        )
        assert result.protocol == "FNEB"
        assert result.total_slots == 32 * 14

    def test_default_rounds_follow_paper_contract(self):
        result = repro.estimate(1_000, seed=1)
        assert result.rounds == rounds_required(
            AccuracyRequirement().epsilon, AccuracyRequirement().delta
        )

    def test_accuracy_plans_rounds(self):
        result = repro.estimate(
            1_000, seed=1, accuracy=AccuracyRequirement(0.10, 0.05)
        )
        assert result.rounds == rounds_required(0.10, 0.05)

    def test_explicit_rounds_beat_accuracy(self):
        result = repro.estimate(
            1_000,
            seed=1,
            rounds=48,
            accuracy=AccuracyRequirement(0.10, 0.05),
        )
        assert result.rounds == 48

    def test_protocol_config_rounds_used_when_not_pinned(self):
        from repro.config import PetConfig

        result = repro.estimate(
            1_000, seed=1, config=PetConfig(rounds=100)
        )
        assert result.rounds == 100

    def test_registry_records_the_run(self):
        registry = MetricsRegistry()
        result = repro.estimate(
            2_000, seed=5, rounds=64, registry=registry
        )
        counters = registry.snapshot()["counters"]
        assert counters["protocol.PET.runs"] == 1
        assert counters["protocol.PET.rounds"] == result.rounds
        assert counters["protocol.PET.slots"] == result.total_slots

    def test_negative_population_rejected(self):
        with pytest.raises(ConfigurationError):
            repro.estimate(-1, seed=1)

    def test_zero_rounds_rejected(self):
        with pytest.raises(ConfigurationError):
            repro.estimate(1_000, seed=1, rounds=0)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            repro.estimate(1_000, protocol="chirp", seed=1)

    def test_unknown_config_keyword_rejected(self):
        with pytest.raises(ConfigurationError, match="frame_size"):
            repro.estimate(1_000, seed=1, frame_size=64)

    def test_seed_and_rng_together_rejected(self):
        with pytest.raises(ConfigurationError, match="not both"):
            repro.estimate(
                1_000,
                seed=1,
                rng=np.random.default_rng(2),
                rounds=16,
            )

    def test_rng_alone_still_accepted(self):
        result = repro.estimate(
            1_000, rng=np.random.default_rng(2), rounds=32
        )
        assert result.seed_provenance == "rng"

    def test_result_to_dict_round_trips(self):
        result = repro.estimate(2_000, seed=5, rounds=64)
        record = result.to_dict()
        assert record["protocol"] == "PET"
        assert record["estimate"] == result.n_hat
        assert record["rounds"] == 64
        assert record["seed_provenance"] == "seed=5"
        assert record["true_n"] is None
        assert record["relative_error"] is None
        assert "observations" in record
        full = result.to_dict(include_statistics=True)
        assert len(full["per_round_statistics"]) == 64

    def test_result_summary_carries_relative_error(self):
        result = repro.estimate(2_000, seed=5, rounds=64)
        record = result.summary(true_n=2_000)
        assert record["true_n"] == 2_000
        assert record["relative_error"] == pytest.approx(
            (result.n_hat - 2_000) / 2_000
        )


class TestRequestModel:
    """The unified EstimateRequest/resolve_request path."""

    def test_exported_from_package_root(self):
        for name in (
            "EstimateRequest",
            "EstimateResponse",
            "resolve_request",
            "execute_request",
        ):
            assert name in repro.__all__

    def test_facade_matches_request_path(self):
        via_facade = repro.estimate(2_000, seed=9, rounds=64)
        request = repro.EstimateRequest(
            population=2_000, seed=9, rounds=64
        )
        via_request = repro.execute_request(
            repro.resolve_request(request)
        )
        assert via_facade.n_hat == via_request.n_hat
        assert via_facade.total_slots == via_request.total_slots

    def test_resolve_rejects_seed_plus_rng(self):
        request = repro.EstimateRequest(
            population=100, seed=1, rng=np.random.default_rng(2)
        )
        with pytest.raises(ConfigurationError, match="not both"):
            repro.resolve_request(request)

    def test_resolve_plans_rounds_from_accuracy(self):
        request = repro.EstimateRequest(
            population=100,
            seed=1,
            accuracy=AccuracyRequirement(0.10, 0.05),
        )
        resolved = repro.resolve_request(request)
        assert resolved.rounds == rounds_required(0.10, 0.05)

    def test_population_seed_shares_population(self):
        cache: dict = {}
        requests = [
            repro.EstimateRequest(
                population=500,
                seed=seed,
                population_seed=77,
                rounds=16,
            )
            for seed in (1, 2)
        ]
        resolved = [
            repro.resolve_request(r, population_cache=cache)
            for r in requests
        ]
        assert resolved[0].population is resolved[1].population
        assert len(cache) == 1

    def test_population_seed_equivalent_to_prebuilt_population(self):
        population = TagPopulation.random(
            500, np.random.default_rng(77)
        )
        direct = repro.estimate(population, seed=3, rounds=32)
        request = repro.EstimateRequest(
            population=500, seed=3, population_seed=77, rounds=32
        )
        via_request = repro.execute_request(
            repro.resolve_request(request)
        )
        assert direct.n_hat == via_request.n_hat

    def test_population_seed_requires_integer_population(self):
        request = repro.EstimateRequest(
            population=TagPopulation(range(10)),
            seed=1,
            population_seed=2,
        )
        with pytest.raises(ConfigurationError, match="integer"):
            repro.resolve_request(request)

    def test_response_statuses_validated(self):
        with pytest.raises(ConfigurationError):
            repro.EstimateResponse(status="maybe")

    def test_response_to_dict_embeds_result_schema(self):
        result = repro.estimate(1_000, seed=4, rounds=32)
        response = repro.EstimateResponse(
            status="ok", result=result, tenant="t0"
        )
        assert response.ok
        assert response.estimate == result.n_hat
        record = response.to_dict()
        assert record["status"] == "ok"
        assert record["result"]["estimate"] == result.n_hat

    def test_rejected_response_has_no_estimate(self):
        response = repro.EstimateResponse(
            status="rejected", retry_after=0.5
        )
        assert not response.ok
        assert response.estimate != response.estimate  # NaN
