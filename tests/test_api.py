"""Tests for the repro.estimate one-call facade."""

from __future__ import annotations

import numpy as np
import pytest

import repro
from repro.config import AccuracyRequirement
from repro.core.accuracy import rounds_required
from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry
from repro.tags.population import TagPopulation


class TestEstimate:
    def test_exported_from_package_root(self):
        assert repro.estimate is not None
        assert "estimate" in repro.__all__

    def test_integer_population_synthesized(self):
        result = repro.estimate(5_000, seed=1, rounds=256)
        assert result.protocol == "PET"
        assert result.rounds == 256
        assert 3_000 < result.n_hat < 7_000

    def test_seed_makes_runs_reproducible(self):
        first = repro.estimate(5_000, seed=1, rounds=64)
        second = repro.estimate(5_000, seed=1, rounds=64)
        assert first.n_hat == second.n_hat

    def test_existing_population_used_as_is(self):
        population = TagPopulation.random(
            1_000, np.random.default_rng(0)
        )
        result = repro.estimate(population, seed=3, rounds=128)
        assert 500 < result.n_hat < 2_000

    def test_iterable_of_tag_ids(self):
        result = repro.estimate(range(500), seed=3, rounds=128)
        assert 200 < result.n_hat < 1_200

    def test_protocol_and_config_forwarded(self):
        result = repro.estimate(
            5_000,
            protocol="fneb",
            seed=1,
            rounds=32,
            frame_size=2**14,
        )
        assert result.protocol == "FNEB"
        assert result.total_slots == 32 * 14

    def test_default_rounds_follow_paper_contract(self):
        result = repro.estimate(1_000, seed=1)
        assert result.rounds == rounds_required(
            AccuracyRequirement().epsilon, AccuracyRequirement().delta
        )

    def test_accuracy_plans_rounds(self):
        result = repro.estimate(
            1_000, seed=1, accuracy=AccuracyRequirement(0.10, 0.05)
        )
        assert result.rounds == rounds_required(0.10, 0.05)

    def test_explicit_rounds_beat_accuracy(self):
        result = repro.estimate(
            1_000,
            seed=1,
            rounds=48,
            accuracy=AccuracyRequirement(0.10, 0.05),
        )
        assert result.rounds == 48

    def test_protocol_config_rounds_used_when_not_pinned(self):
        from repro.config import PetConfig

        result = repro.estimate(
            1_000, seed=1, config=PetConfig(rounds=100)
        )
        assert result.rounds == 100

    def test_registry_records_the_run(self):
        registry = MetricsRegistry()
        result = repro.estimate(
            2_000, seed=5, rounds=64, registry=registry
        )
        counters = registry.snapshot()["counters"]
        assert counters["protocol.PET.runs"] == 1
        assert counters["protocol.PET.rounds"] == result.rounds
        assert counters["protocol.PET.slots"] == result.total_slots

    def test_negative_population_rejected(self):
        with pytest.raises(ConfigurationError):
            repro.estimate(-1, seed=1)

    def test_zero_rounds_rejected(self):
        with pytest.raises(ConfigurationError):
            repro.estimate(1_000, seed=1, rounds=0)

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            repro.estimate(1_000, protocol="chirp", seed=1)

    def test_unknown_config_keyword_rejected(self):
        with pytest.raises(ConfigurationError, match="frame_size"):
            repro.estimate(1_000, seed=1, frame_size=64)

    def test_result_to_dict_round_trips(self):
        result = repro.estimate(2_000, seed=5, rounds=64)
        record = result.to_dict()
        assert record["protocol"] == "PET"
        assert record["n_hat"] == result.n_hat
        assert record["rounds"] == 64
        assert "observations" in record
        full = result.to_dict(include_statistics=True)
        assert len(full["per_round_statistics"]) == 64
