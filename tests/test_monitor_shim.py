"""The deprecated ``repro.monitor`` shim: warns once, still re-exports."""

from __future__ import annotations

import importlib
import warnings

from repro import _deprecation


def _forget_shim_warning(monkeypatch):
    """Give this test a fresh once-per-process warning budget."""
    monkeypatch.setattr(
        _deprecation,
        "_SEEN",
        set(_deprecation._SEEN) - {"repro.monitor"},
    )


def test_importing_the_shim_warns_exactly_once(monkeypatch):
    import repro.monitor as shim

    _forget_shim_warning(monkeypatch)
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        importlib.reload(shim)
        importlib.reload(shim)
        importlib.reload(shim)
    deprecations = [
        w
        for w in caught
        if issubclass(w.category, DeprecationWarning)
        and "repro.obs.monitor" in str(w.message)
    ]
    assert len(deprecations) == 1


def test_shim_reexports_stay_importable():
    import repro.monitor as shim

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        shim = importlib.reload(shim)
    import repro.obs.monitor as home

    for name in (
        "CardinalityMonitor",
        "EpochReport",
        "monitor_population",
        "simulate_monitoring",
    ):
        assert getattr(shim, name) is getattr(home, name)


def test_canonical_homes_do_not_warn():
    # The library itself must import the monitor from its new home —
    # only user imports of the shim should see the deprecation.
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        import repro  # noqa: F401
        import repro.obs.monitor  # noqa: F401
        import repro.reader.session  # noqa: F401
