"""The deprecated ``repro.monitor`` shim: warns once, still re-exports."""

from __future__ import annotations

import importlib
import warnings

import pytest


def test_importing_the_shim_warns():
    import repro.monitor as shim

    with pytest.warns(DeprecationWarning, match="repro.obs.monitor"):
        importlib.reload(shim)


def test_shim_reexports_stay_importable():
    import repro.monitor as shim

    with warnings.catch_warnings():
        warnings.simplefilter("ignore", DeprecationWarning)
        shim = importlib.reload(shim)
    import repro.obs.monitor as home

    for name in (
        "CardinalityMonitor",
        "EpochReport",
        "monitor_population",
        "simulate_monitoring",
    ):
        assert getattr(shim, name) is getattr(home, name)


def test_canonical_homes_do_not_warn():
    # The library itself must import the monitor from its new home —
    # only user imports of the shim should see the deprecation.
    with warnings.catch_warnings():
        warnings.simplefilter("error", DeprecationWarning)
        import repro  # noqa: F401
        import repro.obs.monitor  # noqa: F401
        import repro.reader.session  # noqa: F401
