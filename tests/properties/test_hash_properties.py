"""Property-based tests on the hashing substrate."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hashing.family import (
    SplitMix64Family,
    _normalized_seed,
    _splitmix64_vec,
    splitmix64,
)
from repro.hashing.geometric import (
    geometric_pmf,
    leading_zeros64_vec,
)
from repro.hashing.uniform import uniform_code, uniform_slot

uint64s = st.integers(min_value=0, max_value=2**64 - 1)


@given(uint64s)
@settings(max_examples=300, deadline=None)
def test_splitmix_stays_in_64_bits(value):
    assert 0 <= splitmix64(value) < 2**64


@given(st.lists(uint64s, min_size=1, max_size=64))
@settings(max_examples=200, deadline=None)
def test_vectorized_splitmix_matches_scalar_elementwise(values):
    # Force the 64-bit boundary into every batch: the wraparound word
    # is where a backend's integer arithmetic would first diverge.
    values = values + [2**64 - 1, 0]
    out = _splitmix64_vec(np.array(values, dtype=np.uint64))
    assert out.dtype == np.uint64
    assert [int(word) for word in out] == [
        splitmix64(value) for value in values
    ]


@given(st.integers(min_value=-(2**80), max_value=2**80))
@settings(max_examples=200, deadline=None)
def test_normalized_seed_is_canonical_64_bit(seed):
    normalized = _normalized_seed(seed)
    assert 0 <= normalized < 2**64
    assert _normalized_seed(normalized) == normalized
    family = SplitMix64Family()
    assert family.digest(seed, 42) == family.digest(normalized, 42)


@given(uint64s, uint64s)
@settings(max_examples=200, deadline=None)
def test_digest_deterministic(seed, key):
    family = SplitMix64Family()
    assert family.digest(seed, key) == family.digest(seed, key)


@given(uint64s)
@settings(max_examples=300, deadline=None)
def test_leading_zeros_matches_bit_length(value):
    zeros = int(
        leading_zeros64_vec(np.array([value], dtype=np.uint64))[0]
    )
    assert zeros == 64 - value.bit_length()


@given(
    uint64s,
    st.integers(min_value=0, max_value=2**63),
    st.integers(min_value=1, max_value=64),
)
@settings(max_examples=200, deadline=None)
def test_uniform_code_in_range(seed, tag_id, bits):
    code = uniform_code(seed, tag_id, bits)
    assert 0 <= code < (1 << bits)


@given(
    uint64s,
    st.integers(min_value=0, max_value=2**63),
    st.integers(min_value=1, max_value=2**24),
)
@settings(max_examples=200, deadline=None)
def test_uniform_slot_in_range(seed, tag_id, frame):
    assert 0 <= uniform_slot(seed, tag_id, frame) < frame


@given(st.integers(min_value=0, max_value=60))
@settings(max_examples=60, deadline=None)
def test_geometric_pmf_always_normalized(max_bucket):
    assert geometric_pmf(max_bucket).sum() == pytest.approx(1.0)
