"""Property tests: trace replay is deterministic and bit-exact.

The contract under test (ISSUE: trace + deterministic replay): for any
recorded round — any tier, any seed, any tree height, outlier or not —
:func:`repro.obs.trace.replay_round` re-derives exactly the recorded
gray depth and slot count from the record's seed material alone.

Small tree heights are swept exhaustively (every height, every depth in
the support reachable by inverse CDF); large heights and the
population-backed tiers are driven by hypothesis-randomized seeds.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.mellin import gray_depth_cdf
from repro.config import PetConfig
from repro.core.search import (
    slot_outcome_tables,
    slots_lookup_table,
    strategy_for,
)
from repro.obs import (
    MetricsRegistry,
    RoundTraceRecord,
    RoundTraceRecorder,
    SamplingPolicy,
    replay_round,
    verify_replay,
)
from repro.sim.batched import BatchedExperimentEngine
from repro.sim.workload import WorkloadSpec


def _record_sampled(
    n: int,
    height: int,
    uniforms: np.ndarray,
    binary_search: bool = True,
) -> list[RoundTraceRecord]:
    recorder = RoundTraceRecorder(registry=MetricsRegistry())
    depths = np.searchsorted(
        gray_depth_cdf(n, height), uniforms, side="left"
    ).astype(np.int64)
    strategy = strategy_for(binary_search)
    slots = slots_lookup_table(strategy, height)
    busy, idle = slot_outcome_tables(strategy, height)
    recorder.record_sampled_run(
        run_index=0,
        depths=depths,
        uniforms=uniforms,
        true_n=n,
        tree_height=height,
        binary_search=binary_search,
        slots_table=slots,
        busy_table=busy,
        idle_table=idle,
    )
    return recorder.records


class TestSampledTierExhaustiveSmallHeights:
    @pytest.mark.parametrize("height", range(1, 9))
    @pytest.mark.parametrize("n", [1, 3, 17, 200])
    def test_every_reachable_depth_replays(self, height, n):
        # Uniforms straddling every CDF step reach every depth in the
        # support; each must replay bit-for-bit.
        cdf = gray_depth_cdf(n, height)
        probes = np.clip(
            np.concatenate(
                [cdf - 1e-12, cdf + 1e-12, [0.0, 0.5, 1.0 - 1e-12]]
            ),
            0.0,
            1.0 - 1e-15,
        )
        for record in _record_sampled(n, height, probes):
            assert verify_replay(record)


class TestSampledTierRandomizedLargeHeights:
    @settings(max_examples=30, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=2_000_000),
        height=st.integers(min_value=9, max_value=64),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
        binary_search=st.booleans(),
    )
    def test_random_records_replay(self, n, height, seed, binary_search):
        uniforms = np.random.default_rng(seed).random(32)
        for record in _record_sampled(
            n, height, uniforms, binary_search
        ):
            assert verify_replay(record)

    @settings(max_examples=15, deadline=None)
    @given(
        n=st.integers(min_value=100, max_value=100_000),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_outlier_records_replay(self, n, seed):
        # Push uniforms into both extreme tails so the recorded rounds
        # are exactly the anomalies outliers_only mode would keep.
        recorder = RoundTraceRecorder(
            policy=SamplingPolicy(mode="outliers_only"),
            registry=MetricsRegistry(),
        )
        rng = np.random.default_rng(seed)
        height = 32
        uniforms = np.concatenate(
            [rng.random(64) * 1e-9, 1.0 - rng.random(64) * 1e-12]
        )
        depths = np.searchsorted(
            gray_depth_cdf(n, height), uniforms, side="left"
        ).astype(np.int64)
        strategy = strategy_for(True)
        slots = slots_lookup_table(strategy, height)
        busy, idle = slot_outcome_tables(strategy, height)
        recorder.record_sampled_run(
            0, depths, uniforms, n, height, True, slots, busy, idle
        )
        assert recorder.records  # the tails really were kept
        for record in recorder.records:
            assert record.outlier
            assert verify_replay(record)


class TestPopulationTiersRandomized:
    @settings(max_examples=8, deadline=None)
    @given(
        size=st.integers(min_value=1, max_value=400),
        base_seed=st.integers(min_value=0, max_value=2**31 - 1),
        pop_seed=st.integers(min_value=0, max_value=2**31 - 1),
        height=st.sampled_from([8, 16, 32, 62]),
        passive=st.booleans(),
        id_space=st.sampled_from(["random", "sequential"]),
    )
    def test_batched_records_replay(
        self, size, base_seed, pop_seed, height, passive, id_space
    ):
        registry = MetricsRegistry()
        recorder = RoundTraceRecorder(registry=registry)
        registry.attach_diagnostics(round_trace=recorder)
        engine = BatchedExperimentEngine(
            base_seed=base_seed, repetitions=2, registry=registry
        )
        engine.run_cell(
            WorkloadSpec(size=size, id_space=id_space, seed=pop_seed),
            PetConfig(tree_height=height, passive_tags=passive),
            rounds=8,
        )
        assert len(recorder) == 16
        for record in recorder.records:
            replayed = replay_round(record)
            assert replayed.gray_depth == record.gray_depth
            assert replayed.slots == record.slots


class TestRecordSerializationRoundTrip:
    @settings(max_examples=20, deadline=None)
    @given(
        n=st.integers(min_value=1, max_value=10_000),
        height=st.integers(min_value=4, max_value=64),
        seed=st.integers(min_value=0, max_value=2**32 - 1),
    )
    def test_dict_round_trip_preserves_replayability(
        self, n, height, seed
    ):
        uniforms = np.random.default_rng(seed).random(4)
        for record in _record_sampled(n, height, uniforms):
            clone = RoundTraceRecord.from_dict(record.to_dict())
            assert clone == record
            assert verify_replay(clone)
