"""Property-based tests across the protocol implementations."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.saturation import (
    corrected_estimate,
    expected_depth_exact,
)
from repro.core.feedback import FeedbackPetReader, build_feedback_channel
from repro.core.path import EstimatingPath
from repro.core.tree import PetTree
from repro.protocols.fneb import FnebProtocol
from repro.protocols.lof import LofProtocol
from repro.protocols.treewalk import TreeWalkIdentification
from repro.tags.population import TagPopulation


@st.composite
def codes_and_path(draw):
    height = draw(st.integers(min_value=2, max_value=10))
    codes = draw(
        st.lists(
            st.integers(min_value=0, max_value=2**height - 1),
            max_size=25,
        )
    )
    path_bits = draw(st.integers(min_value=0, max_value=2**height - 1))
    return height, codes, EstimatingPath(path_bits, height)


@given(codes_and_path())
@settings(max_examples=60, deadline=None)
def test_feedback_protocol_matches_tree(hcp):
    height, codes, path = hcp
    channel = build_feedback_channel(
        codes, height, rng=np.random.default_rng(0)
    )
    reader = FeedbackPetReader(channel, height=height)
    depth, slots = reader.run_round(path)
    assert depth == PetTree(height, codes).gray_depth(path)
    assert slots >= 1


@given(
    st.integers(min_value=100, max_value=200_000),
    st.integers(min_value=18, max_value=32),
)
@settings(max_examples=40, deadline=None)
def test_saturation_inversion_round_trips(n, height):
    mean_depth = expected_depth_exact(n, height)
    recovered = corrected_estimate(mean_depth, height)
    assert recovered == pytest.approx(n, rel=0.05)


@given(
    st.lists(
        st.integers(min_value=0, max_value=2**40),
        min_size=0,
        max_size=60,
        unique=True,
    )
)
@settings(max_examples=60, deadline=None)
def test_treewalk_identifies_exactly(ids):
    population = TagPopulation(ids)
    result = TreeWalkIdentification(id_bits=48).identify(population)
    assert result.identified == frozenset(ids)
    # Classic bound: a binary splitting run uses at most 3n - 1 queries
    # for n >= 1 distinct random IDs... adjacent IDs can exceed it, so
    # assert the weaker structural bound slots >= n.
    assert result.total_slots >= max(len(ids), 1)


@given(
    st.integers(min_value=1, max_value=5_000),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=30, deadline=None)
def test_fneb_statistic_bounds(n, seed):
    protocol = FnebProtocol(frame_size=2**16)
    population = TagPopulation.sequential(n)
    statistic = protocol.first_nonempty(seed, population)
    assert 1 <= statistic <= 2**16


@given(
    st.integers(min_value=1, max_value=5_000),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=30, deadline=None)
def test_lof_statistic_bounds(n, seed):
    protocol = LofProtocol()
    population = TagPopulation.sequential(n)
    statistic = protocol.first_empty_bucket(seed, population)
    assert 0 <= statistic <= 32
