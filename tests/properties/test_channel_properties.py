"""Property-based tests for the radio layer."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ChannelConfig, TimingConfig
from repro.radio.link import LinkModel
from repro.radio.slots import SlotType, classify


@given(st.integers(min_value=0, max_value=1000), st.booleans())
@settings(max_examples=100, deadline=None)
def test_classify_total_and_consistent(count, detect):
    slot_type = classify(count, detect_collisions=detect)
    assert slot_type in (
        SlotType.IDLE,
        SlotType.SINGLETON,
        SlotType.COLLISION,
    )
    assert slot_type.busy == (count > 0)
    if not detect and count > 0:
        assert slot_type is SlotType.COLLISION


@given(
    st.lists(st.integers(min_value=0, max_value=10**6), max_size=30,
             unique=True),
    st.floats(min_value=0.0, max_value=1.0),
    st.floats(min_value=0.0, max_value=1.0),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=150, deadline=None)
def test_link_delivery_invariants(responders, loss, capture, seed):
    link = LinkModel(
        ChannelConfig(
            loss_probability=loss, capture_probability=capture
        ),
        np.random.default_rng(seed),
    )
    outcome = link.deliver(tuple(responders))
    # Survivors are a subset of the transmitters.
    assert set(outcome.responders) <= set(responders)
    assert outcome.transmitted == len(responders)
    # Classification matches the surviving count.
    assert outcome.busy == (len(outcome.responders) > 0)
    # Loss and capture can only reduce, never invent, responses.
    assert len(outcome.responders) <= len(responders)
    # A decoded tag, when present, really transmitted.
    if outcome.decoded_tag is not None:
        assert outcome.decoded_tag in responders


@given(
    st.integers(min_value=0, max_value=256),
    st.floats(min_value=1_000.0, max_value=10**7),
    st.floats(min_value=0.0, max_value=10_000.0),
)
@settings(max_examples=100, deadline=None)
def test_slot_duration_monotone_in_payload(payload, bitrate, turnaround):
    timing = TimingConfig(
        reader_bitrate_bps=bitrate,
        tag_bitrate_bps=bitrate,
        turnaround_us=turnaround,
    )
    shorter = timing.slot_duration_us(payload)
    longer = timing.slot_duration_us(payload + 8)
    assert 0.0 <= shorter < longer
