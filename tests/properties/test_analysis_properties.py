"""Property-based tests on the analysis layer."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.mellin import gray_depth_cdf, gray_depth_pmf
from repro.analysis.stats import summarize
from repro.core.accuracy import rounds_required


@given(
    st.integers(min_value=0, max_value=10**7),
    st.integers(min_value=1, max_value=48),
)
@settings(max_examples=200, deadline=None)
def test_depth_pmf_is_a_distribution(n, height):
    pmf = gray_depth_pmf(n, height)
    assert pmf.sum() == pytest.approx(1.0)
    assert (pmf >= -1e-12).all()
    cdf = gray_depth_cdf(n, height)
    assert (cdf[1:] >= cdf[:-1] - 1e-15).all()


@given(
    st.integers(min_value=1, max_value=10**6),
    st.integers(min_value=1, max_value=48),
)
@settings(max_examples=100, deadline=None)
def test_depth_pmf_shifts_right_with_n(n, height):
    # Doubling n cannot decrease the CDF anywhere (stochastic order).
    small = gray_depth_cdf(n, height)
    large = gray_depth_cdf(2 * n, height)
    assert (large <= small + 1e-12).all()


@given(
    st.floats(min_value=0.01, max_value=0.5),
    st.floats(min_value=0.001, max_value=0.5),
)
@settings(max_examples=100, deadline=None)
def test_rounds_required_positive_and_monotone(epsilon, delta):
    m = rounds_required(epsilon, delta)
    assert m >= 1
    # Loosening epsilon can only reduce the rounds.
    looser = rounds_required(min(epsilon * 1.5, 0.9), delta)
    assert looser <= m


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=1e6),
        min_size=1,
        max_size=100,
    ),
    st.integers(min_value=1, max_value=10**6),
)
@settings(max_examples=200, deadline=None)
def test_summary_invariants(estimates, true_n):
    summary = summarize(estimates, true_n, epsilon=0.1)
    assert summary.runs == len(estimates)
    assert summary.std >= 0.0
    assert 0.0 <= summary.within_fraction <= 1.0
    assert summary.normalized_std == pytest.approx(
        summary.std / true_n
    )
