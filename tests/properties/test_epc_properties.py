"""Property-based tests for the EPC codec and MLE unimodality."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.mle import depth_log_likelihood
from repro.tags.epc import EpcCode


@st.composite
def epc_codes(draw):
    return EpcCode(
        filter_value=draw(st.integers(0, 7)),
        company=draw(st.integers(0, (1 << 24) - 1)),
        item=draw(st.integers(0, (1 << 20) - 1)),
        serial=draw(st.integers(0, (1 << 38) - 1)),
    )


@given(epc_codes())
@settings(max_examples=200, deadline=None)
def test_epc_round_trip(code):
    assert EpcCode.decode(code.encode()) == code


@given(epc_codes())
@settings(max_examples=200, deadline=None)
def test_epc_encode64_preserves_uniqueness_fields(code):
    # The 64-bit truncation keeps item and serial fully intact
    # (20 + 38 = 58 bits), so distinct (item, serial) pairs under one
    # company stay distinct.
    word64 = code.encode64()
    assert word64 & ((1 << 38) - 1) == code.serial
    assert (word64 >> 38) & ((1 << 20) - 1) == code.item


@given(epc_codes(), epc_codes())
@settings(max_examples=100, deadline=None)
def test_epc_injective_on_fields(a, b):
    if (a.filter_value, a.company, a.item, a.serial) != (
        b.filter_value,
        b.company,
        b.item,
        b.serial,
    ):
        assert a.encode() != b.encode()


@given(
    st.integers(min_value=64, max_value=1_000_000),
    st.integers(min_value=0, max_value=2**31),
)
@settings(max_examples=25, deadline=None)
def test_mle_likelihood_prefers_truth_neighbourhood(n, seed):
    # For a healthy sample, the likelihood at the truth beats the
    # likelihood at 4x and x/4 — the unimodality the golden-section
    # search relies on.
    from repro.sim.sampled import SampledSimulator

    simulator = SampledSimulator(
        n, rng=np.random.default_rng(seed)
    )
    depths = simulator.sample_depths(256)
    at_truth = depth_log_likelihood(depths, n, 32)
    assert at_truth >= depth_log_likelihood(depths, max(1, n // 4), 32)
    assert at_truth >= depth_log_likelihood(depths, n * 4, 32)
