"""Property-based tests (hypothesis) on the PET core invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.accuracy import PHI, estimate_from_depths
from repro.core.path import EstimatingPath
from repro.core.search import BinaryGraySearch, LinearGraySearch
from repro.core.tree import PetTree
from repro.sim.vectorized import gray_depth_of_codes, gray_depth_sorted


@st.composite
def tree_and_path(draw):
    """A small random PET tree and a path of matching height."""
    height = draw(st.integers(min_value=1, max_value=10))
    leaves = draw(
        st.lists(
            st.integers(min_value=0, max_value=2**height - 1),
            max_size=40,
        )
    )
    path_bits = draw(st.integers(min_value=0, max_value=2**height - 1))
    return PetTree(height, leaves), EstimatingPath(path_bits, height)


class _OracleFromTree:
    def __init__(self, tree: PetTree, path: EstimatingPath):
        self.tree = tree
        self.path = path
        self.probes = 0

    def is_busy(self, prefix_length: int) -> bool:
        self.probes += 1
        return self.tree.subtree_is_black(
            self.path.prefix(prefix_length), prefix_length
        )


@given(tree_and_path())
@settings(max_examples=150, deadline=None)
def test_gray_depth_bounds(tp):
    tree, path = tp
    depth = tree.gray_depth(path)
    assert 0 <= depth <= tree.height


@given(tree_and_path())
@settings(max_examples=150, deadline=None)
def test_gray_depth_is_busy_idle_boundary(tp):
    tree, path = tp
    depth = tree.gray_depth(path)
    if tree.black_leaves:
        # Every prefix up to `depth` is busy; everything past is idle.
        for j in range(depth + 1):
            assert tree.subtree_is_black(path.prefix(j), j)
    for j in range(depth + 1, tree.height + 1):
        assert not tree.subtree_is_black(path.prefix(j), j)


@given(tree_and_path())
@settings(max_examples=150, deadline=None)
def test_search_strategies_agree_with_tree(tp):
    tree, path = tp
    expected = tree.gray_depth(path)
    for strategy in (LinearGraySearch(), BinaryGraySearch()):
        oracle = _OracleFromTree(tree, path)
        assert strategy.find_gray_depth(oracle, tree.height) == expected
        assert oracle.probes <= strategy.worst_case_slots(tree.height)


@given(tree_and_path())
@settings(max_examples=150, deadline=None)
def test_vectorized_kernels_agree_with_tree(tp):
    tree, path = tp
    codes = np.array(sorted(tree.black_leaves), dtype=np.uint64)
    expected = tree.gray_depth(path)
    assert gray_depth_of_codes(codes, path.bits, tree.height) == expected
    assert gray_depth_sorted(codes, path.bits, tree.height) == expected


@given(
    st.integers(min_value=1, max_value=10),
    st.integers(min_value=0, max_value=2**10 - 1),
    st.integers(min_value=0, max_value=2**10 - 1),
)
@settings(max_examples=200, deadline=None)
def test_common_prefix_symmetry(height, a, b):
    a &= (1 << height) - 1
    b &= (1 << height) - 1
    path_a = EstimatingPath(a, height)
    path_b = EstimatingPath(b, height)
    assert path_a.common_prefix_length(b) == path_b.common_prefix_length(a)


@given(
    st.integers(min_value=1, max_value=16),
    st.integers(min_value=0, max_value=2**16 - 1),
)
@settings(max_examples=200, deadline=None)
def test_prefix_mask_consistency(height, bits):
    bits &= (1 << height) - 1
    path = EstimatingPath(bits, height)
    for length in range(height + 1):
        # matches_prefix is reflexive at every length.
        assert path.matches_prefix(bits, length)
        # The mask has exactly `length` set bits.
        assert bin(path.prefix_mask(length)).count("1") == length


@given(
    st.lists(
        st.floats(min_value=0.0, max_value=32.0),
        min_size=1,
        max_size=64,
    )
)
@settings(max_examples=200, deadline=None)
def test_estimator_monotone_in_depths(depths):
    base = estimate_from_depths(depths)
    shifted = estimate_from_depths([d + 1.0 for d in depths])
    # One extra depth bit doubles the estimate.
    assert shifted == pytest.approx(2.0 * base, rel=1e-9)
    assert base >= 1.0 / PHI - 1e-12
