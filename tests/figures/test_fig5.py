"""Tests for the Tables 4/5 / Fig. 5 planning sweeps."""

from __future__ import annotations

import pytest

from repro.figures import fig5


@pytest.fixture(scope="module")
def table4_rows():
    return fig5.epsilon_sweep(validation_runs=200)


@pytest.fixture(scope="module")
def table5_rows():
    return fig5.delta_sweep(validation_runs=0)


class TestTable4:
    def test_pet_beats_baselines_everywhere(self, table4_rows):
        for row in table4_rows:
            assert row.pet_slots < row.fneb_slots
            assert row.pet_slots < row.lof_slots

    def test_ratio_in_paper_band(self, table4_rows):
        # "PET outperforms both FNEB and LoF with about 35 to 43
        # percent of their estimating time" (Sec. 5.3).
        for row in table4_rows:
            assert 0.30 < row.pet_over_fneb < 0.50
            assert 0.35 < row.pet_over_lof < 0.50

    def test_headline_cell(self, table4_rows):
        # eps = 5%, delta = 1%: m = 4697 rounds, 5 slots each.
        head = table4_rows[0]
        assert head.epsilon == 0.05
        assert 4600 <= head.pet_rounds <= 4800
        assert head.pet_slots == head.pet_rounds * 5

    def test_validation_meets_confidence(self, table4_rows):
        for row in table4_rows:
            assert row.pet_within >= 1.0 - row.delta - 0.02

    def test_slots_decrease_with_epsilon(self, table4_rows):
        slots = [row.pet_slots for row in table4_rows]
        assert slots == sorted(slots, reverse=True)


class TestTable5:
    def test_slots_decrease_with_delta(self, table5_rows):
        slots = [row.pet_slots for row in table5_rows]
        assert slots == sorted(slots, reverse=True)

    def test_pet_wins_at_every_delta(self, table5_rows):
        for row in table5_rows:
            assert row.pet_slots < min(row.fneb_slots, row.lof_slots)


class TestRendering:
    def test_table_includes_ratios(self, table4_rows):
        rendering = fig5.table(table4_rows, "T", "epsilon").render()
        assert "PET/FNEB" in rendering
        assert "PET/LoF" in rendering
