"""Tests for the ablation drivers (scaled down)."""

from __future__ import annotations

import pytest

from repro.figures import ablations


class TestAblations:
    def test_passive_vs_active_renders(self):
        table = ablations.passive_vs_active(
            n=500, rounds=32, runs=10
        )
        rendering = table.render()
        assert "active" in rendering
        assert "passive" in rendering
        assert len(table.rows) == 2

    def test_height_sensitivity_shows_saturation(self):
        table = ablations.height_sensitivity(
            n=50_000, heights=(16, 32), rounds=64, runs=60
        )
        accuracy_h16 = float(table.rows[0][2])
        accuracy_h32 = float(table.rows[1][2])
        # Saturated tree (2^16 ~ 1.3n) under-estimates badly; H=32 ok.
        assert accuracy_h16 < 0.8
        assert 0.9 < accuracy_h32 < 1.1

    def test_search_cost_separation(self):
        table = ablations.search_cost(
            sizes=(1_000, 100_000), rounds=80
        )
        linear_small = float(table.rows[0][1])
        linear_large = float(table.rows[1][1])
        binary_small = float(table.rows[0][2])
        binary_large = float(table.rows[1][2])
        # Linear grows by ~log2(100) ~ 6.6 slots; binary stays flat.
        assert linear_large - linear_small > 4.0
        assert binary_small == binary_large == 5.0

    def test_loss_robustness_bias_direction(self):
        table = ablations.loss_robustness(
            n=300,
            loss_probabilities=(0.0, 0.3),
            rounds=48,
            runs=8,
        )
        accuracy_clean = float(table.rows[0][1])
        accuracy_lossy = float(table.rows[1][1])
        assert accuracy_lossy < accuracy_clean

    def test_identification_cost_exceeds_estimation_at_scale(self):
        table = ablations.identification_vs_estimation(
            sizes=(20_000,)
        )
        row = table.rows[0]
        aloha = float(row[1].replace(",", ""))
        treewalk = float(row[2].replace(",", ""))
        pet = float(row[3].replace(",", ""))
        assert pet < treewalk < aloha
