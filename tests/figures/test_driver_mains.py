"""Smoke tests: every figure driver's main() prints its artifact."""

from __future__ import annotations

import pytest

from repro.figures import extensions, fig4, fig5, fig6, fig7, table3


class TestDriverMains:
    def test_fig4_main(self, capsys):
        fig4.main(runs=25)
        out = capsys.readouterr().out
        assert "Fig. 4a" in out
        assert "Fig. 4b" in out
        assert "Fig. 4c" in out

    def test_fig5_main(self, capsys):
        fig5.main()
        out = capsys.readouterr().out
        assert "Table 4" in out
        assert "Table 5" in out
        assert "Fig. 5a" in out
        assert "Fig. 5b" in out

    def test_fig6_main(self, capsys):
        fig6.main(runs=60)
        out = capsys.readouterr().out
        assert "Fig. 6" in out
        assert "histogram" in out

    def test_fig7_main(self, capsys):
        fig7.main()
        out = capsys.readouterr().out
        assert "Fig. 7a" in out
        assert "Fig. 7b" in out

    def test_table3_main(self, capsys):
        table3.main()
        assert "Table 3" in capsys.readouterr().out

    def test_extensions_pieces(self, capsys):
        extensions.adaptive_vs_fixed(n=2_000, trials=10).print()
        extensions.energy_comparison().print()
        out = capsys.readouterr().out
        assert "sequential" in out
        assert "tag energy" in out
