"""Tests for the Fig. 3 trace reproduction."""

from __future__ import annotations

from repro.figures import fig3_trace
from repro.radio.slots import SlotType


class TestFig3:
    def test_slot_counts_match_paper(self):
        comparison = fig3_trace.run()
        assert comparison.basic_slots == 5
        assert comparison.binary_slots == 2

    def test_gray_depth_is_four(self):
        comparison = fig3_trace.run()
        assert comparison.gray_depth == 4

    def test_basic_trace_ends_idle(self):
        comparison = fig3_trace.run()
        query_events = comparison.basic_trace.events[1:]  # skip start
        assert query_events[-1].outcome.slot_type is SlotType.IDLE
        for event in query_events[:-1]:
            assert event.outcome.busy

    def test_binary_trace_probes_prefix_4_then_5(self):
        comparison = fig3_trace.run()
        commands = [
            event.command for event in comparison.binary_trace.events[1:]
        ]
        assert commands == ["0000**", "00001*"]

    def test_sixteen_tags_with_unique_codes(self):
        assert len(set(fig3_trace.EXAMPLE_CODES)) == 16

    def test_first_basic_query_hears_ten_tags(self):
        # Codes starting with '0': indices 0-9 respond to prefix 0*****.
        comparison = fig3_trace.run()
        first_query = comparison.basic_trace.events[1]
        assert len(first_query.outcome.responders) == 10

    def test_one_round_estimate_order_of_magnitude(self):
        estimate = fig3_trace.estimate_from_example()
        # depth 4 -> n_hat = 2^4 / phi ~ 12.7; a one-round estimate of
        # 16 tags is this coarse by design.
        assert 5 < estimate < 30

    def test_main_prints_summary(self, capsys):
        fig3_trace.main()
        out = capsys.readouterr().out
        assert "query slots used: 5" in out
        assert "query slots used: 2" in out
