"""Tests for the extension experiment drivers (scaled down)."""

from __future__ import annotations

from repro.figures import extensions


class TestExtensionDrivers:
    def test_adaptive_table(self):
        table = extensions.adaptive_vs_fixed(n=5_000, trials=20)
        assert len(table.rows) == 2
        coverage = float(table.rows[1][3])
        assert 0.7 <= coverage <= 1.0

    def test_energy_table_ordering(self):
        table = extensions.energy_comparison()
        labels = [row[0] for row in table.rows]
        assert "PET passive (1-bit)" in labels
        assert "FNEB" in labels

    def test_feedback_overhead_measured(self):
        table = extensions.feedback_overhead(
            n=50, height=8, rounds=10
        )
        bits = {row[0]: float(row[3]) for row in table.rows}
        assert bits["feedback"] == 1.0
        assert bits["mask"] == 8.0

    def test_saturation_table(self):
        table = extensions.saturation_correction(
            n=20_000, heights=(16, 24), rounds=512
        )
        assert len(table.rows) == 2

    def test_monitoring_table(self):
        table = extensions.monitoring_demo(
            sizes=(1_000,) * 6 + (3_000,) * 2,
            rounds_per_epoch=512,
        )
        flags = [row[4] for row in table.rows]
        assert flags[6] == "CHANGE"

    def test_protocol_comparison_table(self):
        table = extensions.protocol_comparison(
            n=500, repetitions=10, base_seed=4
        )
        labels = [row[0] for row in table.rows]
        assert "FNEB" in labels
        assert "ALOHA" in labels
        assert len(table.rows) == 6
