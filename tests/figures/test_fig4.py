"""Tests for the Fig. 4 sweep driver."""

from __future__ import annotations

import pytest

from repro.figures import fig4


@pytest.fixture(scope="module")
def cells():
    return fig4.run(
        sizes=(1_000, 10_000),
        rounds_grid=(8, 32, 128),
        runs=150,
        base_seed=123,
    )


class TestFig4:
    def test_cell_grid_complete(self, cells):
        keys = {(cell.n, cell.rounds) for cell in cells}
        assert keys == {
            (n, m) for n in (1_000, 10_000) for m in (8, 32, 128)
        }

    def test_accuracy_approaches_one(self, cells):
        by_key = {(c.n, c.rounds): c for c in cells}
        for n in (1_000, 10_000):
            final = by_key[(n, 128)].summary.accuracy
            assert 0.93 < final < 1.07

    def test_std_decreases_with_rounds(self, cells):
        by_key = {(c.n, c.rounds): c for c in cells}
        for n in (1_000, 10_000):
            assert (
                by_key[(n, 128)].summary.std
                < by_key[(n, 8)].summary.std
            )

    def test_normalized_std_collapses_across_n(self, cells):
        # Fig. 4c: the normalized curves for different n overlap.
        by_key = {(c.n, c.rounds): c for c in cells}
        small = by_key[(1_000, 128)].summary.normalized_std
        large = by_key[(10_000, 128)].summary.normalized_std
        assert abs(small - large) < 0.05

    def test_normalized_std_tracks_theory(self, cells):
        for cell in cells:
            if cell.rounds >= 32:
                assert cell.summary.normalized_std == pytest.approx(
                    cell.predicted_normalized_std, rel=0.45
                )

    def test_tables_render(self, cells):
        table_a, table_b, table_c = fig4.tables(cells)
        assert "Fig. 4a" in table_a.render()
        assert "Fig. 4b" in table_b.render()
        assert "theory" in table_c.render()
