"""Tests for the Fig. 7 memory comparison."""

from __future__ import annotations

from repro.figures import fig7


class TestFig7:
    def test_pet_memory_constant(self):
        rows = fig7.epsilon_sweep()
        assert all(row.pet_bits == 32 for row in rows)
        rows_b = fig7.delta_sweep()
        assert all(row.pet_bits == 32 for row in rows_b)

    def test_baseline_memory_grows_with_tightness(self):
        rows = fig7.epsilon_sweep()
        # Epsilon sweeps loosen left to right: memory decreases.
        fneb = [row.fneb_bits for row in rows]
        lof = [row.lof_bits for row in rows]
        assert fneb == sorted(fneb, reverse=True)
        assert lof == sorted(lof, reverse=True)

    def test_baselines_orders_of_magnitude_above_pet(self):
        for row in fig7.epsilon_sweep():
            assert row.fneb_bits > 100 * row.pet_bits
            assert row.lof_bits > 100 * row.pet_bits

    def test_memory_is_32_per_round(self):
        from repro.protocols.fneb import FnebProtocol
        from repro.config import AccuracyRequirement

        rows = fig7.epsilon_sweep(epsilons=(0.05,))
        planned = FnebProtocol().plan_rounds(
            AccuracyRequirement(0.05, 0.01)
        )
        assert rows[0].fneb_bits == 32 * planned

    def test_table_renders_log_columns(self):
        rendering = fig7.table(
            fig7.epsilon_sweep(), "T", "epsilon"
        ).render()
        assert "log2(FNEB/PET)" in rendering
