"""Tests for the Fig. 6 distribution comparison."""

from __future__ import annotations

import numpy as np
import pytest

from repro.figures import fig6


@pytest.fixture(scope="module")
def result():
    return fig6.run(runs=400, base_seed=17)


class TestFig6:
    def test_equal_slot_budgets(self, result):
        # FNEB and LoF get (at most) PET's budget.
        assert result.fneb.slots <= result.pet.slots
        assert result.lof.slots <= result.pet.slots
        assert result.fneb.slots > 0.9 * result.pet.slots
        assert result.lof.slots > 0.9 * result.pet.slots

    def test_pet_meets_confidence(self, result):
        # Paper: "more than 99 percent estimated results fall into the
        # confidence interval in PET".
        assert result.pet.within_fraction >= 0.98

    def test_baselines_lose_coverage(self, result):
        # Paper: "FNEB and LoF only guarantee about 90 percent".
        assert result.fneb.within_fraction < result.pet.within_fraction
        assert result.lof.within_fraction < result.pet.within_fraction
        assert 0.80 < result.fneb.within_fraction < 0.97
        assert 0.80 < result.lof.within_fraction < 0.97

    def test_pet_most_concentrated(self, result):
        assert result.pet.estimates.std() < result.fneb.estimates.std()
        assert result.pet.estimates.std() < result.lof.estimates.std()

    def test_all_unbiased(self, result):
        for panel in (result.pet, result.fneb, result.lof):
            assert panel.estimates.mean() == pytest.approx(
                result.n, rel=0.02
            )

    def test_theory_matches_simulation(self, result):
        # Empirical histogram vs the log-normal overlay: compare the
        # within-CI mass.
        assert result.pet.within_fraction == pytest.approx(
            result.theory_within, abs=0.015
        )
        assert result.theory_within >= 0.99

    def test_theory_density_peaks_near_n(self, result):
        peak = float(
            result.theory_grid[np.argmax(result.theory_pdf)]
        )
        assert abs(peak - result.n) < 0.03 * result.n

    def test_summary_table_renders(self, result):
        rendering = fig6.summary_table(result).render()
        assert "PET" in rendering
        assert "FNEB" in rendering
        assert "LoF" in rendering


class TestSaturationRobustness:
    """Satellite: saturated runs are flagged, counted, and rendered."""

    def test_panels_count_their_nan_runs(self, result):
        for panel in (result.pet, result.fneb, result.lof):
            assert panel.saturated == int(
                np.isnan(panel.estimates).sum()
            )

    def test_summary_table_has_saturated_column(self, result):
        table = fig6.summary_table(result)
        assert "saturated" in table.columns
        rendering = table.render()
        assert "saturated" in rendering

    def test_within_counts_nan_as_outside(self, result):
        estimates = np.array([float("nan"), float(result.n)])
        assert fig6._within(
            estimates, result.requirement, result.n
        ) == 0.5

    def test_main_renders_with_finite_histograms(self, capsys):
        fig6.main(runs=100)
        out = capsys.readouterr().out
        assert "Fig. 6" in out
        assert "histogram of" in out
