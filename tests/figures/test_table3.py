"""Tests for the Table 3 slot-count reproduction."""

from __future__ import annotations

import numpy as np

from repro.figures import table3


class TestTable3:
    def test_nominal_is_five_per_round(self):
        rows = table3.run(rounds_grid=(8, 64), n=10_000)
        assert rows[0].nominal_slots == 40
        assert rows[1].nominal_slots == 320

    def test_measured_matches_nominal(self):
        # At n = 10 000 the binary search always takes exactly 5 slots.
        for row in table3.run(rounds_grid=(16, 128), n=10_000):
            assert row.measured_slots == row.nominal_slots

    def test_table_renders(self):
        rendering = table3.table(table3.run(rounds_grid=(8,))).render()
        assert "Table 3" in rendering


class TestProtocolSweep:
    def test_specs_cover_the_grid(self):
        specs = table3.protocol_sweep_specs()
        assert len(specs) == len(table3.SWEEP_PROTOCOLS) * len(
            table3.SWEEP_ROUNDS
        )
        assert all(spec.n == table3.SWEEP_N for spec in specs)

    def test_sweep_stays_unsaturated_at_default_n(self):
        # SWEEP_N sits at the framed estimators' design load, so no
        # cell saturates (the reason the sweep is not at Table 3's n).
        results = table3.protocol_sweep(
            runs=8, rounds_grid=(8,), base_seed=2
        )
        assert len(results) == len(table3.SWEEP_PROTOCOLS)
        for result in results:
            assert result.saturated_runs == 0
            assert np.isfinite(result.estimates).all()

    def test_sweep_table_renders(self):
        results = table3.protocol_sweep(
            runs=5,
            protocols=("fneb", "lof"),
            rounds_grid=(8,),
            base_seed=3,
        )
        rendering = table3.protocol_table(results).render()
        assert "FNEB" in rendering
        assert "LoF" in rendering
        assert "saturated" in rendering
