"""Tests for the Table 3 slot-count reproduction."""

from __future__ import annotations

from repro.figures import table3


class TestTable3:
    def test_nominal_is_five_per_round(self):
        rows = table3.run(rounds_grid=(8, 64), n=10_000)
        assert rows[0].nominal_slots == 40
        assert rows[1].nominal_slots == 320

    def test_measured_matches_nominal(self):
        # At n = 10 000 the binary search always takes exactly 5 slots.
        for row in table3.run(rounds_grid=(16, 128), n=10_000):
            assert row.measured_slots == row.nominal_slots

    def test_table_renders(self):
        rendering = table3.table(table3.run(rounds_grid=(8,))).render()
        assert "Table 3" in rendering
