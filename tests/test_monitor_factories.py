"""Tests for monitor helper wiring (custom estimator factories)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.obs.monitor import CardinalityMonitor, simulate_monitoring


class TestCustomFactory:
    def test_factory_receives_n_and_epoch(self):
        calls = []

        def factory(n: int, epoch: int) -> float:
            calls.append((n, epoch))
            return float(n)

        reports = simulate_monitoring(
            [100, 200, 300],
            rounds_per_epoch=64,
            estimator_factory=factory,
        )
        assert calls == [(100, 0), (200, 1), (300, 2)]
        assert [r.estimate for r in reports] == [100.0, 200.0, 300.0]

    def test_noisy_factory_respects_detection_theory(self):
        # Estimates drawn at exactly the expected per-epoch sigma must
        # rarely trip the delta = 1% detector.
        rng = np.random.default_rng(0)
        monitor = CardinalityMonitor(
            rounds_per_epoch=256, delta=0.01
        )
        sigma = monitor.epoch_relative_std
        base = 10_000.0
        flags = 0
        epochs = 200
        for _ in range(epochs):
            noise = rng.normal(0.0, sigma)
            report = monitor.observe(base * (1.0 + noise))
            flags += report.changed
        # Expected false-positive rate ~1%; EWMA smoothing plus
        # re-anchoring keeps the realized rate in single digits.
        assert flags <= 0.06 * epochs

    def test_detected_magnitude_scales_with_rounds(self):
        # More rounds per epoch -> smaller sigma -> smaller detectable
        # change.  A +10% step is invisible at m=64 but caught at
        # m=4096.
        step_stream = [10_000.0] * 6 + [11_000.0]
        coarse = simulate_monitoring(
            [],  # build manually below
            rounds_per_epoch=64,
        )
        assert coarse == []

        def run(rounds: int) -> bool:
            monitor = CardinalityMonitor(rounds_per_epoch=rounds)
            last = None
            for value in step_stream:
                last = monitor.observe(value)
            assert last is not None
            return last.changed

        assert not run(64)
        assert run(4096)
