"""Live fleet telemetry: delta streaming, watchdog, idempotent stop.

The ISSUE-10 contract: with ``snapshot_interval_seconds`` set, workers
stream registry deltas over the pipe protocol, the router's registry
holds merged mid-run state (so a live scrape sees worker counters
before shutdown), the final merge never double-counts anything the
heartbeats already shipped, and killing a worker flips the fleet
health verdict within the watchdog's miss budget.
"""

import time

import pytest

from repro.api import EstimateRequest
from repro.errors import ConfigurationError
from repro.obs import HeartbeatMonitor, MetricsRegistry
from repro.obs.slo import DEFAULT_OBJECTIVE
from repro.serve import FleetStatus, ServiceConfig, ShardedService

#: Streaming interval small enough to land several beats per test run.
INTERVAL = 0.05


def _stream(count=16, populations=(200, 300), seeds=6):
    requests = []
    for index in range(count):
        requests.append(
            EstimateRequest(
                population=populations[index % len(populations)],
                population_seed=1_000 + (index % 3),
                seed=100 + (index % seeds),
                rounds=8,
                tenant=f"tenant-{index % 2}",
                request_id=f"req-{index:03d}",
            )
        )
    return requests


def _run_streaming(requests, shards=2, interval=INTERVAL):
    registry = MetricsRegistry()
    config = ServiceConfig(snapshot_interval_seconds=interval)
    with ShardedService(
        shards=shards, config=config, registry=registry
    ) as service:
        responses = [
            future.result()
            for future in [service.submit(r) for r in requests]
        ]
    return registry, service, responses


class TestStreamingMergesLikeStopTime:
    """Satellite 1: the final merge is idempotent against deltas."""

    def test_counters_not_double_counted_at_stop(self):
        requests = _stream(count=16)
        registry, service, responses = _run_streaming(requests)
        snapshot = registry.snapshot()
        counters = snapshot["counters"]
        answered = sum(
            value
            for name, value in counters.items()
            if name.startswith("serve.requests.")
            and name != "serve.requests.submitted"
        )
        # Heartbeats streamed these same counters mid-run; a stop-time
        # re-merge would double them.
        assert answered == len(requests)
        assert counters["serve.router.requests"] == len(requests)
        assert all(r.status == "ok" for r in responses)

    def test_merged_state_matches_non_streaming_run(self):
        requests = _stream(count=16)
        streaming_registry, _, streaming = _run_streaming(requests)
        stop_registry = MetricsRegistry()
        with ShardedService(
            shards=2, config=ServiceConfig(), registry=stop_registry
        ) as service:
            baseline = [
                future.result()
                for future in [service.submit(r) for r in requests]
            ]
        # Bit-identity of the answers across telemetry modes.
        assert [
            (r.request_id, r.status, r.result and r.result.n_hat)
            for r in streaming
        ] == [
            (r.request_id, r.status, r.result and r.result.n_hat)
            for r in baseline
        ]
        live = streaming_registry.snapshot()
        stop = stop_registry.snapshot()
        # Deterministic counters agree exactly; timing-dependent ones
        # (cache hits, batch sizes) are checked for consistency via
        # the gauge/counter cross-check below instead.
        for name in (
            "serve.requests.ok",
            "serve.router.requests",
            "serve.shard.0.routed",
            "serve.shard.1.routed",
        ):
            assert live["counters"].get(name) == stop["counters"].get(
                name
            ), name
        histogram = "serve.request.latency_seconds"
        assert (
            live["histograms"][histogram]["count"]
            == stop["histograms"][histogram]["count"]
        )
        for gauge in (
            "serve.shard.0.requests",
            "serve.shard.1.requests",
            "serve.slo.good_fast",
            "serve.slo.burn_rate_fast",
        ):
            assert live["gauges"][gauge] == stop["gauges"][gauge], gauge
        # Streamed cache telemetry stays self-consistent: the
        # per-shard gauges sum to the merged counter.
        assert live["gauges"]["serve.shard.0.cache_hits"] + live[
            "gauges"
        ]["serve.shard.1.cache_hits"] == live["counters"].get(
            "serve.cache.hits", 0.0
        )

    def test_fleet_gauges_published(self):
        requests = _stream(count=12)
        registry, service, _ = _run_streaming(requests)
        gauges = registry.snapshot()["gauges"]
        for shard in range(2):
            prefix = f"serve.shard.{shard}"
            assert f"{prefix}.heartbeat_age_seconds" in gauges
            assert gauges[f"{prefix}.queue_depth"] == 0
            assert gauges[f"{prefix}.inflight"] == 0
            assert f"{prefix}.burn_rate_fast" in gauges
        total = (
            gauges["serve.shard.0.requests"]
            + gauges["serve.shard.1.requests"]
        )
        assert total == len(requests)
        assert gauges["serve.slo.objective"] == DEFAULT_OBJECTIVE


class TestLiveMidRunState:
    def test_mid_run_registry_carries_worker_series(self):
        registry = MetricsRegistry()
        config = ServiceConfig(snapshot_interval_seconds=INTERVAL)
        requests = _stream(count=12)
        with ShardedService(
            shards=2, config=config, registry=registry
        ) as service:
            for future in [service.submit(r) for r in requests]:
                future.result()
            # All answered; wait out a heartbeat so the deltas land.
            deadline = time.perf_counter() + 5.0
            while time.perf_counter() < deadline:
                counters = registry.snapshot()["counters"]
                if counters.get("serve.requests.ok", 0) >= len(
                    requests
                ):
                    break
                time.sleep(INTERVAL / 2)
            mid = registry.snapshot()
            health = service.fleet_health()
        # Worker-side series were merged while the fleet was running.
        assert mid["counters"]["serve.requests.ok"] == len(requests)
        assert "serve.request.latency_seconds" in mid["histograms"]
        assert mid["gauges"]["serve.slo.good_fast"] == len(requests)
        assert health["status"] == "ok"
        assert set(health["shards"]) == {"0", "1"}
        for shard in health["shards"].values():
            assert shard["status"] == "ok"
            assert shard["heartbeat_age_seconds"] >= 0.0

    def test_health_freezes_ok_after_stop(self):
        requests = _stream(count=8)
        _, service, _ = _run_streaming(requests)
        health = service.fleet_health()
        assert health["status"] == "ok"
        ages = [
            shard["heartbeat_age_seconds"]
            for shard in health["shards"].values()
        ]
        time.sleep(0.05)
        again = [
            shard["heartbeat_age_seconds"]
            for shard in service.fleet_health()["shards"].values()
        ]
        assert again == ages


class TestWatchdog:
    def test_killed_worker_degrades_within_two_intervals(self):
        registry = MetricsRegistry()
        config = ServiceConfig(
            snapshot_interval_seconds=INTERVAL, heartbeat_misses=2
        )
        service = ShardedService(
            shards=2, config=config, registry=registry
        ).start()
        try:
            for future in [
                service.submit(r) for r in _stream(count=8)
            ]:
                future.result()
            victim = service._processes[1]
            victim.kill()
            victim.join(timeout=5.0)
            deadline = time.perf_counter() + 5.0
            flipped_at = None
            while time.perf_counter() < deadline:
                health = service.fleet_health()
                if health["status"] != "ok":
                    flipped_at = time.perf_counter()
                    break
                time.sleep(INTERVAL / 4)
            assert flipped_at is not None, "never left ok"
            assert health["status"] == "degraded"
            assert health["shards"]["1"]["status"] == "dead"
            assert health["shards"]["0"]["status"] == "ok"
        finally:
            # Collector sees every process dead only if both die; put
            # the sentinel so shard 0 drains, then stop.
            service.stop()

    def test_stalled_shard_alerts_once_and_recovers(self):
        registry = MetricsRegistry()
        fleet = FleetStatus(
            shards=1, interval=1.0, misses=2, registry=registry
        )
        fleet.record_heartbeat(0, ts=100.0, queue_depth=0, inflight=0)
        fleet.record_heartbeat(0, ts=101.0, queue_depth=0, inflight=0)
        assert fleet.monitor.check(0, age=1.5) is False
        assert fleet.monitor.check(0, age=2.5) is True
        assert fleet.monitor.check(0, age=2.6) is True
        counters = registry.snapshot()["counters"]
        assert counters["fleet.stall.alerts"] == 1
        events = [
            event
            for event in registry.events
            if event["name"] == "fleet.stall"
        ]
        assert len(events) == 1
        assert events[0]["shard"] == 0
        fleet.record_heartbeat(0, ts=104.0, queue_depth=0, inflight=0)
        assert fleet.monitor.alerting == set()
        assert any(
            event["name"] == "fleet.stall.recovered"
            for event in registry.events
        )


class TestHeartbeatMonitor:
    def test_threshold_floors_at_configured_interval(self):
        monitor = HeartbeatMonitor(1.0, misses=3)
        # Gaps faster than the interval must not tighten the threshold.
        monitor.beat(0, 0.1)
        assert monitor.threshold(0) == pytest.approx(3.0)

    def test_threshold_adapts_to_slow_cadence(self):
        monitor = HeartbeatMonitor(1.0, misses=2, alpha=1.0)
        monitor.beat(0, 4.0)
        assert monitor.threshold(0) == pytest.approx(8.0)
        assert monitor.check(0, age=7.0) is False
        assert monitor.check(0, age=9.0) is True

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"interval": 0.0},
            {"interval": -1.0},
            {"interval": 1.0, "misses": 0},
            {"interval": 1.0, "alpha": 0.0},
            {"interval": 1.0, "alpha": 1.5},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ConfigurationError):
            HeartbeatMonitor(**kwargs)


class TestConfigValidation:
    def test_negative_snapshot_interval_rejected(self):
        with pytest.raises(ConfigurationError, match="snapshot"):
            ServiceConfig(snapshot_interval_seconds=-0.5)

    def test_heartbeat_misses_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="heartbeat"):
            ServiceConfig(heartbeat_misses=0)

    def test_fleet_absent_without_interval(self):
        registry = MetricsRegistry()
        with ShardedService(
            shards=1, config=ServiceConfig(), registry=registry
        ) as service:
            assert service.fleet is None
            health = service.fleet_health()
        assert health == {"status": "ok", "shards": {}}
