"""End-to-end request tracing through the serve tier.

Every request answered with a live registry carries one distributed
trace: a ``serve.request`` root span (status + degradation rung) with
``admission`` / ``queue.wait`` / ``fusion`` / ``kernel`` / ``respond``
children, a ``trace_id`` echoed on the response, and a bucket exemplar
on the latency histogram pointing back at the trace.
"""

from __future__ import annotations

import asyncio

from repro.api import EstimateRequest
from repro.obs import MetricsRegistry, TraceContext, use_trace_context
from repro.serve import EstimationService, ServiceConfig, run_requests

#: Child spans every successfully fused request contributes.
FUSED_CHILD_SPANS = {
    "admission",
    "queue.wait",
    "fusion",
    "kernel",
    "respond",
}


def _request(seed, tenant="default", **overrides):
    defaults = dict(
        population=400, seed=seed, rounds=16, population_seed=1
    )
    defaults.update(overrides)
    return EstimateRequest(tenant=tenant, **defaults)


def _spans_by_trace(registry):
    by_trace = {}
    for record in registry.trace:
        if record.trace_id is not None:
            by_trace.setdefault(record.trace_id, []).append(record)
    return by_trace


def _root(spans):
    roots = [span for span in spans if span.name == "serve.request"]
    assert len(roots) == 1
    return roots[0]


class TestFusedRequestTrace:
    def test_every_request_gets_a_complete_span_set(self):
        registry = MetricsRegistry()
        requests = [_request(s) for s in range(4)]
        responses = run_requests(
            requests, registry=registry, concurrency=4
        )
        by_trace = _spans_by_trace(registry)
        assert len(by_trace) == 4
        assert {r.trace_id for r in responses} == set(by_trace)
        for trace_id, spans in by_trace.items():
            names = {span.name for span in spans}
            assert names == FUSED_CHILD_SPANS | {"serve.request"}
            root = _root(spans)
            assert root.parent_id is None
            assert root.attributes["status"] == "ok"
            assert root.attributes["rung"] == "fused"
            for span in spans:
                if span is not root:
                    assert span.parent_id == root.span_id

    def test_kernel_span_names_backend_and_group(self):
        registry = MetricsRegistry()
        run_requests(
            [_request(1)], registry=registry, concurrency=1
        )
        kernel = next(
            span for span in registry.trace if span.name == "kernel"
        )
        assert kernel.attributes["backend"]
        assert kernel.attributes["group_size"] >= 1
        assert kernel.attributes["protocol"].lower() == "pet"
        fusion = next(
            span for span in registry.trace if span.name == "fusion"
        )
        assert fusion.attributes["group_size"] >= 1

    def test_latency_exemplars_point_at_response_traces(self):
        registry = MetricsRegistry()
        responses = run_requests(
            [_request(s) for s in range(4)],
            registry=registry,
            concurrency=4,
        )
        latency = registry.histogram("serve.request.latency_seconds")
        assert latency.exemplars
        exemplar_traces = {
            exemplar[0] for exemplar in latency.exemplars.values()
        }
        assert exemplar_traces <= {r.trace_id for r in responses}

    def test_tracing_never_perturbs_estimates(self):
        """Trace ids come from os.urandom, not the seeded streams —
        traced and untraced runs answer bit-identically."""
        traced_registry = MetricsRegistry()
        requests = [_request(s) for s in (1, 2, 3)]
        traced = run_requests(
            requests, registry=traced_registry, concurrency=3
        )
        untraced = run_requests(
            requests,
            config=ServiceConfig(trace_requests=False),
            registry=MetricsRegistry(),
            concurrency=3,
        )
        for a, b in zip(traced, untraced):
            assert a.result.n_hat == b.result.n_hat
            assert a.result.total_slots == b.result.total_slots


class TestTraceJoin:
    def test_request_trace_context_is_joined_not_replaced(self):
        upstream = TraceContext.root()
        registry = MetricsRegistry()
        responses = run_requests(
            [_request(1, trace_context=upstream)],
            registry=registry,
            concurrency=1,
        )
        assert responses[0].trace_id == upstream.trace_id
        root = _root(registry.trace)
        assert root.trace_id == upstream.trace_id
        assert root.parent_id == upstream.span_id

    def test_ambient_context_joined_when_request_carries_none(self):
        registry = MetricsRegistry()
        ambient = TraceContext.root()
        config = ServiceConfig(tick_seconds=0)

        async def main():
            async with EstimationService(
                config=config, registry=registry
            ) as service:
                with use_trace_context(ambient):
                    return await service.submit(_request(1))

        response = asyncio.run(main())
        assert response.trace_id == ambient.trace_id


class TestTracingSwitchedOff:
    def test_trace_requests_false_records_no_request_spans(self):
        registry = MetricsRegistry()
        responses = run_requests(
            [_request(1)],
            config=ServiceConfig(trace_requests=False),
            registry=registry,
            concurrency=1,
        )
        assert responses[0].status == "ok"
        assert responses[0].trace_id is None
        assert all(
            record.trace_id is None for record in registry.trace
        )
        assert not any(
            record.name == "serve.request"
            for record in registry.trace
        )
        # Metrics still flow: only the trace layer is off.
        assert registry.counter("serve.requests.ok").value == 1

    def test_no_registry_means_no_trace_id(self):
        responses = run_requests([_request(1)], concurrency=1)
        assert responses[0].trace_id is None


class TestDegradationRungsOnRoot:
    def test_backpressure_rejection_traced(self):
        registry = MetricsRegistry()
        config = ServiceConfig(max_queue_depth=1, tick_seconds=0.1)

        async def main():
            async with EstimationService(
                config=config, registry=registry
            ) as service:
                return await asyncio.gather(
                    *(service.submit(_request(s)) for s in range(3))
                )

        responses = asyncio.run(main())
        rejected = [r for r in responses if r.status == "rejected"]
        assert rejected
        roots = [
            span
            for span in registry.trace
            if span.name == "serve.request"
            and span.attributes["status"] == "rejected"
        ]
        assert len(roots) == len(rejected)
        for root in roots:
            assert root.attributes["rung"] == "backpressure"
            assert root.attributes["reason"] == "queue_full"
        assert {r.trace_id for r in rejected} == {
            root.trace_id for root in roots
        }

    def test_deadline_expiry_traced_with_reason(self):
        registry = MetricsRegistry()
        config = ServiceConfig(tick_seconds=0.05)

        async def main():
            async with EstimationService(
                config=config, registry=registry
            ) as service:
                return await service.submit(
                    _request(1, deadline=1e-9)
                )

        response = asyncio.run(main())
        assert response.status == "expired"
        root = _root(
            [
                span
                for span in registry.trace
                if span.trace_id == response.trace_id
            ]
        )
        assert root.attributes["rung"] == "deadline_expired"
        assert "deadline" in root.attributes["reason"]

    def test_degraded_answer_traced_with_sampled_kernel(self):
        registry = MetricsRegistry()
        config = ServiceConfig(
            max_batch_size=4, degrade_queue_depth=0, tick_seconds=0.01
        )
        responses = run_requests(
            [
                _request(s, population=20_000, rounds=64)
                for s in range(12)
            ],
            config=config,
            registry=registry,
            concurrency=12,
        )
        degraded = [r for r in responses if r.status == "degraded"]
        assert degraded
        by_trace = _spans_by_trace(registry)
        for response in degraded:
            spans = by_trace[response.trace_id]
            root = _root(spans)
            assert root.attributes["rung"] == "degraded_sampled"
            assert "backlog" in root.attributes["reason"]
            kernel = next(
                span for span in spans if span.name == "kernel"
            )
            assert kernel.attributes["backend"] == "sampled"

    def test_resolve_error_traced(self):
        registry = MetricsRegistry()
        responses = run_requests(
            [
                EstimateRequest(population=400, seed=1, rounds=0)
            ],  # invalid rounds
            registry=registry,
            concurrency=1,
        )
        assert responses[0].status == "error"
        root = _root(
            [
                span
                for span in registry.trace
                if span.trace_id == responses[0].trace_id
            ]
        )
        assert root.attributes["rung"] == "resolve_error"
        assert root.attributes["reason"]


class TestServeSlo:
    def test_ok_requests_leave_budget_intact(self):
        registry = MetricsRegistry()
        run_requests(
            [_request(s) for s in range(4)],
            registry=registry,
            concurrency=4,
        )
        # The service attaches a tracker and force-publishes at stop.
        assert registry.slo is not None
        assert registry.gauge("serve.slo.burn_rate_fast").value == 0.0
        assert registry.gauge("serve.slo.good_fast").value == 4
        assert (
            registry.gauge("serve.slo.budget_remaining_fast").value
            == 1.0
        )

    def test_non_ok_answers_burn_budget(self):
        registry = MetricsRegistry()
        config = ServiceConfig(tick_seconds=0.05)

        async def main():
            async with EstimationService(
                config=config, registry=registry
            ) as service:
                return await asyncio.gather(
                    service.submit(_request(1, deadline=1e-9)),
                    service.submit(_request(2)),
                )

        asyncio.run(main())
        assert registry.gauge("serve.slo.bad_fast").value == 1
        assert registry.gauge("serve.slo.burn_rate_fast").value > 0.0
