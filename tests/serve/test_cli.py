"""The serve/loadgen CLI faces, driven through ``repro.cli.main``."""

import io
import json

import pytest

from repro.cli import main
from repro.config import AccuracyRequirement
from repro.errors import ReproError
from repro.serve.cli import request_from_record


class TestRequestFromRecord:
    def test_minimal_record(self):
        request = request_from_record({"population": 100})
        assert request.population == 100
        assert request.protocol == "pet"
        assert request.tenant == "default"

    def test_full_record(self):
        request = request_from_record(
            {
                "population": 100,
                "protocol": "fneb",
                "config": {"frame_size": 64},
                "seed": 3,
                "population_seed": 9,
                "rounds": 32,
                "accuracy": [0.1, 0.05],
                "tenant": "dock-3",
                "deadline": 0.5,
                "request_id": "abc",
            }
        )
        assert request.protocol == "fneb"
        assert request.config == {"frame_size": 64}
        assert request.accuracy == AccuracyRequirement(0.1, 0.05)
        assert request.tenant == "dock-3"

    def test_missing_population_rejected(self):
        with pytest.raises(ReproError, match="population"):
            request_from_record({"seed": 1})

    def test_trace_context_field_joins_upstream_trace(self):
        from repro.obs import TraceContext

        upstream = TraceContext.root()
        request = request_from_record(
            {
                "population": 100,
                "trace_context": upstream.to_dict(),
            }
        )
        assert request.trace_context == upstream

    def test_malformed_trace_context_rejected(self):
        with pytest.raises(ReproError, match="trace_context"):
            request_from_record(
                {"population": 100, "trace_context": "not-a-dict"}
            )

    def test_unknown_fields_rejected(self):
        with pytest.raises(ReproError, match="bogus"):
            request_from_record({"population": 10, "bogus": 1})

    def test_non_object_rejected(self):
        with pytest.raises(ReproError, match="object"):
            request_from_record([1, 2, 3])


class TestLoadgenCli:
    def test_dry_run_prints_schedule(self, capsys):
        code = main(["loadgen", "--requests", "5", "--dry-run"])
        assert code == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 5
        first = json.loads(lines[0])
        assert first["request_id"] == "req-00000"
        assert first["tenant"] == "tenant-0"

    def test_json_run_exit_zero_without_failures(self, capsys):
        code = main(
            [
                "loadgen",
                "--requests",
                "16",
                "--population",
                "300",
                "--rounds",
                "8",
                "--time-scale",
                "0",
                "--json",
            ]
        )
        assert code == 0
        record = json.loads(capsys.readouterr().out)
        assert record["requests"] == 16
        assert record["failures"] == 0

    def test_trace_out_writes_renderable_span_file(
        self, capsys, tmp_path
    ):
        from repro.obs.traceview import available_traces, load_trace_file

        trace_path = tmp_path / "trace.jsonl"
        code = main(
            [
                "loadgen",
                "--requests",
                "4",
                "--population",
                "300",
                "--rounds",
                "8",
                "--time-scale",
                "0",
                "--json",
                "--trace-out",
                str(trace_path),
            ]
        )
        assert code == 0
        spans = load_trace_file(str(trace_path))
        traces = available_traces(spans)
        assert len(traces) == 4
        # Each request's trace carries the full ladder of spans.
        assert all(count >= 6 for _, count in traces)
        code = main(
            ["traceview", "--trace-file", str(trace_path), "--list"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert traces[0][0] in out

    def test_metrics_port_exposes_live_endpoint(self, capsys):
        import urllib.request
        from unittest import mock

        captured = {}
        original_start = __import__(
            "repro.obs.http", fromlist=["MetricsServer"]
        ).MetricsServer.start

        def recording_start(self):
            result = original_start(self)
            captured["url"] = self.url
            with urllib.request.urlopen(
                self.url + "/healthz", timeout=5
            ) as response:
                captured["healthz"] = json.loads(response.read())
            return result

        with mock.patch(
            "repro.obs.http.MetricsServer.start", recording_start
        ):
            code = main(
                [
                    "loadgen",
                    "--requests",
                    "4",
                    "--population",
                    "300",
                    "--rounds",
                    "8",
                    "--time-scale",
                    "0",
                    "--json",
                    "--metrics-port",
                    "0",
                ]
            )
        assert code == 0
        assert captured["healthz"]["status"] == "ok"
        assert "listening on" in capsys.readouterr().err

    def test_text_run_and_prom_out(self, capsys, tmp_path):
        prom = tmp_path / "serve.prom"
        code = main(
            [
                "loadgen",
                "--requests",
                "8",
                "--population",
                "300",
                "--rounds",
                "8",
                "--time-scale",
                "0",
                "--prom-out",
                str(prom),
            ]
        )
        assert code == 0
        assert "load report" in capsys.readouterr().out
        text = prom.read_text()
        assert "serve_request_latency_seconds" in text


class TestServeCli:
    def test_json_lines_round_trip(self, capsys, monkeypatch):
        lines = "\n".join(
            [
                json.dumps(
                    {"population": 300, "seed": 7, "rounds": 8,
                     "request_id": "a"}
                ),
                json.dumps(
                    {"population": 300, "seed": 8, "rounds": 8,
                     "request_id": "b"}
                ),
                "not json",
            ]
        )
        monkeypatch.setattr("sys.stdin", io.StringIO(lines))
        code = main(["serve"])
        assert code == 0
        captured = capsys.readouterr()
        records = [
            json.loads(line)
            for line in captured.out.strip().splitlines()
        ]
        by_status = {}
        for record in records:
            by_status.setdefault(record["status"], []).append(record)
        assert len(by_status["ok"]) == 2
        assert len(by_status["error"]) == 1
        assert {r["request_id"] for r in by_status["ok"]} == {"a", "b"}
        for record in by_status["ok"]:
            assert record["result"]["rounds"] == 8
        assert "served 2 requests (1 malformed lines)" in captured.err

    def test_unknown_subcommand_falls_to_experiment_parser(self, capsys):
        with pytest.raises(SystemExit):
            main(["no-such-command"])
