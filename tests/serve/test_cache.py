"""The cross-tick idempotent result cache: keys, LRU, service path."""

import asyncio

import numpy as np
import pytest

from repro.api import (
    EstimateRequest,
    request_cache_key,
    resolve_request,
)
from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry
from repro.protocols.base import ProtocolResult
from repro.serve import EstimationService, ServiceConfig
from repro.serve.cache import ResultCache


def _request(seed, **overrides):
    defaults = dict(
        population=400, seed=seed, rounds=16, population_seed=1
    )
    defaults.update(overrides)
    return EstimateRequest(**defaults)


def _result(value=1.0):
    return ProtocolResult(
        protocol="pet",
        n_hat=value,
        rounds=1,
        total_slots=1,
        per_round_statistics=np.zeros(1),
    )


class TestRequestCacheKey:
    def test_identical_requests_share_a_key(self):
        assert request_cache_key(_request(7)) == request_cache_key(
            _request(7)
        )

    def test_every_input_is_part_of_the_key(self):
        base = request_cache_key(_request(7))
        assert request_cache_key(_request(8)) != base
        for overrides in (
            dict(population=401),
            dict(population_seed=2),
            dict(rounds=17),
            dict(protocol="fneb"),
            dict(config={"tree_height": 24}),
        ):
            assert request_cache_key(_request(7, **overrides)) != base

    def test_tenant_and_request_id_are_not_part_of_the_key(self):
        # Idempotency is about the estimate, not who asked.
        assert request_cache_key(
            _request(7, tenant="a", request_id="x")
        ) == request_cache_key(_request(7, tenant="b", request_id="y"))

    def test_unseeded_request_is_uncacheable(self):
        assert request_cache_key(_request(None)) is None

    def test_live_rng_is_uncacheable(self):
        request = _request(
            None, rng=np.random.default_rng(1), population_seed=None
        )
        assert request_cache_key(request) is None

    def test_explicit_population_is_uncacheable(self):
        request = EstimateRequest(
            population=[1, 2, 3], seed=7, rounds=4
        )
        assert request_cache_key(request) is None

    def test_resolve_request_stamps_the_key(self):
        plan = resolve_request(_request(7), population_cache={})
        assert plan.cache_key == request_cache_key(_request(7))


class TestResultCacheLru:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ConfigurationError, match="capacity"):
            ResultCache(capacity=0)

    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.lookup(("k",)) is None
        cache.store(("k",), _result(2.0))
        assert cache.lookup(("k",)).n_hat == 2.0
        assert cache.hits == 1 and cache.misses == 1

    def test_lru_eviction_bounds_the_cache(self):
        cache = ResultCache(capacity=2)
        cache.store(("a",), _result())
        cache.store(("b",), _result())
        cache.lookup(("a",))  # refresh a: b becomes the LRU entry
        cache.store(("c",), _result())
        assert len(cache) == 2
        assert cache.evictions == 1
        assert cache.lookup(("b",)) is None
        assert cache.lookup(("a",)) is not None

    def test_counters_land_on_the_registry(self):
        registry = MetricsRegistry()
        cache = ResultCache(capacity=1, registry=registry)
        cache.lookup(("a",))
        cache.store(("a",), _result())
        cache.lookup(("a",))
        cache.store(("b",), _result())
        counters = registry.snapshot().counters
        assert counters["serve.cache.misses"] == 1
        assert counters["serve.cache.hits"] == 1
        assert counters["serve.cache.evictions"] == 1


class TestServiceCachePath:
    def test_replay_is_byte_identical_and_skips_the_queue(self):
        async def main():
            registry = MetricsRegistry()
            service = EstimationService(registry=registry)
            async with service:
                cold = await service.submit(_request(7))
                warm = await service.submit(_request(7))
            assert cold.status == warm.status == "ok"
            assert warm.result is cold.result  # the stored object
            assert warm.result.n_hat == cold.result.n_hat
            assert np.array_equal(
                warm.result.per_round_statistics,
                cold.result.per_round_statistics,
            )
            counters = registry.snapshot().counters
            assert counters["serve.cache.hits"] == 1
            # Only the cold run was ever enqueued.
            assert counters["serve.requests.submitted"] == 1

        asyncio.run(main())

    def test_kill_switch_disables_the_cache(self):
        async def main():
            registry = MetricsRegistry()
            service = EstimationService(
                config=ServiceConfig(cache=False), registry=registry
            )
            assert service.cache is None
            async with service:
                first = await service.submit(_request(7))
                second = await service.submit(_request(7))
            assert first.result is not second.result
            assert first.result.n_hat == second.result.n_hat
            counters = registry.snapshot().counters
            assert "serve.cache.hits" not in counters
            assert counters["serve.requests.submitted"] == 2

        asyncio.run(main())

    def test_cache_size_one_still_serves_correctly(self):
        async def main():
            service = EstimationService(
                config=ServiceConfig(cache_size=1)
            )
            async with service:
                a1 = await service.submit(_request(1))
                b1 = await service.submit(_request(2))  # evicts seed=1
                a2 = await service.submit(_request(1))  # cold again
                b2 = await service.submit(_request(2))
            assert a1.result.n_hat == a2.result.n_hat
            assert b1.result.n_hat == b2.result.n_hat
            assert service.cache.evictions >= 1

        asyncio.run(main())

    def test_uncacheable_requests_always_run(self):
        async def main():
            registry = MetricsRegistry()
            service = EstimationService(registry=registry)
            async with service:
                for _ in range(2):
                    response = await service.submit(
                        _request(None, population_seed=None)
                    )
                    assert response.status == "ok"
            counters = registry.snapshot().counters
            assert "serve.cache.hits" not in counters
            assert counters["serve.requests.submitted"] == 2

        asyncio.run(main())

    def test_cache_hit_matches_the_facade(self):
        import repro

        async def main():
            service = EstimationService()
            async with service:
                await service.submit(_request(9, population_seed=None))
                warm = await service.submit(
                    _request(9, population_seed=None)
                )
            expected = repro.estimate(400, seed=9, rounds=16)
            assert warm.result.n_hat == expected.n_hat
            assert warm.result.total_slots == expected.total_slots

        asyncio.run(main())
