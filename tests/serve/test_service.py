"""The asyncio service: coalescing, backpressure, quotas, deadlines.

No pytest-asyncio in the toolchain — each test owns its loop through
``asyncio.run``.
"""

import asyncio

import pytest

import repro.serve.service as service_module
from repro.api import (
    RESPONSE_STATUSES,
    EstimateRequest,
    execute_request,
    resolve_request,
)
from repro.errors import ConfigurationError, ServiceError
from repro.obs import MetricsRegistry
from repro.serve import EstimationService, ServiceConfig, run_requests


def _request(seed, tenant="default", **overrides):
    defaults = dict(
        population=400, seed=seed, rounds=16, population_seed=1
    )
    defaults.update(overrides)
    return EstimateRequest(tenant=tenant, **defaults)


async def _submit_burst(service, requests):
    """Launch every submit concurrently and gather the responses."""
    return await asyncio.gather(
        *(service.submit(request) for request in requests)
    )


class TestServiceConfig:
    def test_defaults_validate(self):
        config = ServiceConfig()
        assert config.degrade_depth == config.max_queue_depth // 2

    def test_explicit_degrade_depth_wins(self):
        assert ServiceConfig(degrade_queue_depth=7).degrade_depth == 7

    @pytest.mark.parametrize(
        "field, value",
        [
            ("max_queue_depth", 0),
            ("max_batch_size", 0),
            ("tick_seconds", -0.1),
            ("tenant_quota", 0),
            ("degrade_queue_depth", -1),
            ("retry_after_seconds", 0.0),
        ],
    )
    def test_bad_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError, match=field):
            ServiceConfig(**{field: value})


class TestLifecycle:
    def test_submit_before_start_raises(self):
        async def main():
            service = EstimationService()
            with pytest.raises(ServiceError, match="not accepting"):
                await service.submit(_request(1))

        asyncio.run(main())

    def test_double_start_raises(self):
        async def main():
            service = EstimationService()
            await service.start()
            with pytest.raises(ServiceError, match="already started"):
                await service.start()
            await service.stop()

        asyncio.run(main())

    def test_stop_without_start_raises(self):
        async def main():
            with pytest.raises(ServiceError, match="never started"):
                await EstimationService().stop()

        asyncio.run(main())

    def test_stop_drains_pending_requests(self):
        async def main():
            service = EstimationService(
                config=ServiceConfig(tick_seconds=0.2)
            )
            await service.start()
            tasks = [
                asyncio.ensure_future(service.submit(_request(s)))
                for s in range(5)
            ]
            await asyncio.sleep(0)  # enqueue before the stop
            await service.stop()
            responses = await asyncio.gather(*tasks)
            assert [r.status for r in responses] == ["ok"] * 5

        asyncio.run(main())


class TestCoalescedIdentity:
    """Concurrent requests through the service == solo facade results."""

    def test_pet_and_fneb_bit_identical_through_service(self):
        requests = [
            _request(s) for s in (1, 2, 3)
        ] + [
            _request(s, protocol="fneb") for s in (4, 5)
        ]
        responses = run_requests(requests, concurrency=len(requests))
        for request, response in zip(requests, responses):
            solo = execute_request(
                resolve_request(request, population_cache={})
            )
            assert response.status == "ok"
            assert response.result.n_hat == solo.n_hat
            assert response.result.total_slots == solo.total_slots
            assert (
                response.result.seed_provenance == solo.seed_provenance
            )

    def test_responses_come_back_in_request_order(self):
        requests = [
            _request(s, request_id=f"r{s}") for s in range(6)
        ]
        responses = run_requests(requests, concurrency=6)
        assert [r.request_id for r in responses] == [
            f"r{s}" for s in range(6)
        ]

    def test_concurrent_burst_actually_coalesces(self):
        registry = MetricsRegistry()
        requests = [_request(s) for s in range(8)]
        run_requests(
            requests,
            config=ServiceConfig(tick_seconds=0.05),
            registry=registry,
            concurrency=8,
        )
        # All eight shared population+config: at least one fusion
        # group served multiple requests.
        fused = registry.counter("serve.batch.fused_requests").value
        groups = registry.counter("serve.batch.groups").value
        assert fused == 8
        assert groups < 8

    def test_bad_request_gets_error_response_not_exception(self):
        requests = [
            _request(1),
            EstimateRequest(
                population=400, seed=2, rounds=0  # invalid rounds
            ),
            _request(3),
        ]
        responses = run_requests(requests, concurrency=3)
        assert [r.status for r in responses] == ["ok", "error", "ok"]
        assert "rounds" in responses[1].detail


class TestBackpressure:
    def test_queue_full_rejected_with_retry_after(self):
        config = ServiceConfig(
            max_queue_depth=4,
            tick_seconds=0.2,
            retry_after_seconds=0.07,
        )

        async def main():
            async with EstimationService(config=config) as service:
                return await _submit_burst(
                    service, [_request(s) for s in range(10)]
                )

        responses = asyncio.run(main())
        by_status = {}
        for response in responses:
            by_status.setdefault(response.status, []).append(response)
        assert len(by_status["ok"]) == 4
        assert len(by_status["rejected"]) == 6
        for rejected in by_status["rejected"]:
            assert rejected.retry_after == pytest.approx(0.07)
            assert "queue full" in rejected.detail
            assert rejected.result is None

    def test_rejected_counter_recorded(self):
        registry = MetricsRegistry()
        config = ServiceConfig(max_queue_depth=2, tick_seconds=0.2)

        async def main():
            async with EstimationService(
                config=config, registry=registry
            ) as service:
                await _submit_burst(
                    service, [_request(s) for s in range(5)]
                )

        asyncio.run(main())
        assert registry.counter("serve.requests.rejected").value == 3
        assert registry.counter("serve.requests.ok").value == 2


class TestTenantQuota:
    def test_noisy_tenant_cannot_starve_quiet_tenant(self):
        config = ServiceConfig(
            max_queue_depth=100, tenant_quota=2, tick_seconds=0.2
        )

        async def main():
            async with EstimationService(config=config) as service:
                noisy = [
                    service.submit(_request(s, tenant="noisy"))
                    for s in range(6)
                ]
                quiet = [
                    service.submit(_request(s, tenant="quiet"))
                    for s in range(2)
                ]
                return await asyncio.gather(*noisy, *quiet)

        responses = asyncio.run(main())
        noisy, quiet = responses[:6], responses[6:]
        assert [r.status for r in quiet] == ["ok", "ok"]
        assert sorted(r.status for r in noisy) == [
            "ok",
            "ok",
            "rejected",
            "rejected",
            "rejected",
            "rejected",
        ]
        for rejected in (r for r in noisy if r.status == "rejected"):
            assert "quota" in rejected.detail
            assert rejected.retry_after is not None

    def test_quota_slot_released_after_answer(self):
        config = ServiceConfig(tenant_quota=1, tick_seconds=0)

        async def main():
            async with EstimationService(config=config) as service:
                first = await service.submit(_request(1, tenant="t"))
                second = await service.submit(_request(2, tenant="t"))
                return first, second

        first, second = asyncio.run(main())
        assert first.status == "ok"
        assert second.status == "ok"


class TestDeadlines:
    def test_expired_request_never_reaches_the_kernel(self, monkeypatch):
        resolved_requests = []
        original = service_module.resolve_request

        def recording_resolve(request, **kwargs):
            resolved_requests.append(request.request_id)
            return original(request, **kwargs)

        monkeypatch.setattr(
            service_module, "resolve_request", recording_resolve
        )
        config = ServiceConfig(tick_seconds=0.05)

        async def main():
            async with EstimationService(config=config) as service:
                return await asyncio.gather(
                    service.submit(
                        _request(1, deadline=1e-9, request_id="doomed")
                    ),
                    service.submit(
                        _request(2, deadline=60.0, request_id="fine")
                    ),
                )

        doomed, fine = asyncio.run(main())
        assert doomed.status == "expired"
        assert doomed.result is None
        assert "deadline" in doomed.detail
        assert fine.status == "ok"
        # The expired request was answered before resolution — it
        # never touched the protocol or the kernels.
        assert resolved_requests == ["fine"]

    def test_expired_counter_recorded(self):
        registry = MetricsRegistry()
        config = ServiceConfig(tick_seconds=0.05)

        async def main():
            async with EstimationService(
                config=config, registry=registry
            ) as service:
                await service.submit(_request(1, deadline=1e-9))

        asyncio.run(main())
        assert registry.counter("serve.requests.expired").value == 1


class TestOverloadDegradation:
    def test_overload_degrades_instead_of_crashing(self):
        config = ServiceConfig(
            max_queue_depth=64,
            max_batch_size=4,
            degrade_queue_depth=0,
            tick_seconds=0.01,
        )
        requests = [
            _request(s, population=20_000, rounds=64)
            for s in range(16)
        ]
        responses = run_requests(
            requests, config=config, concurrency=16
        )
        statuses = {r.status for r in responses}
        assert statuses <= {"ok", "degraded"}
        assert "degraded" in statuses
        for response in responses:
            if response.status == "degraded":
                assert response.ok  # still carries an estimate
                assert response.result is not None
                assert "sampled" in response.detail

    def test_twice_quota_load_every_request_answered(self):
        """The ISSUE's overload criterion: 2x quota, zero unhandled."""
        config = ServiceConfig(
            max_queue_depth=16,
            tenant_quota=8,
            max_batch_size=4,
            degrade_queue_depth=2,
            tick_seconds=0.01,
        )

        async def main():
            async with EstimationService(config=config) as service:
                return await _submit_burst(
                    service,
                    [
                        _request(s, tenant=f"t{s % 2}")
                        for s in range(32)  # 2x quota for both tenants
                    ],
                )

        responses = asyncio.run(main())
        assert len(responses) == 32
        for response in responses:
            assert response.status in RESPONSE_STATUSES
            assert response.status != "error"

    def test_passive_requests_stay_exact_under_overload(self):
        """Non-degradable requests ride the fused path even overloaded."""
        config = ServiceConfig(
            max_batch_size=2, degrade_queue_depth=0, tick_seconds=0.01
        )
        requests = [
            _request(s, config={"passive_tags": True})
            for s in range(6)
        ]
        responses = run_requests(requests, config=config, concurrency=6)
        assert [r.status for r in responses] == ["ok"] * 6
        for request, response in zip(requests, responses):
            solo = execute_request(
                resolve_request(request, population_cache={})
            )
            assert response.result.n_hat == solo.n_hat


class TestSloMetrics:
    def test_latency_histogram_and_tenant_counters(self):
        registry = MetricsRegistry()
        requests = [
            _request(s, tenant=f"tenant-{s % 2}") for s in range(6)
        ]
        run_requests(requests, registry=registry, concurrency=6)
        latency = registry.histogram("serve.request.latency_seconds")
        assert latency.count == 6
        assert latency.quantile(0.5) > 0
        assert latency.quantile(0.99) >= latency.quantile(0.5)
        assert (
            registry.counter("serve.tenant.tenant-0.requests").value
            == 3
        )
        assert (
            registry.counter("serve.tenant.tenant-1.requests").value
            == 3
        )
        assert registry.counter("serve.requests.submitted").value == 6
        assert registry.counter("serve.requests.ok").value == 6
        assert registry.gauge("serve.queue.depth").value == 0

    def test_population_cache_shared_across_batches(self):
        config = ServiceConfig(max_batch_size=2, tick_seconds=0)

        async def main():
            service = EstimationService(config=config)
            async with service:
                for seed in range(5):
                    await service.submit(_request(seed))
                return len(service._population_cache)

        assert asyncio.run(main()) == 1


class TestRunRequests:
    def test_rejects_bad_concurrency(self):
        with pytest.raises(ConfigurationError, match="concurrency"):
            run_requests([_request(1)], concurrency=0)

    def test_empty_request_list(self):
        assert run_requests([]) == []
