"""Micro-batch fusion: bit-identity against the scalar request path."""

import numpy as np
import pytest

from repro.api import EstimateRequest, execute_request, resolve_request
from repro.errors import ConfigurationError
from repro.protocols.base import ProtocolResult
from repro.serve.batching import (
    MicroBatchReport,
    degradable,
    execute_degraded,
    execute_micro_batch,
)


def _solo(request):
    """The request answered alone, through the scalar facade path."""
    return execute_request(resolve_request(request, population_cache={}))


def _fused(requests, report=None):
    """The requests answered together, through one micro-batch."""
    cache = {}
    plans = [
        resolve_request(request, population_cache=cache)
        for request in requests
    ]
    return execute_micro_batch(plans, report)


def _assert_identical(solo, fused):
    assert isinstance(fused, ProtocolResult)
    assert fused.n_hat == solo.n_hat
    assert fused.rounds == solo.rounds
    assert fused.total_slots == solo.total_slots
    assert np.array_equal(
        fused.per_round_statistics, solo.per_round_statistics
    )
    assert fused.seed_provenance == solo.seed_provenance


class TestBitIdentity:
    """The acceptance criterion: coalescing is semantically lossless."""

    def test_pet_active_fused_matches_solo(self):
        requests = [
            EstimateRequest(
                population=500, seed=s, rounds=32, population_seed=9
            )
            for s in (1, 2, 3)
        ]
        for request, fused in zip(requests, _fused(requests)):
            _assert_identical(_solo(request), fused)

    def test_pet_passive_fused_matches_solo(self):
        requests = [
            EstimateRequest(
                population=400,
                seed=s,
                rounds=16,
                population_seed=5,
                config={"passive_tags": True},
            )
            for s in (4, 5)
        ]
        for request, fused in zip(requests, _fused(requests)):
            _assert_identical(_solo(request), fused)

    def test_fneb_fused_matches_solo(self):
        requests = [
            EstimateRequest(
                population=300,
                protocol="fneb",
                seed=s,
                rounds=24,
                population_seed=2,
            )
            for s in (7, 8)
        ]
        for request, fused in zip(requests, _fused(requests)):
            _assert_identical(_solo(request), fused)

    def test_mixed_protocol_batch_keeps_every_identity(self):
        requests = [
            EstimateRequest(
                population=350, seed=11, rounds=16, population_seed=1
            ),
            EstimateRequest(
                population=350,
                protocol="lof",
                seed=12,
                rounds=16,
                population_seed=1,
            ),
            EstimateRequest(
                population=350, seed=13, rounds=16, population_seed=1
            ),
        ]
        for request, fused in zip(requests, _fused(requests)):
            _assert_identical(_solo(request), fused)

    def test_group_membership_does_not_change_results(self):
        """Adding peers to a fusion group never perturbs a request."""
        target = EstimateRequest(
            population=600, seed=42, rounds=48, population_seed=3
        )
        alone = _fused([target])[0]
        peers = [
            EstimateRequest(
                population=600, seed=s, rounds=48, population_seed=3
            )
            for s in (100, 101, 102)
        ]
        crowded = _fused(peers + [target])[-1]
        _assert_identical(alone, crowded)


class TestGrouping:
    def test_shared_population_requests_fuse(self):
        report = MicroBatchReport()
        requests = [
            EstimateRequest(
                population=200, seed=s, rounds=8, population_seed=1
            )
            for s in range(4)
        ]
        _fused(requests, report)
        assert report.requests == 4
        assert report.fused_groups == 1
        assert report.fused_requests == 4
        assert report.scalar_requests == 0

    def test_distinct_populations_split_groups(self):
        report = MicroBatchReport()
        requests = [
            EstimateRequest(
                population=200, seed=1, rounds=8, population_seed=1
            ),
            EstimateRequest(
                population=200, seed=2, rounds=8, population_seed=2
            ),
        ]
        _fused(requests, report)
        assert report.fused_groups == 2

    def test_distinct_configs_split_groups(self):
        report = MicroBatchReport()
        requests = [
            EstimateRequest(
                population=200, seed=1, rounds=8, population_seed=1
            ),
            EstimateRequest(
                population=200,
                seed=2,
                rounds=8,
                population_seed=1,
                config={"tree_height": 24},
            ),
        ]
        _fused(requests, report)
        assert report.fused_groups == 2

    def test_sampled_tier_falls_back_to_scalar(self):
        report = MicroBatchReport()
        request = EstimateRequest(
            population=200,
            seed=1,
            rounds=8,
            population_seed=1,
            config={"tier": "sampled"},
        )
        (result,) = _fused([request], report)
        assert report.scalar_requests == 1
        assert report.fused_requests == 0
        _assert_identical(_solo(request), result)

    def test_results_align_with_input_order(self):
        requests = [
            EstimateRequest(
                population=200,
                protocol=protocol,
                seed=s,
                rounds=8,
                population_seed=1,
            )
            for s, protocol in enumerate(["fneb", "pet", "fneb", "pet"])
        ]
        results = _fused(requests)
        assert [r.protocol for r in results] == [
            "FNEB",
            "PET",
            "FNEB",
            "PET",
        ]


class TestDegradedTier:
    def test_active_pet_is_degradable(self):
        plan = resolve_request(
            EstimateRequest(population=300, seed=1, rounds=8),
            population_cache={},
        )
        assert degradable(plan)

    def test_passive_pet_is_not_degradable(self):
        plan = resolve_request(
            EstimateRequest(
                population=300,
                seed=1,
                rounds=8,
                config={"passive_tags": True},
            ),
            population_cache={},
        )
        assert not degradable(plan)
        with pytest.raises(ConfigurationError, match="sampled"):
            execute_degraded(plan)

    def test_engine_protocols_are_degradable(self):
        # PR-9: every engine protocol with an estimate_sampled law
        # participates in the sampled fallback tier.
        for protocol in ("fneb", "lof", "use", "upe", "ezb", "aloha"):
            plan = resolve_request(
                EstimateRequest(
                    population=300, protocol=protocol, seed=1, rounds=8
                ),
                population_cache={},
            )
            assert degradable(plan), protocol

    def test_engine_degraded_follows_the_sampled_law(self):
        # The sampled statistic matches the hashed one in law: with a
        # pinned seed the estimate lands near the truth without ever
        # touching the population's tag IDs.
        for protocol, tolerance in (
            ("fneb", 0.5),
            ("lof", 0.5),
            ("use", 0.25),
            ("ezb", 0.25),
            ("aloha", 0.25),
        ):
            plan = resolve_request(
                EstimateRequest(
                    population=2_000,
                    protocol=protocol,
                    seed=11,
                    rounds=32,
                ),
                population_cache={},
            )
            result = execute_degraded(plan)
            assert result.n_hat == pytest.approx(
                2_000, rel=tolerance
            ), protocol
            assert result.rounds == 32
            assert result.seed_provenance == "seed=11"

    def test_engine_degraded_is_reproducible(self):
        request = EstimateRequest(
            population=1_000, protocol="aloha", seed=5, rounds=16
        )
        results = [
            execute_degraded(
                resolve_request(request, population_cache={})
            )
            for _ in range(2)
        ]
        assert results[0].n_hat == results[1].n_hat
        assert np.array_equal(
            results[0].per_round_statistics,
            results[1].per_round_statistics,
        )

    def test_degraded_result_is_reproducible(self):
        request = EstimateRequest(population=5_000, seed=3, rounds=64)
        results = [
            execute_degraded(
                resolve_request(request, population_cache={})
            )
            for _ in range(2)
        ]
        assert results[0].n_hat == results[1].n_hat
        assert results[0].rounds == 64
        assert results[0].seed_provenance == "seed=3"
        assert results[0].n_hat == pytest.approx(5_000, rel=0.5)
