"""Traffic generation: deterministic schedules and the SLO report."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry
from repro.serve import (
    LoadgenConfig,
    build_schedule,
    run_load,
)
from repro.serve.loadgen import LoadReport


class TestLoadgenConfig:
    @pytest.mark.parametrize(
        "field, value",
        [
            ("requests", 0),
            ("pattern", "steady"),
            ("rate", 0.0),
            ("burst_size", 0),
            ("burst_interval", -1.0),
            ("tenants", 0),
        ],
    )
    def test_bad_values_rejected(self, field, value):
        with pytest.raises(ConfigurationError):
            LoadgenConfig(**{field: value})


class TestBuildSchedule:
    def test_deterministic_in_the_seed(self):
        config = LoadgenConfig(requests=20, seed=5)
        first = build_schedule(config)
        second = build_schedule(config)
        assert [a for a, _ in first] == [a for a, _ in second]
        assert [r.seed for _, r in first] == [
            r.seed for _, r in second
        ]
        different = build_schedule(LoadgenConfig(requests=20, seed=6))
        assert [r.seed for _, r in first] != [
            r.seed for _, r in different
        ]

    def test_poisson_arrivals_increase(self):
        schedule = build_schedule(
            LoadgenConfig(requests=50, pattern="poisson", rate=1000.0)
        )
        arrivals = [a for a, _ in schedule]
        assert arrivals == sorted(arrivals)
        assert all(a > 0 for a in arrivals)

    def test_bursty_arrivals_land_in_bursts(self):
        config = LoadgenConfig(
            requests=10,
            pattern="bursty",
            burst_size=4,
            burst_interval=0.5,
        )
        arrivals = [a for a, _ in build_schedule(config)]
        assert arrivals == [0.0] * 4 + [0.5] * 4 + [1.0] * 2

    def test_tenants_round_robin_with_shared_population_seed(self):
        schedule = build_schedule(
            LoadgenConfig(requests=6, tenants=3)
        )
        tenants = [r.tenant for _, r in schedule]
        assert tenants == [
            "tenant-0",
            "tenant-1",
            "tenant-2",
        ] * 2
        by_tenant = {}
        for _, request in schedule:
            by_tenant.setdefault(request.tenant, set()).add(
                request.population_seed
            )
        # one population per reader field — the fusion precondition
        assert all(len(seeds) == 1 for seeds in by_tenant.values())
        assert (
            len({s for seeds in by_tenant.values() for s in seeds})
            == 3
        )

    def test_request_ids_and_deadline_stamped(self):
        schedule = build_schedule(
            LoadgenConfig(requests=3, deadline=0.5)
        )
        assert [r.request_id for _, r in schedule] == [
            "req-00000",
            "req-00001",
            "req-00002",
        ]
        assert all(r.deadline == 0.5 for _, r in schedule)


class TestLoadReport:
    def test_failures_count_only_errors(self):
        report = LoadReport(
            requests=10,
            wall_seconds=1.0,
            by_status={"ok": 6, "rejected": 3, "error": 1},
        )
        assert report.failures == 1
        assert report.throughput == pytest.approx(10.0)

    def test_to_dict_and_render_smoke(self):
        report = LoadReport(
            requests=4,
            wall_seconds=0.5,
            by_status={"ok": 4},
            by_tenant={"tenant-0": 4},
            p50_seconds=0.001,
            p99_seconds=0.002,
        )
        record = report.to_dict()
        assert record["throughput_per_second"] == pytest.approx(8.0)
        assert record["failures"] == 0
        text = report.render()
        assert "ok=4" in text
        assert "p99" in text

    def test_nan_throughput_for_zero_wall(self):
        report = LoadReport(requests=1, wall_seconds=0.0)
        assert math.isnan(report.throughput)


class TestRunLoad:
    def test_smoke_run_answers_everything(self):
        registry = MetricsRegistry()
        config = LoadgenConfig(
            requests=40,
            tenants=4,
            population=500,
            rounds=16,
            pattern="bursty",
            burst_size=8,
            burst_interval=0.0,
        )
        report = run_load(config, registry=registry, time_scale=0.0)
        assert report.requests == 40
        assert report.failures == 0
        assert sum(report.by_status.values()) == 40
        assert len(report.by_tenant) == 4
        assert report.p50_seconds > 0
        assert report.p99_seconds >= report.p50_seconds
        assert (
            registry.counter("serve.requests.submitted").value == 40
        )

    def test_default_registry_still_yields_percentiles(self):
        report = run_load(
            LoadgenConfig(requests=8, population=300, rounds=8),
            time_scale=0.0,
        )
        assert not math.isnan(report.p50_seconds)
