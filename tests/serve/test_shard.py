"""The sharded router: determinism, bit-identity, merged telemetry.

The contract under test is the ISSUE-9 tentpole: the same request
stream produces the same shard assignment and the same responses for
1, 2, and 4 shards — including quota exhaustion, which the router
adjudicates before anything crosses a process boundary.
"""

import numpy as np
import pytest

from repro.api import EstimateRequest
from repro.errors import ConfigurationError, ServiceError
from repro.obs import MetricsRegistry
from repro.serve import (
    ServiceConfig,
    ShardedService,
    route_shard,
    run_requests,
    run_sharded,
)

#: Small, fast workload reused across the identity tests.
def _stream(count=16, populations=(200, 300), seeds=6):
    requests = []
    for index in range(count):
        requests.append(
            EstimateRequest(
                population=populations[index % len(populations)],
                population_seed=1_000 + (index % 3),
                seed=100 + (index % seeds),
                rounds=8,
                tenant=f"tenant-{index % 2}",
                request_id=f"req-{index:03d}",
            )
        )
    return requests


def _essence(response):
    """The deterministic part of a response (timing stripped)."""
    if response.result is None:
        return (response.status, response.request_id, None)
    return (
        response.status,
        response.request_id,
        response.result.n_hat,
        response.result.total_slots,
        tuple(response.result.per_round_statistics.tolist()),
    )


class TestRouting:
    def test_route_is_deterministic(self):
        for request in _stream():
            assert route_shard(request, 4) == route_shard(request, 4)

    def test_single_shard_routes_to_zero(self):
        assert all(
            route_shard(request, 1) == 0 for request in _stream()
        )

    def test_route_depends_on_group_not_request_identity(self):
        # Same protocol config + population fingerprint => same shard,
        # regardless of tenant/request_id/seed (fusible requests and
        # cache repeats co-locate).
        a = EstimateRequest(
            population=500, population_seed=3, seed=1, tenant="a",
            request_id="x",
        )
        b = EstimateRequest(
            population=500, population_seed=3, seed=2, tenant="b",
            request_id="y",
        )
        c = EstimateRequest(population=500, population_seed=4, seed=1)
        assert route_shard(a, 4) == route_shard(b, 4)
        # Different fingerprints are free to differ (and do for this
        # pair under CRC-32).
        assert route_shard(a, 4) in range(4)
        assert route_shard(c, 4) in range(4)

    def test_bad_shard_count_rejected(self):
        with pytest.raises(ConfigurationError, match="shards"):
            ShardedService(shards=0)


class TestLifecycle:
    def test_submit_before_start_raises(self):
        service = ShardedService(shards=1)
        with pytest.raises(ServiceError, match="not accepting"):
            service.submit(_stream(1)[0])

    def test_stop_before_start_raises(self):
        with pytest.raises(ServiceError, match="never started"):
            ShardedService(shards=1).stop()


class TestBitIdentity:
    def test_responses_identical_across_shard_counts(self):
        requests = _stream()
        baseline = [
            _essence(response)
            for response in run_requests(
                requests, config=ServiceConfig(), concurrency=8
            )
        ]
        assert all(status == "ok" for status, _, *_ in baseline)
        for shards in (1, 2, 4):
            sharded = [
                _essence(response)
                for response in run_sharded(
                    requests,
                    shards=shards,
                    config=ServiceConfig(),
                    concurrency=8,
                )
            ]
            assert sharded == baseline, f"shards={shards}"

    def test_cache_off_matches_cache_on(self):
        requests = _stream()
        with_cache = [
            _essence(response)
            for response in run_sharded(
                requests, shards=2, config=ServiceConfig()
            )
        ]
        without_cache = [
            _essence(response)
            for response in run_sharded(
                requests, shards=2, config=ServiceConfig(cache=False)
            )
        ]
        assert with_cache == without_cache


class TestQuotaDeterminism:
    def test_quota_exhaustion_is_identical_across_shard_counts(self):
        # One tenant, quota 4, concurrency above it: the router
        # admits in submission order, so exactly the same request ids
        # are rejected no matter how many shards race behind it.  A
        # long tick keeps every admitted request in flight until all
        # submissions have been adjudicated.
        requests = [
            EstimateRequest(
                population=200,
                population_seed=1_000,
                seed=50 + index,
                rounds=4,
                tenant="hot",
                request_id=f"req-{index:03d}",
            )
            for index in range(12)
        ]
        config = ServiceConfig(tenant_quota=4, tick_seconds=0.25)
        outcomes = {}
        for shards in (1, 2, 4):
            responses = run_sharded(
                requests, shards=shards, config=config, concurrency=64
            )
            outcomes[shards] = [
                (response.request_id, response.status)
                for response in responses
            ]
            rejected = [
                response
                for response in responses
                if response.status == "rejected"
            ]
            assert len(rejected) == 8, f"shards={shards}"
            assert all(
                response.retry_after
                == config.retry_after_seconds
                for response in rejected
            )
        assert outcomes[1] == outcomes[2] == outcomes[4]


class TestMergedTelemetry:
    def test_counters_gauges_and_shared_memory_merge_home(self):
        registry = MetricsRegistry()
        requests = _stream()
        responses = run_sharded(
            requests, shards=2, config=ServiceConfig(),
            registry=registry,
        )
        assert all(
            response.status == "ok" for response in responses
        )
        snapshot = registry.snapshot()
        counters = snapshot.counters
        # Each request is answered exactly once somewhere.
        answered = sum(
            value
            for name, value in counters.items()
            if name.startswith("serve.requests.")
            and name != "serve.requests.submitted"
        )
        assert answered == len(requests)
        assert counters["serve.router.requests"] == len(requests)
        routed = sum(
            counters.get(f"serve.shard.{index}.routed", 0)
            for index in range(2)
        )
        assert routed == len(requests)
        # Zero-copy populations: one segment per (size, seed) field,
        # attached by workers, unlinked by the router at stop.
        assert counters["sharedmem.segments"] >= 1
        assert counters["sharedmem.attaches"] >= 1
        assert (
            counters["sharedmem.unlinks"]
            == counters["sharedmem.segments"]
        )
        gauges = snapshot.gauges
        per_shard = sum(
            gauges.get(f"serve.shard.{index}.requests", 0)
            for index in range(2)
        )
        assert per_shard == len(requests)
        # Merged SLO burn rates recomputed from additive totals.
        assert gauges["serve.slo.good_fast"] == len(requests)
        assert gauges["serve.slo.burn_rate_fast"] == 0.0

    def test_end_to_end_latency_is_router_measured(self):
        registry = MetricsRegistry()
        responses = run_sharded(
            _stream(4), shards=2, config=ServiceConfig(),
            registry=registry,
        )
        for response in responses:
            assert response.latency_seconds > 0

    def test_trace_waterfall_crosses_the_hop(self):
        registry = MetricsRegistry()
        run_sharded(
            _stream(6), shards=2, config=ServiceConfig(),
            registry=registry,
        )
        spans = registry.snapshot().spans
        routes = [s for s in spans if s.name == "serve.route"]
        requests = [s for s in spans if s.name == "serve.request"]
        kernels = [s for s in spans if s.name == "kernel"]
        assert routes and requests and kernels
        by_span_id = {s.span_id: s for s in spans}
        for request_span in requests:
            parent = by_span_id.get(request_span.parent_id)
            assert parent is not None
            assert parent.name == "serve.route"
            assert parent.trace_id == request_span.trace_id
            assert parent.attributes["shard"].startswith("shard-")
        for kernel_span in kernels:
            assert kernel_span.attributes["shard"].startswith(
                "shard-"
            )
            assert kernel_span.attributes["worker.id"].startswith(
                "shard-"
            )

    def test_cache_hits_merge_per_shard(self):
        registry = MetricsRegistry()
        requests = _stream() + _stream()  # full replay
        run_sharded(
            requests, shards=2, config=ServiceConfig(),
            registry=registry,
        )
        snapshot = registry.snapshot()
        assert snapshot.counters["serve.cache.hits"] >= len(
            _stream()
        )
        per_shard_hits = sum(
            snapshot.gauges.get(f"serve.shard.{index}.cache_hits", 0)
            for index in range(2)
        )
        assert (
            per_shard_hits == snapshot.counters["serve.cache.hits"]
        )
