"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.tags.population import TagPopulation


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic generator; tests re-seed when they need more."""
    return np.random.default_rng(20110420)  # the paper's submission date


@pytest.fixture
def small_population() -> TagPopulation:
    """A 50-tag population with deterministic IDs."""
    return TagPopulation.sequential(50)


@pytest.fixture
def medium_population() -> TagPopulation:
    """A 2 000-tag population with random IDs (fixed seed)."""
    return TagPopulation.random(2_000, np.random.default_rng(99))
