"""Tests for the Sec. 4.2 analysis constants and round planner."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.accuracy import (
    PHI,
    SIGMA_H,
    confidence_scale,
    estimate_from_depths,
    estimate_std,
    expected_depth,
    expected_height,
    minimum_height,
    rounds_required,
)
from repro.errors import AnalysisError, ConfigurationError


class TestConstants:
    def test_phi_matches_paper(self):
        # "let phi = e^gamma / sqrt 2 = 1.25941..." (Sec. 4.2)
        assert PHI == pytest.approx(1.25941, abs=1e-5)

    def test_sigma_matches_paper(self):
        # sigma(h) = sqrt(pi^2/(6 ln^2 2) + 1/12) = 1.87271... (Eq. 11)
        assert SIGMA_H == pytest.approx(1.87271, abs=1e-5)

    def test_phi_construction(self):
        assert PHI == pytest.approx(
            math.exp(np.euler_gamma) / math.sqrt(2)
        )


class TestConfidenceScale:
    def test_known_quantiles(self):
        # delta = 1% -> two-sided 99% normal quantile 2.5758.
        assert confidence_scale(0.01) == pytest.approx(2.5758, abs=1e-3)
        # delta = 5% -> 1.9600.
        assert confidence_scale(0.05) == pytest.approx(1.9600, abs=1e-3)
        # delta = 31.73% -> exactly 1 sigma.
        assert confidence_scale(0.3173) == pytest.approx(1.0, abs=1e-3)

    def test_monotone_in_delta(self):
        assert confidence_scale(0.01) > confidence_scale(0.05) > \
            confidence_scale(0.20)

    @pytest.mark.parametrize("delta", [0.0, 1.0, -0.5])
    def test_rejects_bad_delta(self, delta):
        with pytest.raises(AnalysisError):
            confidence_scale(delta)


class TestRoundsRequired:
    def test_paper_default_magnitude(self):
        # eps = 5%, delta = 1%: (2.5758 * 1.8727 / log2 1.05)^2 ~ 4696.
        m = rounds_required(0.05, 0.01)
        assert 4600 <= m <= 4800

    def test_independent_of_n(self):
        # Eq. 20 has no n in it — that's the whole point.
        assert rounds_required(0.05, 0.01) == rounds_required(0.05, 0.01)

    def test_monotone_in_epsilon(self):
        assert rounds_required(0.05, 0.01) > rounds_required(0.10, 0.01)

    def test_monotone_in_delta(self):
        assert rounds_required(0.05, 0.01) > rounds_required(0.05, 0.10)

    def test_scales_with_sigma_squared(self):
        base = rounds_required(0.05, 0.01, sigma=1.0)
        doubled = rounds_required(0.05, 0.01, sigma=2.0)
        assert doubled == pytest.approx(4 * base, rel=1e-3)

    def test_at_least_one(self):
        assert rounds_required(0.9, 0.9, sigma=1e-6) == 1

    def test_rejects_bad_inputs(self):
        with pytest.raises(AnalysisError):
            rounds_required(0.0, 0.01)
        with pytest.raises(AnalysisError):
            rounds_required(0.05, 0.01, sigma=0.0)


class TestExpectedDepth:
    def test_matches_log_formula(self):
        assert expected_depth(50_000) == pytest.approx(
            math.log2(PHI * 50_000)
        )

    def test_height_guard(self):
        with pytest.raises(AnalysisError):
            expected_depth(2**40, height=16)

    def test_expected_height_complements(self):
        assert expected_height(1000, 32) == pytest.approx(
            32 - expected_depth(1000)
        )

    def test_rejects_nonpositive_n(self):
        with pytest.raises(AnalysisError):
            expected_depth(0)


class TestEstimator:
    def test_inverts_expected_depth(self):
        # Feeding the exact expected depth back recovers n.
        for n in (100, 10_000, 5_000_000):
            depth = math.log2(PHI * n)
            assert estimate_from_depths([depth]) == pytest.approx(n)

    def test_mean_of_depths_used(self):
        single = estimate_from_depths([10.0])
        averaged = estimate_from_depths([9.0, 11.0])
        # 2^10/phi vs 2^10/phi: the geometric mean equals the midpoint
        # in exponent space.
        assert averaged == pytest.approx(single)

    def test_rejects_empty(self):
        with pytest.raises(AnalysisError):
            estimate_from_depths([])

    def test_estimate_std_scaling(self):
        assert estimate_std(1000, 64) == pytest.approx(
            1000 * math.log(2) * SIGMA_H / 8
        )
        # Quadrupling rounds halves the deviation.
        assert estimate_std(1000, 256) == pytest.approx(
            estimate_std(1000, 64) / 2
        )

    def test_estimate_std_rejects_bad_inputs(self):
        with pytest.raises(AnalysisError):
            estimate_std(0, 4)
        with pytest.raises(AnalysisError):
            estimate_std(10, 0)


class TestMinimumHeight:
    def test_paper_example(self):
        # "H = 32 can accommodate n = 40,000,000 with p >= 0.99"
        assert minimum_height(40_000_000, 0.99) <= 32

    def test_monotone_in_n(self):
        assert minimum_height(10**6) > minimum_height(10**3)

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            minimum_height(0)
        with pytest.raises(ConfigurationError):
            minimum_height(10, white_fraction=1.0)
