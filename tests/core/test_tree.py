"""Tests for the explicit PET tree (ground truth for the protocols)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.path import EstimatingPath
from repro.core.tree import NodeColor, PetTree
from repro.errors import ConfigurationError


def paper_example_tree() -> PetTree:
    """The Fig. 1 example: H = 4, codes 0001, 0110, 1011, 1110."""
    return PetTree(4, [0b0001, 0b0110, 0b1011, 0b1110])


class TestConstruction:
    def test_rejects_excessive_height(self):
        with pytest.raises(ConfigurationError):
            PetTree(30, [])

    def test_rejects_out_of_range_codes(self):
        with pytest.raises(ConfigurationError):
            PetTree(4, [16])
        with pytest.raises(ConfigurationError):
            PetTree(4, [-1])

    def test_duplicates_collapse(self):
        tree = PetTree(4, [3, 3, 3])
        assert len(tree.black_leaves) == 1

    def test_white_fraction(self):
        tree = paper_example_tree()
        assert tree.white_fraction == pytest.approx(12 / 16)
        assert PetTree(4, []).white_fraction == 1.0


class TestPaperExample:
    """Walks through the Fig. 1 narrative step by step."""

    def test_gray_node_is_node_a(self):
        # Path r = 0011: prefix "0" busy (0001, 0110), "00" busy (0001),
        # "001" idle -> gray node at depth 2 (prefix 00), height 2.
        tree = paper_example_tree()
        path = EstimatingPath.from_string("0011")
        assert tree.gray_depth(path) == 2
        assert tree.gray_height(path) == 2

    def test_subtree_blackness(self):
        tree = paper_example_tree()
        assert tree.subtree_is_black(0b0, 1)       # "0" subtree
        assert tree.subtree_is_black(0b00, 2)      # "00" subtree
        assert not tree.subtree_is_black(0b001, 3)  # "001" subtree
        assert tree.subtree_is_black(0b000, 3)      # "000" holds 0001

    def test_node_colors_along_path(self):
        tree = paper_example_tree()
        path = EstimatingPath.from_string("0011")
        colors = tree.colors_along(path)
        # Root (depth 0) and depth 1 are black; depth 2 is the gray
        # node; depth 3 is white.
        assert colors[0] is NodeColor.BLACK
        assert colors[1] is NodeColor.BLACK
        assert colors[2] is NodeColor.GRAY
        assert colors[3] is NodeColor.WHITE


class TestMonotonicity:
    """Sec. 4.4's structural claims, validated exhaustively."""

    def test_colors_monotone_on_random_trees(self):
        rng = np.random.default_rng(10)
        for _ in range(50):
            height = int(rng.integers(2, 9))
            n_codes = int(rng.integers(0, 2**height))
            codes = rng.integers(0, 2**height, size=n_codes)
            tree = PetTree(height, (int(c) for c in codes))
            path = EstimatingPath.random(height, rng)
            colors = tree.colors_along(path)
            pattern = "".join(
                {"black": "b", "gray": "g", "white": "w"}[c.value]
                for c in colors
            )
            # Either all white (empty side) or blacks, at most one gray,
            # then whites; a path ending on a black leaf may be all-b.
            assert "wb" not in pattern
            assert "wg" not in pattern
            assert "gb" not in pattern
            assert pattern.count("g") <= 1

    def test_gray_depth_is_longest_busy_prefix(self):
        rng = np.random.default_rng(11)
        for _ in range(50):
            height = 6
            codes = [int(c) for c in rng.integers(0, 64, size=10)]
            tree = PetTree(height, codes)
            path = EstimatingPath.random(height, rng)
            depth = tree.gray_depth(path)
            assert tree.subtree_is_black(path.prefix(depth), depth)
            if depth < height:
                assert not tree.subtree_is_black(
                    path.prefix(depth + 1), depth + 1
                )


class TestEdgeCases:
    def test_empty_tree_gray_depth_zero(self):
        tree = PetTree(4, [])
        path = EstimatingPath.from_string("0101")
        assert tree.gray_depth(path) == 0

    def test_full_match_gray_depth_h(self):
        tree = PetTree(4, [0b0101])
        path = EstimatingPath.from_string("0101")
        assert tree.gray_depth(path) == 4
        assert tree.gray_height(path) == 0

    def test_path_height_mismatch_rejected(self):
        tree = PetTree(4, [1])
        with pytest.raises(ConfigurationError):
            tree.gray_depth(EstimatingPath.from_string("01"))

    def test_render_marks_leaves(self):
        tree = PetTree(2, [0b01])
        rendering = tree.render(EstimatingPath.from_string("11"))
        assert rendering == ".#.r"
        rendering_on_black = tree.render(EstimatingPath.from_string("01"))
        assert rendering_on_black == ".R.."
