"""Tests for the PetEstimator facade and result types."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AccuracyRequirement, PetConfig
from repro.core.accuracy import PHI
from repro.core.estimator import (
    EstimateResult,
    PetEstimator,
    RoundRecord,
)
from repro.core.path import EstimatingPath
from repro.errors import EstimationError


class FixedDepthDriver:
    """RoundDriver stub returning a constant depth."""

    def __init__(self, depth: int, slots: int = 5):
        self.depth = depth
        self.slots = slots
        self.calls = 0

    def run_round(self, path, round_index):
        self.calls += 1
        return self.depth, self.slots


class TestPetEstimator:
    def test_requires_rounds_or_requirement(self):
        with pytest.raises(EstimationError):
            PetEstimator(config=PetConfig())

    def test_explicit_rounds_win(self):
        estimator = PetEstimator(
            config=PetConfig(rounds=12),
            requirement=AccuracyRequirement(0.05, 0.01),
        )
        assert estimator.planned_rounds == 12

    def test_rounds_derived_from_requirement(self):
        estimator = PetEstimator(
            requirement=AccuracyRequirement(0.05, 0.01)
        )
        assert 4600 <= estimator.planned_rounds <= 4800

    def test_run_executes_planned_rounds(self):
        driver = FixedDepthDriver(depth=10)
        estimator = PetEstimator(
            config=PetConfig(rounds=20),
            rng=np.random.default_rng(0),
        )
        result = estimator.run(driver)
        assert driver.calls == 20
        assert result.num_rounds == 20
        assert result.total_slots == 100

    def test_estimate_formula(self):
        driver = FixedDepthDriver(depth=10)
        estimator = PetEstimator(
            config=PetConfig(rounds=5), rng=np.random.default_rng(0)
        )
        result = estimator.run(driver)
        assert result.n_hat == pytest.approx(2.0**10 / PHI)

    def test_rejects_out_of_range_depth(self):
        driver = FixedDepthDriver(depth=33)
        estimator = PetEstimator(
            config=PetConfig(rounds=1), rng=np.random.default_rng(0)
        )
        with pytest.raises(EstimationError):
            estimator.run(driver)

    def test_paths_are_fresh_each_round(self):
        seen = []

        class PathRecorder:
            def run_round(self, path, round_index):
                seen.append(path.bits)
                return 5, 5

        estimator = PetEstimator(
            config=PetConfig(rounds=50), rng=np.random.default_rng(1)
        )
        estimator.run(PathRecorder())
        assert len(set(seen)) > 45

    def test_draw_path_has_config_height(self):
        estimator = PetEstimator(
            config=PetConfig(tree_height=16, rounds=1),
            rng=np.random.default_rng(2),
        )
        assert estimator.draw_path().height == 16


class TestEstimateResult:
    def _result(self) -> EstimateResult:
        path = EstimatingPath.from_string("0" * 4)
        records = tuple(
            RoundRecord(path=path, gray_depth=d, slots=s)
            for d, s in [(3, 5), (4, 5), (2, 6)]
        )
        return EstimateResult(n_hat=10.0, rounds=records)

    def test_totals(self):
        result = self._result()
        assert result.num_rounds == 3
        assert result.total_slots == 16
        assert result.depths.tolist() == [3.0, 4.0, 2.0]

    def test_accuracy_metric(self):
        result = self._result()
        assert result.accuracy(10) == pytest.approx(1.0)
        with pytest.raises(EstimationError):
            result.accuracy(0)

    def test_within_requirement(self):
        result = self._result()
        requirement = AccuracyRequirement(0.05, 0.01)
        assert result.within(requirement, 10)
        assert not result.within(requirement, 100)
