"""Tests for estimating paths."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.path import EstimatingPath
from repro.errors import ConfigurationError


class TestConstruction:
    def test_from_string_round_trips(self):
        path = EstimatingPath.from_string("000011")
        assert str(path) == "000011"
        assert path.height == 6
        assert path.bits == 0b000011

    def test_rejects_bad_strings(self):
        with pytest.raises(ConfigurationError):
            EstimatingPath.from_string("")
        with pytest.raises(ConfigurationError):
            EstimatingPath.from_string("01x0")

    def test_rejects_out_of_range_bits(self):
        with pytest.raises(ConfigurationError):
            EstimatingPath(bits=4, height=2)
        with pytest.raises(ConfigurationError):
            EstimatingPath(bits=-1, height=2)

    def test_rejects_bad_heights(self):
        with pytest.raises(ConfigurationError):
            EstimatingPath(bits=0, height=0)
        with pytest.raises(ConfigurationError):
            EstimatingPath(bits=0, height=65)

    def test_random_paths_within_range(self):
        rng = np.random.default_rng(1)
        for height in (1, 7, 32, 64):
            path = EstimatingPath.random(height, rng)
            assert 0 <= path.bits < (1 << height)
            assert path.height == height

    def test_random_paths_vary(self):
        rng = np.random.default_rng(2)
        paths = {EstimatingPath.random(32, rng).bits for _ in range(50)}
        assert len(paths) > 40

    def test_random_top_bit_balanced(self):
        rng = np.random.default_rng(3)
        tops = [
            EstimatingPath.random(32, rng).prefix(1) for _ in range(2000)
        ]
        ones = sum(tops)
        assert 850 < ones < 1150


class TestPrefixOperations:
    def test_prefix_values(self):
        path = EstimatingPath.from_string("1010")
        assert path.prefix(0) == 0
        assert path.prefix(1) == 0b1
        assert path.prefix(2) == 0b10
        assert path.prefix(4) == 0b1010

    def test_prefix_mask(self):
        path = EstimatingPath.from_string("1010")
        assert path.prefix_mask(0) == 0b0000
        assert path.prefix_mask(1) == 0b1000
        assert path.prefix_mask(3) == 0b1110
        assert path.prefix_mask(4) == 0b1111

    def test_prefix_rejects_out_of_range(self):
        path = EstimatingPath.from_string("1010")
        with pytest.raises(ConfigurationError):
            path.prefix(5)
        with pytest.raises(ConfigurationError):
            path.prefix(-1)

    def test_matches_prefix_is_algorithm2_test(self):
        # Algorithm 2 line 5: prc AND mask == r AND mask.
        path = EstimatingPath.from_string("0011")
        assert path.matches_prefix(0b0001, 2)  # shares "00"
        assert not path.matches_prefix(0b0101, 2)
        assert path.matches_prefix(0b0011, 4)
        # Zero-length prefix matches everything (the root).
        assert path.matches_prefix(0b1111, 0)

    def test_prefix_string_rendering(self):
        path = EstimatingPath.from_string("0011")
        assert path.prefix_string(0) == "****"
        assert path.prefix_string(2) == "00**"
        assert path.prefix_string(4) == "0011"


class TestCommonPrefix:
    def test_full_match(self):
        path = EstimatingPath.from_string("0110")
        assert path.common_prefix_length(0b0110) == 4

    def test_partial_matches(self):
        path = EstimatingPath.from_string("0110")
        assert path.common_prefix_length(0b0111) == 3
        assert path.common_prefix_length(0b0100) == 2
        assert path.common_prefix_length(0b0010) == 1
        assert path.common_prefix_length(0b1110) == 0

    def test_consistent_with_matches_prefix(self):
        rng = np.random.default_rng(4)
        path = EstimatingPath.random(16, rng)
        for _ in range(100):
            code = int(rng.integers(0, 1 << 16))
            length = path.common_prefix_length(code)
            assert path.matches_prefix(code, length)
            if length < 16:
                assert not path.matches_prefix(code, length + 1)


class TestEquality:
    def test_equal_paths(self):
        a = EstimatingPath.from_string("0101")
        b = EstimatingPath(0b0101, 4)
        assert a == b
        assert hash(a) == hash(b)

    def test_height_matters(self):
        a = EstimatingPath(0b01, 2)
        b = EstimatingPath(0b01, 3)
        assert a != b

    def test_not_equal_to_other_types(self):
        assert EstimatingPath(0, 1) != "0"
