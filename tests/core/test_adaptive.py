"""Tests for sequential (early-stopping) PET estimation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import AccuracyRequirement, PetConfig
from repro.core.adaptive import AdaptivePetEstimator
from repro.errors import EstimationError
from repro.sim.sampled import SampledSimulator


def make_driver(n: int, seed: int) -> SampledSimulator:
    return SampledSimulator(
        n, config=PetConfig(), rng=np.random.default_rng(seed)
    )


class TestValidation:
    def test_rejects_bad_min_rounds(self):
        with pytest.raises(EstimationError):
            AdaptivePetEstimator(
                AccuracyRequirement(0.1, 0.1), min_rounds=1
            )

    def test_rejects_deflation(self):
        with pytest.raises(EstimationError):
            AdaptivePetEstimator(
                AccuracyRequirement(0.1, 0.1), peeking_inflation=0.9
            )


class TestSequentialRun:
    def test_produces_reasonable_estimate(self):
        requirement = AccuracyRequirement(0.15, 0.05)
        estimator = AdaptivePetEstimator(
            requirement, rng=np.random.default_rng(0)
        )
        result = estimator.run(make_driver(10_000, seed=1))
        assert 0.8 < result.n_hat / 10_000 < 1.2
        assert result.rounds_used >= estimator.min_rounds
        assert result.total_slots == result.rounds_used * 5

    def test_rounds_comparable_to_fixed_plan(self):
        # The sample std concentrates near sigma(h): the sequential
        # rule should use rounds within ~(inflation^2 + slack) of the
        # fixed plan — not 10x more, not 10x fewer.
        requirement = AccuracyRequirement(0.20, 0.10)
        estimator = AdaptivePetEstimator(
            requirement, rng=np.random.default_rng(2)
        )
        result = estimator.run(make_driver(50_000, seed=3))
        assert result.rounds_planned * 0.3 <= result.rounds_used
        assert result.rounds_used <= result.rounds_planned * 2

    def test_stopped_early_flag_consistent(self):
        requirement = AccuracyRequirement(0.20, 0.10)
        estimator = AdaptivePetEstimator(
            requirement, rng=np.random.default_rng(4)
        )
        result = estimator.run(make_driver(5_000, seed=5))
        assert result.stopped_early == (
            result.rounds_used < result.rounds_planned
        )

    def test_empirical_coverage(self):
        # The whole point: the sequential design still meets the
        # contract.  Loose contract keeps the test fast.
        requirement = AccuracyRequirement(0.25, 0.15)
        hits = 0
        trials = 60
        n = 20_000
        for trial in range(trials):
            estimator = AdaptivePetEstimator(
                requirement,
                min_rounds=32,
                rng=np.random.default_rng((7, trial)),
            )
            result = estimator.run(make_driver(n, seed=1000 + trial))
            if abs(result.n_hat - n) <= requirement.epsilon * n:
                hits += 1
        coverage = hits / trials
        assert coverage >= 1.0 - requirement.delta - 0.07
