"""Tests for the Sec. 4.6.2 one-bit-feedback protocol."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.feedback import (
    FeedbackPetReader,
    FeedbackPetTag,
    FeedbackQuery,
    build_feedback_channel,
    next_mid,
    update_bounds,
)
from repro.core.messages import StartRound
from repro.core.path import EstimatingPath
from repro.core.tree import PetTree
from repro.errors import ProtocolError

HEIGHT = 16


class TestBoundsArithmetic:
    def test_update_on_busy_raises_low(self):
        assert update_bounds(1, 16, 8, was_busy=True) == (8, 16)

    def test_update_on_idle_lowers_high(self):
        assert update_bounds(1, 16, 8, was_busy=False) == (1, 7)

    def test_next_mid_is_ceil(self):
        assert next_mid(1, 32) == 17
        assert next_mid(1, 2) == 2
        assert next_mid(5, 5) == 5


class TestFeedbackTag:
    def test_rejects_out_of_range_code(self):
        with pytest.raises(ProtocolError):
            FeedbackPetTag(1, 4, preloaded_code=16)

    def test_query_before_round_rejected(self):
        tag = FeedbackPetTag(1, 4, preloaded_code=3)
        with pytest.raises(ProtocolError):
            tag.hear(FeedbackQuery(previous_busy=None))

    def test_feedback_before_query_rejected(self):
        tag = FeedbackPetTag(1, 4, preloaded_code=3)
        tag.hear(StartRound(path=EstimatingPath(3, 4), seed=None))
        with pytest.raises(ProtocolError):
            tag.hear(FeedbackQuery(previous_busy=True))

    def test_round_start_resets_bounds(self):
        tag = FeedbackPetTag(1, 8, preloaded_code=7)
        tag.hear(StartRound(path=EstimatingPath(7, 8), seed=None))
        tag.hear(FeedbackQuery(previous_busy=None))
        tag.hear(FeedbackQuery(previous_busy=True))
        assert tag.bounds != (1, 8)
        tag.hear(StartRound(path=EstimatingPath(7, 8), seed=None))
        assert tag.bounds == (1, 8)

    def test_payload_is_one_bit(self):
        assert FeedbackQuery(previous_busy=True).payload_bits == 1


class TestProtocolEquivalence:
    """The 1-bit protocol finds the same gray node as Algorithm 3."""

    @pytest.mark.parametrize("trial", range(12))
    def test_matches_tree_ground_truth(self, trial):
        rng = np.random.default_rng(trial)
        codes = [
            int(c) for c in rng.integers(0, 1 << HEIGHT, size=20)
        ]
        channel = build_feedback_channel(codes, HEIGHT, rng=rng)
        reader = FeedbackPetReader(channel, height=HEIGHT)
        tree = PetTree(HEIGHT, codes)
        for _ in range(10):
            path = EstimatingPath.random(HEIGHT, rng)
            depth, slots = reader.run_round(path)
            assert depth == tree.gray_depth(path)

    def test_slot_cost_matches_binary_search(self):
        from repro.core.search import BinaryGraySearch
        from repro.sim.vectorized import replay_slots

        rng = np.random.default_rng(99)
        codes = [
            int(c) for c in rng.integers(0, 1 << HEIGHT, size=50)
        ]
        channel = build_feedback_channel(codes, HEIGHT, rng=rng)
        reader = FeedbackPetReader(channel, height=HEIGHT)
        tree = PetTree(HEIGHT, codes)
        strategy = BinaryGraySearch()
        for _ in range(15):
            path = EstimatingPath.random(HEIGHT, rng)
            depth, slots = reader.run_round(path)
            expected_slots = replay_slots(
                strategy, tree.gray_depth(path), HEIGHT
            )
            assert slots == expected_slots

    def test_empty_population_depth_zero(self):
        channel = build_feedback_channel([], 8)
        reader = FeedbackPetReader(channel, height=8)
        path = EstimatingPath.from_string("10110100")
        depth, _ = reader.run_round(path)
        assert depth == 0

    def test_full_match_depth_h(self):
        channel = build_feedback_channel([0b10110100], 8)
        reader = FeedbackPetReader(channel, height=8)
        path = EstimatingPath.from_string("10110100")
        depth, _ = reader.run_round(path)
        assert depth == 8

    def test_command_payload_total_is_slots_bits(self):
        rng = np.random.default_rng(7)
        codes = [int(c) for c in rng.integers(0, 256, size=10)]
        channel = build_feedback_channel(codes, 8, rng=rng)
        reader = FeedbackPetReader(channel, height=8)
        path = EstimatingPath.random(8, rng)
        _, slots = reader.run_round(path)
        # Trace: 1 start broadcast (8 bits) + `slots` 1-bit commands.
        assert channel.trace.total_payload_bits == 8 + slots

    def test_path_height_mismatch_rejected(self):
        channel = build_feedback_channel([1], 8)
        reader = FeedbackPetReader(channel, height=8)
        with pytest.raises(ProtocolError):
            reader.run_round(EstimatingPath.from_string("01"))
