"""Tests for the gray-node search strategies."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.search import (
    BinaryGraySearch,
    LinearGraySearch,
    replay_slots,
    slots_lookup_table,
    strategy_for,
)


class RecordingOracle:
    """Answers from a known depth, recording every probe."""

    def __init__(self, depth: int):
        self.depth = depth
        self.probes: list[int] = []

    def is_busy(self, prefix_length: int) -> bool:
        self.probes.append(prefix_length)
        return prefix_length <= self.depth


@pytest.mark.parametrize(
    "strategy", [LinearGraySearch(), BinaryGraySearch()],
    ids=["linear", "binary"],
)
class TestCorrectness:
    def test_finds_every_depth_h32(self, strategy):
        for depth in range(33):
            oracle = RecordingOracle(depth)
            assert strategy.find_gray_depth(oracle, 32) == depth

    def test_finds_every_depth_small_heights(self, strategy):
        for height in range(1, 9):
            for depth in range(height + 1):
                oracle = RecordingOracle(depth)
                assert strategy.find_gray_depth(oracle, height) == depth

    def test_slots_within_worst_case(self, strategy):
        for height in (1, 2, 5, 16, 32, 64):
            for depth in range(height + 1):
                oracle = RecordingOracle(depth)
                strategy.find_gray_depth(oracle, height)
                assert len(oracle.probes) <= strategy.worst_case_slots(
                    height
                )

    def test_probes_are_valid_prefix_lengths(self, strategy):
        oracle = RecordingOracle(17)
        strategy.find_gray_depth(oracle, 32)
        assert all(1 <= p <= 32 for p in oracle.probes)


class TestLinearCost:
    def test_costs_depth_plus_one(self):
        strategy = LinearGraySearch()
        for depth in range(32):
            oracle = RecordingOracle(depth)
            strategy.find_gray_depth(oracle, 32)
            assert len(oracle.probes) == depth + 1

    def test_full_depth_costs_h(self):
        oracle = RecordingOracle(32)
        LinearGraySearch().find_gray_depth(oracle, 32)
        assert len(oracle.probes) == 32

    def test_probes_ascend(self):
        oracle = RecordingOracle(9)
        LinearGraySearch().find_gray_depth(oracle, 32)
        assert oracle.probes == list(range(1, 11))


class TestBinaryCost:
    def test_exactly_five_probes_for_typical_depths_h32(self):
        # Table 3: "PET only takes five time slots to complete each
        # round" at H = 32 — exact for every depth >= 2.
        strategy = BinaryGraySearch()
        for depth in range(2, 33):
            oracle = RecordingOracle(depth)
            strategy.find_gray_depth(oracle, 32)
            assert len(oracle.probes) == 5, f"depth {depth}"

    def test_depth_zero_and_one_cost_one_extra(self):
        strategy = BinaryGraySearch()
        for depth in (0, 1):
            oracle = RecordingOracle(depth)
            assert strategy.find_gray_depth(oracle, 32) == depth
            assert len(oracle.probes) == 6

    def test_log_log_scaling(self):
        # Doubling H adds one probe: O(log H) = O(log log n_max).
        strategy = BinaryGraySearch()
        costs = {}
        for height in (8, 16, 32, 64):
            oracle = RecordingOracle(height // 2)
            strategy.find_gray_depth(oracle, height)
            costs[height] = len(oracle.probes)
        assert costs[16] == costs[8] + 1
        assert costs[32] == costs[16] + 1
        assert costs[64] == costs[32] + 1

    def test_matches_linear_on_random_depths(self):
        rng = np.random.default_rng(5)
        linear, binary = LinearGraySearch(), BinaryGraySearch()
        for _ in range(200):
            height = int(rng.integers(1, 65))
            depth = int(rng.integers(0, height + 1))
            d_lin = linear.find_gray_depth(RecordingOracle(depth), height)
            d_bin = binary.find_gray_depth(RecordingOracle(depth), height)
            assert d_lin == d_bin == depth


class TestStrategyFor:
    def test_selects_by_flag(self):
        assert isinstance(strategy_for(True), BinaryGraySearch)
        assert isinstance(strategy_for(False), LinearGraySearch)


class TestSlotsLookupTable:
    """The depth -> slots LUT exactly mirrors oracle replay, cached."""

    @pytest.mark.parametrize(
        "strategy",
        [LinearGraySearch(), BinaryGraySearch()],
        ids=["linear", "binary"],
    )
    def test_exhaustive_up_to_height_32(self, strategy):
        for height in range(1, 33):
            table = slots_lookup_table(strategy, height)
            assert table.shape == (height + 1,)
            for depth in range(height + 1):
                assert table[depth] == replay_slots(
                    strategy, depth, height
                ), (type(strategy).__name__, height, depth)

    def test_computed_once_per_strategy_and_height(self):
        first = slots_lookup_table(BinaryGraySearch(), 32)
        second = slots_lookup_table(BinaryGraySearch(), 32)
        assert first is second  # cache hit: same array object
        other_height = slots_lookup_table(BinaryGraySearch(), 16)
        assert other_height is not first
        other_strategy = slots_lookup_table(LinearGraySearch(), 32)
        assert other_strategy is not first

    def test_table_is_read_only(self):
        table = slots_lookup_table(LinearGraySearch(), 8)
        with pytest.raises(ValueError):
            table[0] = 99

    def test_bounded_by_worst_case(self):
        for strategy in (LinearGraySearch(), BinaryGraySearch()):
            for height in (1, 2, 7, 16, 32):
                table = slots_lookup_table(strategy, height)
                assert table.max() <= strategy.worst_case_slots(height)
                assert table.min() >= 1
