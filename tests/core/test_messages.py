"""Tests for the PET command vocabulary."""

from __future__ import annotations

import pytest

from repro.core.messages import PrefixQuery, StartRound
from repro.core.path import EstimatingPath
from repro.errors import ConfigurationError


class TestStartRound:
    def test_payload_with_seed(self):
        path = EstimatingPath.from_string("0" * 32)
        command = StartRound(path=path, seed=123)
        assert command.payload_bits == 32 + 32

    def test_payload_without_seed(self):
        # Passive operation: only the path is broadcast (Sec. 4.5).
        path = EstimatingPath.from_string("0" * 32)
        command = StartRound(path=path, seed=None)
        assert command.payload_bits == 32


class TestPrefixQuery:
    def test_mask_encoding_costs_height_bits(self):
        query = PrefixQuery(length=5, encoding="mask", height=32)
        assert query.payload_bits == 32

    def test_mid_encoding_costs_log_height_bits(self):
        # Sec. 4.6.2: "a 32-bit mask actually carries only log2 32 =
        # 5-bit information" (6 bits here since length spans 0..32).
        query = PrefixQuery(length=5, encoding="mid", height=32)
        assert query.payload_bits == 6

    def test_feedback_encoding_costs_one_bit(self):
        query = PrefixQuery(length=5, encoding="feedback", height=32)
        assert query.payload_bits == 1

    def test_encoding_order(self):
        mask = PrefixQuery(length=3, encoding="mask").payload_bits
        mid = PrefixQuery(length=3, encoding="mid").payload_bits
        feedback = PrefixQuery(length=3, encoding="feedback").payload_bits
        assert feedback < mid < mask

    def test_rejects_unknown_encoding(self):
        with pytest.raises(ConfigurationError):
            PrefixQuery(length=1, encoding="morse")

    def test_rejects_out_of_range_length(self):
        with pytest.raises(ConfigurationError):
            PrefixQuery(length=33, height=32)
        with pytest.raises(ConfigurationError):
            PrefixQuery(length=-1, height=32)
