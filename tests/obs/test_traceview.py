"""Tests for the terminal trace-waterfall renderer and its CLI."""

from __future__ import annotations

import json

import pytest

from repro.obs import MetricsRegistry, MetricsServer, write_span_trace
from repro.obs.tracectx import TraceContext, use_trace_context
from repro.obs.traceview import (
    available_traces,
    load_trace_file,
    main,
    render_waterfall,
)

TRACE = "ab" * 16


def _span(name, start, seconds, span_id, parent=None, **attributes):
    return {
        "kind": "span",
        "name": name,
        "path": name,
        "start": start,
        "seconds": seconds,
        "trace_id": TRACE,
        "span_id": span_id,
        "parent_id": parent,
        "attributes": attributes,
    }


def _request_spans():
    return [
        _span(
            "serve.request", 0.0, 0.010, "a" * 16,
            status="ok", rung="fused",
        ),
        _span("queue.wait", 0.001, 0.002, "b" * 16, parent="a" * 16),
        _span(
            "kernel", 0.003, 0.006, "c" * 16, parent="a" * 16,
            backend="numpy",
        ),
    ]


class TestLoadTraceFile:
    def test_keeps_only_span_records(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        lines = [
            json.dumps(_span("kernel", 0.0, 0.1, "a" * 16)),
            json.dumps({"kind": "metrics", "counters": {}}),
            "not json at all",
            "",
        ]
        path.write_text("\n".join(lines) + "\n")
        spans = load_trace_file(str(path))
        assert len(spans) == 1
        assert spans[0]["name"] == "kernel"

    def test_round_trips_write_span_trace(self, tmp_path):
        registry = MetricsRegistry()
        with use_trace_context(TraceContext.root()):
            with registry.span("outer"):
                with registry.span("inner"):
                    pass
        path = tmp_path / "trace.jsonl"
        written = write_span_trace(str(path), registry)
        spans = load_trace_file(str(path))
        assert written == len(spans) == 2
        assert {span["path"] for span in spans} == {
            "outer",
            "outer.inner",
        }


class TestAvailableTraces:
    def test_sorted_by_span_count(self):
        spans = [
            {"trace_id": "big", "name": "x"},
            {"trace_id": "big", "name": "y"},
            {"trace_id": "small", "name": "z"},
            {"name": "untraced"},
        ]
        assert available_traces(spans) == [("big", 2), ("small", 1)]


class TestRenderWaterfall:
    def test_empty_input(self):
        assert render_waterfall([]) == "(no spans)"

    def test_header_and_one_line_per_span(self):
        text = render_waterfall(_request_spans())
        lines = text.splitlines()
        assert lines[0].startswith(f"trace {TRACE} · 3 spans")
        assert len(lines) == 4

    def test_children_indent_under_parent(self):
        lines = render_waterfall(_request_spans()).splitlines()
        assert lines[1].startswith("serve.request")
        assert lines[2].startswith("  queue.wait")
        assert lines[3].startswith("  kernel")

    def test_attributes_surface_inline(self):
        text = render_waterfall(_request_spans())
        assert "status=ok rung=fused" in text
        assert "backend=numpy" in text

    def test_orphan_parent_treated_as_root(self):
        spans = [
            _span("lonely", 0.0, 0.1, "a" * 16, parent="9" * 16)
        ]
        lines = render_waterfall(spans).splitlines()
        assert lines[1].startswith("lonely")

    def test_bars_stay_within_width(self):
        for width in (60, 100, 160):
            for line in render_waterfall(
                _request_spans(), width=width
            ).splitlines()[1:]:
                bar = line.split("ms")[0]
                assert "|" in bar


class TestMainFromFile:
    @pytest.fixture()
    def trace_file(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        with open(path, "w", encoding="utf-8") as handle:
            for span in _request_spans():
                handle.write(json.dumps(span) + "\n")
        return str(path)

    def test_render_default_picks_largest_trace(
        self, trace_file, capsys
    ):
        assert main(["--trace-file", trace_file]) == 0
        out = capsys.readouterr().out
        assert f"trace {TRACE}" in out
        assert "serve.request" in out

    def test_render_explicit_trace_id(self, trace_file, capsys):
        assert main([TRACE, "--trace-file", trace_file]) == 0
        assert "3 spans" in capsys.readouterr().out

    def test_list_mode(self, trace_file, capsys):
        assert main(["--trace-file", trace_file, "--list"]) == 0
        assert f"{TRACE}  3 spans" in capsys.readouterr().out

    def test_unknown_trace_id_fails(self, trace_file, capsys):
        assert main(["f" * 32, "--trace-file", trace_file]) == 1
        assert "not found" in capsys.readouterr().err

    def test_empty_file_fails(self, tmp_path, capsys):
        empty = tmp_path / "empty.jsonl"
        empty.write_text("")
        assert main(["--trace-file", str(empty)]) == 1
        assert "no traced spans" in capsys.readouterr().err

    def test_source_is_required(self):
        with pytest.raises(SystemExit):
            main([TRACE])


class TestMainFromUrl:
    def test_renders_live_trace(self, capsys):
        registry = MetricsRegistry()
        ctx = TraceContext.root()
        with use_trace_context(ctx):
            with registry.span("serve.request", status="ok"):
                pass
        with MetricsServer(registry, port=0) as server:
            code = main([ctx.trace_id, "--url", server.url])
        assert code == 0
        assert "serve.request" in capsys.readouterr().out

    def test_missing_trace_id_rejected(self):
        with pytest.raises(SystemExit):
            main(["--url", "http://127.0.0.1:1"])

    def test_unknown_trace_fails_cleanly(self, capsys):
        registry = MetricsRegistry()
        with MetricsServer(registry, port=0) as server:
            code = main(["0" * 32, "--url", server.url])
        assert code == 1
        assert "failed to fetch" in capsys.readouterr().err
