"""Tests for MetricsRegistry, spans, events, and the active switch."""

from __future__ import annotations

import pytest

from repro.obs import (
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.registry import NULL_REGISTRY, NullRegistry


class TestMetricLookup:
    def test_same_name_returns_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_kinds_are_separate_namespaces(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.gauge("x").set(2)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["x"] == 1
        assert snapshot["gauges"]["x"] == 2.0

    def test_snapshot_is_sorted_and_plain(self):
        registry = MetricsRegistry()
        registry.counter("zebra").inc()
        registry.counter("aard").inc(2)
        registry.histogram("h").observe(3.0)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["aard", "zebra"]
        stats = snapshot["histograms"]["h"]
        assert stats["count"] == 1
        assert stats["mean"] == 3.0
        assert stats["total"] == 3.0


class TestSpans:
    def test_nested_spans_build_dotted_paths(self):
        registry = MetricsRegistry()
        with registry.span("experiment"):
            with registry.span("cell", n=100):
                with registry.span("round"):
                    pass
        paths = [record.path for record in registry.trace]
        assert paths == [
            "experiment.cell.round",
            "experiment.cell",
            "experiment",
        ]  # completion order: innermost first

    def test_span_records_attributes_and_timing_histogram(self):
        registry = MetricsRegistry()
        with registry.span("cell", tier="batched", n=10):
            pass
        record = registry.trace[0]
        assert record.name == "cell"
        assert record.attributes == {"tier": "batched", "n": 10}
        assert record.seconds >= 0.0
        stats = registry.snapshot()["histograms"]["span.cell.seconds"]
        assert stats["count"] == 1

    def test_trace_is_bounded_and_drops_are_counted(self):
        registry = MetricsRegistry(max_trace=2)
        for _ in range(5):
            with registry.span("s"):
                pass
        assert len(registry.trace) == 2
        assert registry.snapshot()["counters"]["obs.spans.dropped"] == 3
        # The timing histogram still sees every span.
        assert (
            registry.snapshot()["histograms"]["span.s.seconds"]["count"]
            == 5
        )

    def test_span_stack_unwinds_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.span("outer"):
                raise RuntimeError("boom")
        with registry.span("next"):
            pass
        assert registry.trace[-1].path == "next"

    def test_untraced_spans_carry_no_ids(self):
        registry = MetricsRegistry()
        with registry.span("cell"):
            pass
        record = registry.trace[0]
        assert record.trace_id is None
        assert record.span_id is None
        assert record.parent_id is None

    def test_spans_under_trace_context_build_id_tree(self):
        from repro.obs import TraceContext, use_trace_context

        registry = MetricsRegistry()
        ctx = TraceContext.root()
        with use_trace_context(ctx):
            with registry.span("outer"):
                with registry.span("inner"):
                    pass
        inner, outer = registry.trace
        assert inner.trace_id == outer.trace_id == ctx.trace_id
        assert outer.parent_id == ctx.span_id
        assert inner.parent_id == outer.span_id
        assert inner.span_id != outer.span_id


class TestRecordSpan:
    def test_externally_timed_span_reaches_trace_and_histogram(self):
        registry = MetricsRegistry()
        record = registry.record_span(
            "queue.wait", start=10.0, seconds=0.25, tenant="t0"
        )
        assert registry.trace == [record]
        assert record.name == record.path == "queue.wait"
        assert record.start == 10.0
        assert record.seconds == 0.25
        assert record.attributes == {"tenant": "t0"}
        stats = registry.snapshot()["histograms"][
            "span.queue.wait.seconds"
        ]
        assert stats["count"] == 1
        assert stats["total"] == 0.25

    def test_explicit_path_overrides_name(self):
        registry = MetricsRegistry()
        record = registry.record_span(
            "kernel", start=0.0, seconds=0.1, path="serve.kernel"
        )
        assert record.name == "kernel"
        assert record.path == "serve.kernel"
        assert (
            "span.serve.kernel.seconds"
            in registry.snapshot()["histograms"]
        )

    def test_trace_identity_stamped_from_context_argument(self):
        from repro.obs import TraceContext

        registry = MetricsRegistry()
        ctx = TraceContext.root().child()
        record = registry.record_span(
            "respond", start=0.0, seconds=0.01, trace=ctx
        )
        assert record.trace_id == ctx.trace_id
        assert record.span_id == ctx.span_id
        assert record.parent_id == ctx.parent_id

    def test_traced_duration_becomes_bucket_exemplar(self):
        from repro.obs import TraceContext

        registry = MetricsRegistry()
        ctx = TraceContext.root()
        registry.record_span(
            "kernel", start=0.0, seconds=0.125, trace=ctx
        )
        histogram = registry.histogram("span.kernel.seconds")
        assert histogram.exemplars is not None
        assert {
            exemplar[0] for exemplar in histogram.exemplars.values()
        } == {ctx.trace_id}

    def test_respects_trace_cap(self):
        registry = MetricsRegistry(max_trace=1)
        registry.record_span("a", start=0.0, seconds=0.1)
        registry.record_span("b", start=0.0, seconds=0.1)
        assert len(registry.trace) == 1
        assert (
            registry.snapshot()["counters"]["obs.spans.dropped"] == 1
        )

    def test_null_registry_records_nothing(self):
        assert (
            NULL_REGISTRY.record_span("a", start=0.0, seconds=0.1)
            is None
        )
        assert NULL_REGISTRY.trace == []


class TestEvents:
    def test_events_record_fields_in_order(self):
        registry = MetricsRegistry()
        registry.event("cell", n=100, n_hat=101.5)
        assert registry.events == [
            {"name": "cell", "n": 100, "n_hat": 101.5}
        ]

    def test_events_are_bounded_and_drops_are_counted(self):
        registry = MetricsRegistry(max_trace=3)
        for index in range(5):
            registry.event("e", index=index)
        assert len(registry.events) == 3
        assert registry.snapshot()["counters"]["obs.events.dropped"] == 2


class TestActiveRegistry:
    def test_default_is_the_null_registry(self):
        assert get_registry() is NULL_REGISTRY

    def test_use_registry_scopes_and_restores(self):
        registry = MetricsRegistry()
        with use_registry(registry) as active:
            assert active is registry
            assert get_registry() is registry
        assert get_registry() is NULL_REGISTRY

    def test_use_registry_restores_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            with use_registry(registry):
                raise ValueError
        assert get_registry() is NULL_REGISTRY

    def test_set_registry_returns_previous(self):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            assert previous is NULL_REGISTRY
            assert get_registry() is registry
        finally:
            set_registry(previous)

    def test_truthiness_gates_optional_work(self):
        assert MetricsRegistry()
        assert not NullRegistry()
        assert not NULL_REGISTRY


class TestDeltaSnapshotter:
    """Delta streaming must merge to exactly the full-snapshot state."""

    def _populate(self, registry):
        registry.counter("c").inc(2)
        registry.gauge("g").set(1.5)
        registry.histogram("h").observe(0.25)
        registry.event("e", phase="one")
        registry.record_span("s", start=0.0, seconds=0.1)

    def test_idle_snapshotter_yields_none(self):
        from repro.obs import DeltaSnapshotter

        registry = MetricsRegistry()
        snapshotter = DeltaSnapshotter(registry)
        assert snapshotter.delta() is None
        self._populate(registry)
        assert snapshotter.delta() is not None
        # Nothing moved since the last delta: nothing to ship.
        assert snapshotter.delta() is None

    def test_delta_sequence_merges_like_one_full_snapshot(self):
        from repro.obs import DeltaSnapshotter

        source = MetricsRegistry()
        snapshotter = DeltaSnapshotter(source, worker_id="shard-7")
        streamed = MetricsRegistry()

        self._populate(source)
        streamed.merge(snapshotter.delta())
        source.counter("c").inc(3)
        source.counter("c2").inc()
        source.gauge("g").set(0.5)
        source.histogram("h").observe(4.0)
        source.histogram("h").observe(0.01)
        source.event("e", phase="two")
        source.record_span("s2", start=0.2, seconds=0.05)
        streamed.merge(snapshotter.delta())

        direct = MetricsRegistry()
        direct.merge(source.snapshot(worker_id="shard-7"))

        got, want = streamed.snapshot(), direct.snapshot()
        assert got["counters"] == want["counters"]
        assert got["gauges"] == want["gauges"]
        assert got["histograms"] == want["histograms"]
        assert streamed.trace == direct.trace
        assert streamed.events == direct.events

    def test_deltas_carry_only_increments(self):
        from repro.obs import DeltaSnapshotter

        registry = MetricsRegistry()
        snapshotter = DeltaSnapshotter(registry)
        registry.counter("c").inc(10)
        registry.histogram("h").observe(1.0)
        snapshotter.delta()
        registry.counter("c").inc(1)
        registry.histogram("h").observe(3.0)
        delta = snapshotter.delta()
        assert delta.counters == {"c": 1.0}
        stats = delta.histograms["h"]
        assert stats["count"] == 1
        assert stats["total"] == 3.0
        assert sum(stats["buckets"]) == 1

    def test_worker_id_tags_spans_and_events(self):
        from repro.obs import DeltaSnapshotter

        registry = MetricsRegistry()
        snapshotter = DeltaSnapshotter(registry, worker_id="shard-3")
        registry.record_span("s", start=0.0, seconds=0.1)
        registry.event("e", x=1)
        delta = snapshotter.delta()
        assert delta.spans[0].attributes["worker.id"] == "shard-3"
        assert delta.events[0]["worker.id"] == "shard-3"
        # The source registry's own records stay untagged.
        assert "worker.id" not in registry.trace[0].attributes
        assert "worker.id" not in registry.events[0]
