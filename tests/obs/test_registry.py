"""Tests for MetricsRegistry, spans, events, and the active switch."""

from __future__ import annotations

import pytest

from repro.obs import (
    MetricsRegistry,
    get_registry,
    set_registry,
    use_registry,
)
from repro.obs.registry import NULL_REGISTRY, NullRegistry


class TestMetricLookup:
    def test_same_name_returns_same_metric(self):
        registry = MetricsRegistry()
        assert registry.counter("a") is registry.counter("a")
        assert registry.gauge("b") is registry.gauge("b")
        assert registry.histogram("c") is registry.histogram("c")

    def test_kinds_are_separate_namespaces(self):
        registry = MetricsRegistry()
        registry.counter("x").inc()
        registry.gauge("x").set(2)
        snapshot = registry.snapshot()
        assert snapshot["counters"]["x"] == 1
        assert snapshot["gauges"]["x"] == 2.0

    def test_snapshot_is_sorted_and_plain(self):
        registry = MetricsRegistry()
        registry.counter("zebra").inc()
        registry.counter("aard").inc(2)
        registry.histogram("h").observe(3.0)
        snapshot = registry.snapshot()
        assert list(snapshot["counters"]) == ["aard", "zebra"]
        stats = snapshot["histograms"]["h"]
        assert stats["count"] == 1
        assert stats["mean"] == 3.0
        assert stats["total"] == 3.0


class TestSpans:
    def test_nested_spans_build_dotted_paths(self):
        registry = MetricsRegistry()
        with registry.span("experiment"):
            with registry.span("cell", n=100):
                with registry.span("round"):
                    pass
        paths = [record.path for record in registry.trace]
        assert paths == [
            "experiment.cell.round",
            "experiment.cell",
            "experiment",
        ]  # completion order: innermost first

    def test_span_records_attributes_and_timing_histogram(self):
        registry = MetricsRegistry()
        with registry.span("cell", tier="batched", n=10):
            pass
        record = registry.trace[0]
        assert record.name == "cell"
        assert record.attributes == {"tier": "batched", "n": 10}
        assert record.seconds >= 0.0
        stats = registry.snapshot()["histograms"]["span.cell.seconds"]
        assert stats["count"] == 1

    def test_trace_is_bounded_and_drops_are_counted(self):
        registry = MetricsRegistry(max_trace=2)
        for _ in range(5):
            with registry.span("s"):
                pass
        assert len(registry.trace) == 2
        assert registry.snapshot()["counters"]["obs.spans.dropped"] == 3
        # The timing histogram still sees every span.
        assert (
            registry.snapshot()["histograms"]["span.s.seconds"]["count"]
            == 5
        )

    def test_span_stack_unwinds_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(RuntimeError):
            with registry.span("outer"):
                raise RuntimeError("boom")
        with registry.span("next"):
            pass
        assert registry.trace[-1].path == "next"


class TestEvents:
    def test_events_record_fields_in_order(self):
        registry = MetricsRegistry()
        registry.event("cell", n=100, n_hat=101.5)
        assert registry.events == [
            {"name": "cell", "n": 100, "n_hat": 101.5}
        ]

    def test_events_are_bounded_and_drops_are_counted(self):
        registry = MetricsRegistry(max_trace=3)
        for index in range(5):
            registry.event("e", index=index)
        assert len(registry.events) == 3
        assert registry.snapshot()["counters"]["obs.events.dropped"] == 2


class TestActiveRegistry:
    def test_default_is_the_null_registry(self):
        assert get_registry() is NULL_REGISTRY

    def test_use_registry_scopes_and_restores(self):
        registry = MetricsRegistry()
        with use_registry(registry) as active:
            assert active is registry
            assert get_registry() is registry
        assert get_registry() is NULL_REGISTRY

    def test_use_registry_restores_on_exception(self):
        registry = MetricsRegistry()
        with pytest.raises(ValueError):
            with use_registry(registry):
                raise ValueError
        assert get_registry() is NULL_REGISTRY

    def test_set_registry_returns_previous(self):
        registry = MetricsRegistry()
        previous = set_registry(registry)
        try:
            assert previous is NULL_REGISTRY
            assert get_registry() is registry
        finally:
            set_registry(previous)

    def test_truthiness_gates_optional_work(self):
        assert MetricsRegistry()
        assert not NullRegistry()
        assert not NULL_REGISTRY
