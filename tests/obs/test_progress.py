"""Live sweep progress: reporter throttling, tracker ETA, rendering."""

from __future__ import annotations

import io
import pickle
import queue

from repro.obs.progress import (
    DEFAULT_THROTTLE_SECONDS,
    Heartbeat,
    ProgressReporter,
    ProgressTracker,
    default_worker_id,
)
from repro.obs.registry import MetricsRegistry


class FakeClock:
    def __init__(self, now: float = 0.0):
        self.now = now

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


class TestReporter:
    def test_emit_puts_a_heartbeat(self):
        sink: "queue.Queue[Heartbeat]" = queue.Queue()
        reporter = ProgressReporter(sink, worker_id="pid:1")
        assert reporter.emit(
            phase="done", cells_done=1, slots=64, rounds=8, n=100
        )
        beat = sink.get_nowait()
        assert beat.worker_id == "pid:1"
        assert beat.cells_done == 1
        assert beat.slots == 64
        assert beat.n == 100
        assert beat.ts > 0

    def test_unforced_emissions_are_throttled(self):
        sink: "queue.Queue[Heartbeat]" = queue.Queue()
        reporter = ProgressReporter(sink, worker_id="w")
        assert reporter.emit()
        assert not reporter.emit()  # inside the throttle window
        assert reporter.emit(force=True)  # force bypasses it
        assert sink.qsize() == 2

    def test_worker_id_defaults_to_pid_tag(self):
        reporter = ProgressReporter(queue.Queue())
        assert reporter.worker_id == default_worker_id()
        assert reporter.worker_id.startswith("pid:")

    def test_pickle_resets_throttle_state(self):
        reporter = ProgressReporter(None, worker_id="w")
        reporter._last_emit = 123.0
        clone = pickle.loads(pickle.dumps(reporter))
        assert clone._last_emit == 0.0
        assert clone.min_interval == DEFAULT_THROTTLE_SECONDS


class TestTracker:
    def test_aggregates_and_eta(self):
        clock = FakeClock()
        tracker = ProgressTracker(
            4, registry=MetricsRegistry(), clock=clock
        )
        clock.advance(2.0)
        tracker.cell_done(n=100, slots=64, rounds=8)
        tracker.cell_done(n=200, slots=64, rounds=8)
        assert tracker.cells_done == 2
        assert tracker.slots_done == 128
        assert tracker.rounds_done == 16
        assert tracker.current_n == 200
        assert tracker.fraction_done == 0.5
        assert tracker.cells_per_second == 1.0
        assert tracker.eta_seconds == 2.0

    def test_eta_unknown_before_first_cell(self):
        tracker = ProgressTracker(4, registry=MetricsRegistry())
        assert tracker.eta_seconds == float("inf")
        assert tracker.cells_per_second == 0.0

    def test_gauges_mirror_the_aggregates(self):
        clock = FakeClock()
        registry = MetricsRegistry()
        tracker = ProgressTracker(2, registry=registry, clock=clock)
        clock.advance(1.0)
        tracker.cell_done(n=50, slots=32, rounds=4)
        gauges = registry.snapshot()["gauges"]
        assert gauges["sweep.progress.cells_total"] == 2
        assert gauges["sweep.progress.cells_done"] == 1
        assert gauges["sweep.progress.fraction"] == 0.5
        assert gauges["sweep.progress.slots_done"] == 32
        assert gauges["sweep.progress.cells_per_second"] == 1.0
        assert gauges["sweep.progress.eta_seconds"] == 1.0

    def test_drain_consumes_everything_nonblocking(self):
        source: "queue.Queue[Heartbeat]" = queue.Queue()
        for index in range(3):
            source.put(
                Heartbeat(worker_id="w", cells_done=1, n=index)
            )
        tracker = ProgressTracker(3, registry=MetricsRegistry())
        assert tracker.drain(source) == 3
        assert tracker.drain(source) == 0
        assert tracker.cells_done == 3

    def test_render_throttles_and_finish_forces(self):
        clock = FakeClock()
        stream = io.StringIO()
        tracker = ProgressTracker(
            3,
            registry=MetricsRegistry(),
            stream=stream,
            clock=clock,
        )
        tracker.cell_done(n=10)
        first = stream.getvalue()
        assert "1/3" in first
        tracker.cell_done(n=20)  # same clock tick: throttled
        assert stream.getvalue() == first
        clock.advance(1.0)
        tracker.cell_done(n=30)
        assert "3/3" in stream.getvalue()
        tracker.finish()
        assert stream.getvalue().endswith("\n")

    def test_status_line_contents(self):
        clock = FakeClock()
        tracker = ProgressTracker(
            8, registry=MetricsRegistry(), clock=clock
        )
        clock.advance(2.0)
        tracker.cell_done(n=25_000, slots=1_000, rounds=100)
        line = tracker.status_line()
        assert "1/8 cells" in line
        assert "eta" in line
        assert "n=25,000" in line

    def test_no_stream_means_no_rendering(self):
        tracker = ProgressTracker(1, registry=MetricsRegistry())
        tracker.cell_done()
        tracker.finish()  # must not raise
