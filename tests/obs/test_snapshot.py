"""Registry snapshot/merge: the cross-process aggregation contract.

The parallel sweeps rely on ``snapshot()`` → pickle → ``merge()``
being lossless for everything deterministic and order-independent for
everything else; these tests pin the algebra (associativity,
commutativity on the parity view), the worker tagging, the pickle
round-trip, and the trace-cap accounting.
"""

from __future__ import annotations

import math
import pickle
import random

import pytest

from repro.obs.metrics import BUCKET_COUNT, bucket_index
from repro.obs.registry import (
    NULL_REGISTRY,
    MetricsRegistry,
    RegistrySnapshot,
    parity_view,
)


def _random_registry(rng: random.Random) -> MetricsRegistry:
    registry = MetricsRegistry()
    for name in ("a", "b", "c"):
        if rng.random() < 0.8:
            registry.counter(f"count.{name}").inc(rng.randrange(1, 50))
    for name in ("x", "y"):
        if rng.random() < 0.8:
            registry.gauge(f"gauge.{name}").set(rng.uniform(-5, 5))
    histogram = registry.histogram("h")
    for _ in range(rng.randrange(0, 12)):
        histogram.observe(rng.uniform(-2, 1e6))
    if rng.random() < 0.5:
        registry.event("cell", n=rng.randrange(1, 100))
    with registry.span("cell", n=rng.randrange(1, 100)):
        pass
    return registry


def _merged(
    snapshots: "list[RegistrySnapshot]",
) -> MetricsRegistry:
    parent = MetricsRegistry()
    for snapshot in snapshots:
        parent.merge(snapshot)
    return parent


class TestSnapshot:
    def test_snapshot_is_picklable_and_faithful(self):
        registry = _random_registry(random.Random(7))
        snapshot = registry.snapshot(worker_id="pid:42")
        clone = pickle.loads(pickle.dumps(snapshot))
        assert clone.counters == snapshot.counters
        assert clone.gauges == snapshot.gauges
        assert clone.histograms == snapshot.histograms
        assert clone.events == snapshot.events
        assert clone.worker_id == "pid:42"

    def test_histogram_stats_carry_bucket_arrays(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe_many([0.5, 3.0, -1.0])
        stats = registry.snapshot()["histograms"]["h"]
        assert len(stats["buckets"]) == BUCKET_COUNT
        assert stats["buckets"][bucket_index(0.5)] >= 1
        assert sum(stats["buckets"]) == 3

    def test_worker_id_tags_spans_and_events(self):
        registry = MetricsRegistry()
        registry.event("cell", n=5)
        with registry.span("cell"):
            pass
        snapshot = registry.snapshot(worker_id="pid:9")
        assert snapshot.events[0]["worker.id"] == "pid:9"
        assert snapshot.spans[0].attributes["worker.id"] == "pid:9"

    def test_untagged_snapshot_leaves_records_alone(self):
        registry = MetricsRegistry()
        registry.event("cell", n=5)
        snapshot = registry.snapshot()
        assert "worker.id" not in snapshot.events[0]

    def test_mapping_access_backwards_compatible(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(3)
        snapshot = registry.snapshot()
        assert snapshot["counters"] == {"c": 3}
        with pytest.raises(KeyError):
            snapshot["nonsense"]

    def test_exemplars_only_present_when_recorded(self):
        registry = MetricsRegistry()
        registry.histogram("h").observe(1.0)
        assert "exemplars" not in registry.snapshot()["histograms"]["h"]
        registry.histogram("h").observe(1.0, trace_id="a" * 32)
        stats = registry.snapshot()["histograms"]["h"]
        assert stats["exemplars"][bucket_index(1.0)][0] == "a" * 32

    def test_span_trace_ids_survive_pickle(self):
        from repro.obs import TraceContext, use_trace_context

        registry = MetricsRegistry()
        ctx = TraceContext.root()
        with use_trace_context(ctx):
            with registry.span("cell"):
                pass
        snapshot = pickle.loads(
            pickle.dumps(registry.snapshot(worker_id="pid:3"))
        )
        record = snapshot.spans[0]
        assert record.trace_id == ctx.trace_id
        assert record.parent_id == ctx.span_id


class TestMergeAlgebra:
    def test_counters_and_buckets_add(self):
        left = MetricsRegistry()
        left.counter("c").inc(2)
        left.histogram("h").observe(1.5)
        right = MetricsRegistry()
        right.counter("c").inc(5)
        right.histogram("h").observe(1.5)
        left.merge(right.snapshot())
        assert left.counter("c").value == 7
        assert left.histogram("h").count == 2
        assert left.histogram("h").buckets[bucket_index(1.5)] == 2

    def test_exemplar_merge_is_last_write_wins_on_timestamp(self):
        left = MetricsRegistry()
        left.histogram("h").exemplars = {3: ("old" + "0" * 29, 1.0, 10.0)}
        left.histogram("h").observe(1.0)
        newer = MetricsRegistry()
        newer.histogram("h").exemplars = {
            3: ("new" + "1" * 29, 1.1, 20.0),
            7: ("other" + "2" * 27, 9.0, 5.0),
        }
        newer.histogram("h").observe(1.1)
        left.merge(newer.snapshot())
        merged = left.histogram("h").exemplars
        assert merged[3][0].startswith("new")
        assert merged[7][0].startswith("other")
        # Merging an older snapshot back does not regress bucket 3.
        older = MetricsRegistry()
        older.histogram("h").exemplars = {3: ("old" + "0" * 29, 1.0, 1.0)}
        older.histogram("h").observe(1.0)
        left.merge(older.snapshot())
        assert left.histogram("h").exemplars[3][0].startswith("new")

    def test_merged_traced_spans_feed_exemplars_into_parent(self):
        """A worker's traced spans land in the parent with their ids
        intact — the cross-process path the sweep pool uses."""
        from repro.obs import TraceContext, use_trace_context

        worker = MetricsRegistry()
        ctx = TraceContext.root()
        with use_trace_context(ctx):
            with worker.span("cell"):
                pass
        parent = MetricsRegistry()
        parent.merge(worker.snapshot(worker_id="pid:11"))
        record = parent.trace[0]
        assert record.trace_id == ctx.trace_id
        assert record.attributes["worker.id"] == "pid:11"
        merged = parent.histogram("span.cell.seconds")
        assert merged.exemplars is not None
        assert {e[0] for e in merged.exemplars.values()} == {
            ctx.trace_id
        }

    def test_gauge_last_write_wins_regardless_of_merge_order(self):
        early = MetricsRegistry()
        early.gauge("g").set(1.0)
        late = MetricsRegistry()
        late.gauge("g").set(2.0)
        snap_early, snap_late = early.snapshot(), late.snapshot()
        # Force a strict timestamp order.
        snap_early.gauge_ts["g"] = 100.0
        snap_late.gauge_ts["g"] = 200.0
        one = _merged([snap_early, snap_late])
        other = _merged([snap_late, snap_early])
        assert one.gauge("g").value == 2.0
        assert other.gauge("g").value == 2.0

    def test_nan_gauge_loses_timestamp_ties(self):
        # Strict last-write-wins: a *later* NaN still wins (that is
        # what a serial run would hold), but on a timestamp tie the
        # real value beats NaN, keeping the tie-break a total order.
        real = MetricsRegistry()
        real.gauge("g").set(3.0)
        broken = MetricsRegistry()
        broken.gauge("g").set(float("nan"))
        snap_real, snap_broken = real.snapshot(), broken.snapshot()
        snap_real.gauge_ts["g"] = 100.0
        snap_broken.gauge_ts["g"] = 100.0  # tie: NaN must lose
        one = _merged([snap_real, snap_broken])
        other = _merged([snap_broken, snap_real])
        assert one.gauge("g").value == 3.0
        assert other.gauge("g").value == 3.0

    def test_merge_associative_and_commutative_on_parity_view(self):
        rng = random.Random(2011)
        for _ in range(10):
            snapshots = [
                _random_registry(rng).snapshot(worker_id=f"pid:{i}")
                for i in range(3)
            ]
            a, b, c = snapshots
            orders = [[a, b, c], [c, a, b], [b, c, a], [c, b, a]]
            views = [
                parity_view(_merged(order).snapshot())
                for order in orders
            ]
            for view in views[1:]:
                assert view == views[0]

    def test_merged_moments_match_direct_observation(self):
        values_left = [1.0, 2.0, 3.0]
        values_right = [10.0, 20.0]
        left = MetricsRegistry()
        left.histogram("h").observe_many(values_left)
        right = MetricsRegistry()
        right.histogram("h").observe_many(values_right)
        left.merge(right.snapshot())
        direct = MetricsRegistry()
        direct.histogram("h").observe_many(values_left + values_right)
        merged_h = left.histogram("h")
        direct_h = direct.histogram("h")
        assert merged_h.count == direct_h.count
        assert merged_h.min == direct_h.min
        assert merged_h.max == direct_h.max
        assert math.isclose(merged_h.mean, direct_h.mean)
        assert math.isclose(merged_h.std, direct_h.std)

    def test_merge_respects_trace_cap_and_counts_drops(self):
        parent = MetricsRegistry(max_trace=2)
        worker = MetricsRegistry()
        for index in range(5):
            worker.event("cell", n=index)
        parent.merge(worker.snapshot())
        assert len(parent.events) == 2
        dropped = parent.snapshot()["counters"]["obs.events.dropped"]
        assert dropped == 3

    def test_null_registry_merge_is_inert(self):
        worker = MetricsRegistry()
        worker.counter("c").inc(5)
        worker.histogram("h").observe(1.0)
        NULL_REGISTRY.merge(worker.snapshot())
        assert NULL_REGISTRY.snapshot()["counters"] == {}
        # The shared null histogram must not have been mutated.
        assert NULL_REGISTRY.histogram("h").count == 0


class TestParityView:
    def test_accepts_registry_or_snapshot(self):
        registry = MetricsRegistry()
        registry.counter("c").inc(1)
        assert parity_view(registry) == parity_view(
            registry.snapshot()
        )

    def test_excludes_machine_timed_series(self):
        registry = MetricsRegistry()
        registry.histogram("experiment.cell_seconds").observe(0.5)
        registry.histogram("pet.gray_depth").observe(3)
        registry.gauge("sweep.progress.eta_seconds").set(1.0)
        view = parity_view(registry)
        assert "experiment.cell_seconds" not in view["histograms"]
        assert "pet.gray_depth" in view["histograms"]
        assert "gauges" not in view

    def test_events_compared_without_volatile_fields(self):
        one = MetricsRegistry()
        one.event("cell", n=5, seconds=0.123)
        two = MetricsRegistry()
        two.event("cell", n=5, seconds=9.876)
        two.events[0]["worker.id"] = "pid:7"
        assert parity_view(one) == parity_view(two)
