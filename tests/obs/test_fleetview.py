"""Tests for the fleetview terminal dashboard (parse + render)."""

from __future__ import annotations

import json

import pytest

from repro.obs import MetricsRegistry
from repro.obs.fleetview import (
    fetch_state,
    fleet_summary,
    load_snapshot,
    main,
    render_fleet,
    shard_rows,
)
from repro.obs.prom import render_openmetrics


def _fleet_state(shards=2):
    """A realistic two-shard state capture, rendered from a registry."""
    registry = MetricsRegistry()
    registry.counter("serve.requests.ok").inc(20)
    registry.counter("serve.cache.hits").inc(5)
    for shard in range(shards):
        prefix = f"serve.shard.{shard}"
        registry.gauge(f"{prefix}.requests").set(10.0 * (shard + 1))
        registry.gauge(f"{prefix}.cache_hits").set(2.0 + shard)
        registry.gauge(f"{prefix}.cache_misses").set(6.0 - shard)
        registry.gauge(f"{prefix}.p99_seconds").set(
            0.012 * (shard + 1)
        )
        registry.gauge(f"{prefix}.burn_rate_fast").set(0.5 * shard)
        registry.gauge(f"{prefix}.heartbeat_age_seconds").set(0.2)
        registry.gauge(f"{prefix}.queue_depth").set(shard)
        registry.gauge(f"{prefix}.inflight").set(0)
    registry.gauge("serve.slo.burn_rate_fast").set(0.25)
    healthz = {
        "status": "degraded",
        "uptime_seconds": 10.0,
        "shards": {
            "0": {
                "status": "ok",
                "heartbeat_age_seconds": 0.2,
                "queue_depth": 0,
                "inflight": 0,
            },
            "1": {
                "status": "stalled",
                "heartbeat_age_seconds": 3.4,
                "queue_depth": 1,
                "inflight": 2,
            },
        },
    }
    return {
        "metrics_text": render_openmetrics(registry),
        "healthz": healthz,
    }


class TestShardRows:
    def test_rows_fold_metrics_and_health(self):
        rows = shard_rows(_fleet_state())
        assert [row["shard"] for row in rows] == [0, 1]
        first, second = rows
        assert first["status"] == "ok"
        assert first["requests"] == 10.0
        assert first["qps"] == pytest.approx(1.0)
        assert first["cache_hit_rate"] == pytest.approx(2.0 / 8.0)
        assert first["p99_seconds"] == pytest.approx(0.012)
        assert second["status"] == "stalled"
        # healthz liveness values win over the scraped gauges.
        assert second["heartbeat_age_seconds"] == pytest.approx(3.4)
        assert second["queue_depth"] == 1
        assert second["inflight"] == 2

    def test_rows_survive_missing_healthz(self):
        state = _fleet_state()
        state["healthz"] = {}
        rows = shard_rows(state)
        assert len(rows) == 2
        assert rows[0]["status"] == "?"
        assert rows[0]["qps"] is None  # no uptime to divide by
        # Liveness falls back to the scraped gauges.
        assert rows[1]["heartbeat_age_seconds"] == pytest.approx(0.2)

    def test_summary_aggregates_fleet(self):
        state = _fleet_state()
        rows = shard_rows(state)
        summary = fleet_summary(state, rows)
        assert summary["status"] == "degraded"
        assert summary["shards"] == 2
        assert summary["requests"] == 30.0
        assert summary["burn_rate_fast"] == pytest.approx(0.25)


class TestRender:
    def test_render_has_one_row_per_shard(self):
        text = render_fleet(_fleet_state())
        lines = text.splitlines()
        assert lines[0].startswith("fleet: degraded · 2 shards")
        assert "30 requests" in lines[0]
        body = [
            line for line in lines if line.startswith(("0", "1"))
        ]
        assert len(body) == 2
        assert "stalled" in body[1]

    def test_render_without_shards_says_so(self):
        registry = MetricsRegistry()
        registry.counter("sim.rounds").inc()
        state = {
            "metrics_text": render_openmetrics(registry),
            "healthz": {"status": "ok", "shards": {}},
        }
        text = render_fleet(state)
        assert "no per-shard series" in text


class TestCli:
    def test_snapshot_roundtrip(self, tmp_path, capsys):
        path = tmp_path / "fleet.json"
        path.write_text(json.dumps(_fleet_state()))
        assert main(["--snapshot", str(path)]) == 0
        out = capsys.readouterr().out
        assert out.startswith("fleet: degraded")

    def test_rejects_non_snapshot_file(self, tmp_path, capsys):
        path = tmp_path / "junk.json"
        path.write_text("{}")
        assert main(["--snapshot", str(path)]) == 1
        assert "failed to load" in capsys.readouterr().err

    def test_snapshot_out_requires_url(self, tmp_path):
        with pytest.raises(SystemExit):
            main(
                [
                    "--snapshot",
                    str(tmp_path / "x.json"),
                    "--snapshot-out",
                    str(tmp_path / "y.json"),
                ]
            )

    def test_fetch_and_snapshot_out_from_live_endpoint(
        self, tmp_path, capsys
    ):
        from repro.obs import MetricsServer

        registry = MetricsRegistry()
        registry.gauge("serve.shard.0.requests").set(4.0)
        registry.gauge("serve.shard.0.heartbeat_age_seconds").set(0.1)
        out_path = tmp_path / "snap.json"
        with MetricsServer(registry, port=0) as server:
            state = fetch_state(server.url)
            assert "repro_serve_shard_0_requests" in state[
                "metrics_text"
            ]
            assert main(
                [
                    "--url",
                    server.url,
                    "--snapshot-out",
                    str(out_path),
                ]
            ) == 0
        capsys.readouterr()
        # The artifact renders identically offline.
        saved = load_snapshot(str(out_path))
        assert saved["healthz"]["status"] == "ok"
        assert main(["--snapshot", str(out_path)]) == 0
        assert "shard" in capsys.readouterr().out
