"""Tests for the live scrape endpoint (``/metrics``, ``/healthz``,
``/traces/<id>``)."""

from __future__ import annotations

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import (
    MetricsRegistry,
    MetricsServer,
    SloTracker,
    parse_openmetrics,
)
from repro.obs.http import trace_timeline
from repro.obs.tracectx import TraceContext, use_trace_context


@pytest.fixture()
def registry():
    registry = MetricsRegistry()
    registry.counter("sim.rounds").inc(7)
    registry.histogram("serve.request.latency_seconds").observe(
        0.02, trace_id="cafe" * 8
    )
    return registry


@pytest.fixture()
def server(registry):
    with MetricsServer(registry, port=0) as server:
        yield server


def _get(server, path):
    with urllib.request.urlopen(server.url + path, timeout=5) as resp:
        return resp.status, resp.headers, resp.read().decode("utf-8")


class TestMetricsRoute:
    def test_scrape_parses_as_openmetrics(self, server):
        status, headers, text = _get(server, "/metrics")
        assert status == 200
        assert "application/openmetrics-text" in headers["Content-Type"]
        samples, _ = parse_openmetrics(text)
        assert samples["repro_sim_rounds_total"] == 7

    def test_scrape_carries_exemplars(self, server):
        _, _, text = _get(server, "/metrics")
        assert f'# {{trace_id="{"cafe" * 8}"}}' in text

    def test_scrape_force_publishes_slo_gauges(self, registry):
        tracker = SloTracker()
        registry.attach_diagnostics(slo=tracker)
        tracker.record(True)
        tracker.record(False)
        with MetricsServer(registry, port=0) as server:
            _, _, text = _get(server, "/metrics")
        samples, _ = parse_openmetrics(text)
        # The scrape republished with force=True: the window totals
        # visible in the text are current, not record-time stale.
        assert samples["repro_serve_slo_good_fast"] == 1
        assert samples["repro_serve_slo_bad_fast"] == 1


class TestHealthz:
    def test_reports_liveness_and_span_count(self, server, registry):
        with use_trace_context(TraceContext.root()):
            with registry.span("work"):
                pass
        status, _, text = _get(server, "/healthz")
        payload = json.loads(text)
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["uptime_seconds"] >= 0.0
        assert payload["spans"] == 1

    def test_health_callback_extends_payload(self, registry):
        server = MetricsServer(
            registry, port=0, health=lambda: {"queue_depth": 3}
        )
        with server:
            _, _, text = _get(server, "/healthz")
        assert json.loads(text)["queue_depth"] == 3

    def test_stable_schema_has_empty_shard_map_unsharded(
        self, server
    ):
        _, _, text = _get(server, "/healthz")
        payload = json.loads(text)
        # The documented stable schema, present on every process.
        assert set(payload) >= {"status", "shards", "uptime_seconds"}
        assert payload["shards"] == {}

    def test_attached_fleet_drives_status_and_shards(self, registry):
        class FakeFleet:
            def health(self):
                return {
                    "status": "degraded",
                    "shards": {
                        "0": {"status": "ok"},
                        "1": {"status": "dead"},
                    },
                }

            def refresh(self, registry):
                registry.gauge(
                    "serve.shard.1.heartbeat_age_seconds"
                ).set(9.5)

        registry.attach_diagnostics(fleet=FakeFleet())
        with MetricsServer(registry, port=0) as server:
            _, _, text = _get(server, "/healthz")
            payload = json.loads(text)
            assert payload["status"] == "degraded"
            assert payload["shards"]["1"]["status"] == "dead"
            # /metrics refreshes the fleet gauges at scrape time.
            _, _, metrics_text = _get(server, "/metrics")
        samples, _ = parse_openmetrics(metrics_text)
        assert (
            samples["repro_serve_shard_1_heartbeat_age_seconds"]
            == 9.5
        )


class TestTracesRoute:
    def test_timeline_of_a_recorded_trace(self, registry, server):
        ctx = TraceContext.root()
        with use_trace_context(ctx):
            with registry.span("outer"):
                with registry.span("inner"):
                    pass
        status, _, text = _get(server, f"/traces/{ctx.trace_id}")
        payload = json.loads(text)
        assert status == 200
        assert payload["trace_id"] == ctx.trace_id
        assert payload["span_count"] == 2
        names = [span["name"] for span in payload["spans"]]
        assert set(names) == {"outer", "inner"}
        # Spans come back sorted and re-based to offset 0.
        offsets = [span["offset"] for span in payload["spans"]]
        assert offsets == sorted(offsets)
        assert offsets[0] == 0.0

    def test_unknown_trace_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/traces/" + "0" * 32)
        assert excinfo.value.code == 404
        body = json.loads(excinfo.value.read().decode("utf-8"))
        assert body["error"] == "trace not found"

    def test_unknown_route_is_404(self, server):
        with pytest.raises(urllib.error.HTTPError) as excinfo:
            _get(server, "/nope")
        assert excinfo.value.code == 404

    def test_trace_timeline_empty_for_unknown_id(self, registry):
        timeline = trace_timeline(registry, "f" * 32)
        assert timeline["span_count"] == 0
        assert timeline["spans"] == []


class TestLifecycle:
    def test_port_zero_binds_ephemeral(self, registry):
        server = MetricsServer(registry, port=0).start()
        try:
            assert server.port != 0
            assert server.url.endswith(str(server.port))
        finally:
            server.stop()

    def test_stop_is_idempotent(self, registry):
        server = MetricsServer(registry, port=0).start()
        server.stop()
        server.stop()

    def test_endpoint_unreachable_after_stop(self, registry):
        server = MetricsServer(registry, port=0).start()
        url = server.url
        server.stop()
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(url + "/healthz", timeout=1)
