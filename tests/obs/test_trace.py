"""Tests for round-level tracing and deterministic replay."""

from __future__ import annotations

import io

import numpy as np
import pytest

from repro.analysis.mellin import gray_depth_cdf
from repro.config import PetConfig
from repro.core.search import (
    slot_outcome_tables,
    slots_lookup_table,
    strategy_for,
)
from repro.errors import ConfigurationError
from repro.obs import (
    MetricsRegistry,
    ReplayedRound,
    RoundTraceRecord,
    RoundTraceRecorder,
    SamplingPolicy,
    depth_tail_tables,
    read_trace,
    replay_round,
    verify_replay,
    write_trace,
)
from repro.sim.batched import BatchedExperimentEngine
from repro.sim.sampled import SampledSimulator
from repro.sim.workload import WorkloadSpec


def _tables(height: int, binary_search: bool = True):
    strategy = strategy_for(binary_search)
    slots = slots_lookup_table(strategy, height)
    busy, idle = slot_outcome_tables(strategy, height)
    return slots, busy, idle


def _sampled_records(
    n: int = 1000,
    rounds: int = 200,
    height: int = 32,
    seed: int = 7,
    policy: SamplingPolicy | None = None,
) -> RoundTraceRecorder:
    recorder = RoundTraceRecorder(
        policy=policy, registry=MetricsRegistry()
    )
    rng = np.random.default_rng(seed)
    uniforms = rng.random(rounds)
    depths = np.searchsorted(
        gray_depth_cdf(n, height), uniforms, side="left"
    ).astype(np.int64)
    slots, busy, idle = _tables(height)
    recorder.record_sampled_run(
        run_index=0,
        depths=depths,
        uniforms=uniforms,
        true_n=n,
        tree_height=height,
        binary_search=True,
        slots_table=slots,
        busy_table=busy,
        idle_table=idle,
    )
    return recorder


class TestSamplingPolicy:
    def test_parse_all(self):
        assert SamplingPolicy.parse("all").mode == "all"

    def test_parse_every_k(self):
        policy = SamplingPolicy.parse("every_k:32")
        assert policy.mode == "every_k"
        assert policy.every_k == 32

    def test_parse_outliers_with_threshold(self):
        policy = SamplingPolicy.parse("outliers_only:1e-4")
        assert policy.mode == "outliers_only"
        assert policy.tail_threshold == pytest.approx(1e-4)

    def test_parse_rejects_unknown(self):
        with pytest.raises(ConfigurationError):
            SamplingPolicy.parse("sometimes")

    def test_every_k_requires_stride(self):
        with pytest.raises(ConfigurationError):
            SamplingPolicy.parse("every_k")

    def test_threshold_range_enforced(self):
        with pytest.raises(ConfigurationError):
            SamplingPolicy(mode="outliers_only", tail_threshold=0.7)


class TestDepthTailTables:
    def test_shapes_and_bounds(self):
        is_outlier, tail = depth_tail_tables(1000, 32)
        assert is_outlier.shape == tail.shape == (33,)
        assert np.all(tail > 0) and np.all(tail <= 1)

    def test_typical_depth_is_not_an_outlier(self):
        # E[depth] ~ log2(n) + const: for n=1000 depth 10 is typical.
        is_outlier, _ = depth_tail_tables(1000, 32)
        assert not is_outlier[10]
        # Depths far in the tails are flagged.
        assert is_outlier[0]
        assert is_outlier[31]

    def test_tables_are_read_only(self):
        is_outlier, tail = depth_tail_tables(50, 16)
        with pytest.raises(ValueError):
            is_outlier[0] = False
        with pytest.raises(ValueError):
            tail[0] = 0.5


class TestRecorderPolicies:
    def test_all_keeps_every_round(self):
        recorder = _sampled_records(rounds=100)
        assert len(recorder) == 100
        assert recorder.rounds_seen == 100
        assert recorder.rounds_recorded == 100

    def test_every_k_keeps_stride(self):
        recorder = _sampled_records(
            rounds=100,
            policy=SamplingPolicy(mode="every_k", every_k=10),
        )
        assert len(recorder) == 10
        assert [r.round_index for r in recorder.records] == list(
            range(0, 100, 10)
        )

    def test_outliers_only_keeps_flagged_rounds(self):
        recorder = _sampled_records(
            rounds=5000,
            policy=SamplingPolicy(mode="outliers_only"),
        )
        assert 0 < len(recorder) < 5000
        assert all(r.outlier for r in recorder.records)
        assert recorder.rounds_seen == 5000
        assert recorder.rounds_recorded == len(recorder)

    def test_ring_buffer_evicts_oldest(self):
        recorder = RoundTraceRecorder(
            capacity=10, registry=MetricsRegistry()
        )
        n, height = 500, 32
        rng = np.random.default_rng(0)
        uniforms = rng.random(25)
        depths = np.searchsorted(
            gray_depth_cdf(n, height), uniforms, side="left"
        ).astype(np.int64)
        slots, busy, idle = _tables(height)
        recorder.record_sampled_run(
            0, depths, uniforms, n, height, True, slots, busy, idle
        )
        assert len(recorder) == 10
        assert recorder.records_evicted == 15
        assert [r.round_index for r in recorder.records] == list(
            range(15, 25)
        )

    def test_accounting_counters_reach_registry(self):
        registry = MetricsRegistry()
        rng = np.random.default_rng(1)
        uniforms = rng.random(50)
        n, height = 100, 16
        depths = np.searchsorted(
            gray_depth_cdf(n, height), uniforms, side="left"
        ).astype(np.int64)
        recorder = RoundTraceRecorder(registry=registry)
        slots, busy, idle = _tables(height)
        recorder.record_sampled_run(
            0, depths, uniforms, n, height, True, slots, busy, idle
        )
        counters = registry.snapshot()["counters"]
        assert counters["trace.rounds.seen"] == 50
        assert counters["trace.rounds.recorded"] == 50


class TestSampledReplay:
    def test_replay_matches_every_record(self):
        recorder = _sampled_records(rounds=300)
        assert len(recorder) == 300
        for record in recorder.records:
            assert verify_replay(record)

    def test_replay_matches_outlier_records(self):
        recorder = _sampled_records(
            rounds=5000,
            policy=SamplingPolicy(mode="outliers_only"),
        )
        assert recorder.outlier_records()
        for record in recorder.outlier_records():
            assert verify_replay(record)

    def test_replay_detects_corruption(self):
        recorder = _sampled_records(rounds=1)
        (record,) = recorder.records
        corrupt = RoundTraceRecord.from_dict(
            {**record.to_dict(), "gray_depth": record.gray_depth + 1}
        )
        assert not verify_replay(corrupt)

    def test_replay_rejects_missing_seed_material(self):
        with pytest.raises(ConfigurationError):
            replay_round(
                RoundTraceRecord(
                    tier="sampled",
                    protocol="PET",
                    run_index=0,
                    round_index=0,
                    tree_height=32,
                    binary_search=True,
                    passive_tags=False,
                    gray_depth=5,
                    slots=6,
                    busy_slots=5,
                    idle_slots=1,
                )
            )


class TestLiveRecording:
    def test_sampled_estimate_batch_records_and_replays(self):
        registry = MetricsRegistry()
        recorder = RoundTraceRecorder(registry=registry)
        registry.attach_diagnostics(round_trace=recorder)
        simulator = SampledSimulator(
            2000,
            rng=np.random.default_rng(3),
            registry=registry,
        )
        simulator.estimate_batch(rounds=50, repetitions=4)
        assert len(recorder) == 200
        for record in recorder.records:
            assert record.tier == "sampled"
            assert verify_replay(record)

    def test_sampled_recording_never_perturbs_estimates(self):
        plain = SampledSimulator(
            2000, rng=np.random.default_rng(3)
        ).estimate_batch(rounds=50, repetitions=4)
        registry = MetricsRegistry()
        registry.attach_diagnostics(
            round_trace=RoundTraceRecorder(registry=registry)
        )
        traced = SampledSimulator(
            2000, rng=np.random.default_rng(3), registry=registry
        ).estimate_batch(rounds=50, repetitions=4)
        np.testing.assert_array_equal(plain, traced)

    def test_scalar_run_round_records_trace(self):
        registry = MetricsRegistry()
        recorder = RoundTraceRecorder(registry=registry)
        registry.attach_diagnostics(round_trace=recorder)
        simulator = SampledSimulator(
            500, rng=np.random.default_rng(11), registry=registry
        )
        simulator.estimate(rounds=20)
        assert len(recorder) == 20
        for record in recorder.records:
            assert verify_replay(record)

    @pytest.mark.parametrize("passive", [False, True])
    def test_batched_engine_records_and_replays(self, passive):
        registry = MetricsRegistry()
        recorder = RoundTraceRecorder(registry=registry)
        registry.attach_diagnostics(round_trace=recorder)
        engine = BatchedExperimentEngine(
            base_seed=2011, repetitions=3, registry=registry
        )
        spec = WorkloadSpec(size=200, seed=5)
        config = PetConfig(passive_tags=passive)
        engine.run_cell(spec, config, rounds=40)
        assert len(recorder) == 120
        for record in recorder.records:
            assert record.tier == "batched"
            assert record.passive_tags == passive
            assert verify_replay(record)

    def test_batched_recording_never_perturbs_estimates(self):
        spec = WorkloadSpec(size=200, seed=5)
        config = PetConfig()
        plain = BatchedExperimentEngine(
            base_seed=2011, repetitions=3
        ).run_cell(spec, config, rounds=40)
        registry = MetricsRegistry()
        registry.attach_diagnostics(
            round_trace=RoundTraceRecorder(registry=registry)
        )
        traced = BatchedExperimentEngine(
            base_seed=2011, repetitions=3, registry=registry
        ).run_cell(spec, config, rounds=40)
        np.testing.assert_array_equal(
            plain.estimates, traced.estimates
        )


class TestTracePersistence:
    def test_jsonl_round_trip(self):
        recorder = _sampled_records(rounds=25)
        sink = io.StringIO()
        written = write_trace(sink, recorder.records)
        assert written == 25
        loaded = list(read_trace(io.StringIO(sink.getvalue())))
        assert loaded == recorder.records
        for record in loaded:
            assert verify_replay(record)

    def test_file_round_trip(self, tmp_path):
        recorder = _sampled_records(rounds=10)
        path = tmp_path / "trace.jsonl"
        write_trace(str(path), recorder.records)
        assert list(read_trace(str(path))) == recorder.records


class TestReplayedRound:
    def test_matches_requires_depth_and_slots(self):
        replay = ReplayedRound(gray_depth=5, slots=6)
        base = _sampled_records(rounds=1).records[0]
        record = RoundTraceRecord.from_dict(
            {**base.to_dict(), "gray_depth": 5, "slots": 6}
        )
        assert replay.matches(record)
        assert not replay.matches(
            RoundTraceRecord.from_dict(
                {**record.to_dict(), "slots": 7}
            )
        )
