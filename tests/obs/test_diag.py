"""Tests for the online estimator-health monitor."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.mellin import gray_depth_cdf
from repro.core.accuracy import (
    PHI,
    SIGMA_H,
    confidence_scale,
    rounds_required,
)
from repro.errors import ConfigurationError
from repro.obs import EstimatorHealth, MetricsRegistry
from repro.sim.sampled import SampledSimulator


def _depths(n: int, count: int, seed: int = 0, height: int = 32):
    rng = np.random.default_rng(seed)
    return np.searchsorted(
        gray_depth_cdf(n, height), rng.random(count), side="left"
    ).astype(np.int64)


class TestStreamingState:
    def test_empty_monitor_is_nan_and_unconverged(self):
        health = EstimatorHealth(registry=MetricsRegistry())
        assert math.isnan(health.n_hat)
        assert math.isnan(health.mean_depth)
        assert health.ci_halfwidth == math.inf
        assert not health.converged
        assert health.rounds_remaining == rounds_required(0.05, 0.01)

    def test_n_hat_matches_eq14_on_the_running_mean(self):
        health = EstimatorHealth(registry=MetricsRegistry())
        depths = _depths(1000, 500)
        health.observe_depths(depths)
        assert health.rounds_observed == 500
        assert health.mean_depth == pytest.approx(depths.mean())
        assert health.n_hat == pytest.approx(
            2.0 ** depths.mean() / PHI
        )

    def test_streaming_equals_batch_ingestion(self):
        batch = EstimatorHealth(registry=MetricsRegistry())
        stream = EstimatorHealth(registry=MetricsRegistry())
        depths = _depths(5000, 300, seed=2)
        batch.observe_depths(depths)
        for depth in depths:
            stream.observe_round(int(depth))
        assert stream.n_hat == pytest.approx(batch.n_hat)
        assert stream.rounds_observed == batch.rounds_observed

    def test_ci_halfwidth_matches_theory_formula(self):
        health = EstimatorHealth(registry=MetricsRegistry())
        health.observe_depths(_depths(1000, 400))
        m = health.rounds_observed
        expected = (
            health.n_hat
            * math.log(2.0)
            * SIGMA_H
            * confidence_scale(0.01)
            / math.sqrt(m)
        )
        assert health.ci_halfwidth == pytest.approx(expected)

    def test_ci_shrinks_with_rounds(self):
        health = EstimatorHealth(registry=MetricsRegistry())
        health.observe_depths(_depths(1000, 100))
        wide = health.ci_halfwidth
        health.observe_depths(_depths(1000, 4000, seed=9))
        assert health.ci_halfwidth < wide

    def test_countdown_reaches_convergence(self):
        health = EstimatorHealth(registry=MetricsRegistry())
        required = health.required_rounds
        assert required == rounds_required(0.05, 0.01)
        health.observe_depths(_depths(1000, required - 10))
        assert health.rounds_remaining == 10
        assert not health.converged
        health.observe_depths(_depths(1000, 10, seed=5))
        assert health.rounds_remaining == 0
        assert health.converged

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            EstimatorHealth(tree_height=0)
        with pytest.raises(ConfigurationError):
            EstimatorHealth(epsilon=2.0)
        with pytest.raises(ConfigurationError):
            EstimatorHealth(warmup_rounds=0)


class TestOutlierFlags:
    def test_extreme_depths_flagged_after_warmup(self):
        registry = MetricsRegistry()
        health = EstimatorHealth(registry=registry)
        health.observe_depths(_depths(1000, 100))
        assert health.outlier_rounds == 0
        health.observe_round(31)  # absurd depth for n=1000
        assert health.outlier_rounds == 1
        counters = registry.snapshot()["counters"]
        assert counters["diag.outlier_rounds"] == 1
        events = [
            e for e in registry.events if e["name"] == "diag.outlier"
        ]
        assert len(events) == 1
        assert events[0]["depth"] == 31
        assert events[0]["tail_probability"] < 1e-3

    def test_no_flags_during_warmup(self):
        health = EstimatorHealth(
            registry=MetricsRegistry(), warmup_rounds=50
        )
        health.observe_depths(
            np.full(30, 31, dtype=np.int64)
        )  # before warmup
        assert health.outlier_rounds == 0

    def test_gauges_track_state(self):
        registry = MetricsRegistry()
        health = EstimatorHealth(registry=registry)
        health.observe_depths(_depths(1000, 200))
        gauges = registry.snapshot()["gauges"]
        assert gauges["diag.n_hat"] == pytest.approx(health.n_hat)
        assert gauges["diag.rounds_remaining"] == pytest.approx(
            health.rounds_remaining
        )


class TestDriftWiring:
    def test_step_change_raises_drift_alert_and_event(self):
        registry = MetricsRegistry()
        health = EstimatorHealth(registry=registry)
        for _ in range(8):
            health.observe_estimate(1000.0, rounds=4697)
        health.observe_estimate(5000.0, rounds=4697)
        assert health.drift_alerts == 1
        counters = registry.snapshot()["counters"]
        assert counters["monitor.drift.alerts"] == 1
        drift_events = [
            e for e in registry.events if e["name"] == "monitor.drift"
        ]
        assert len(drift_events) == 1
        assert drift_events[0]["estimate"] == 5000.0

    def test_nonpositive_and_nonfinite_estimates_ignored(self):
        health = EstimatorHealth(registry=MetricsRegistry())
        health.observe_estimate(0.0, rounds=100)
        health.observe_estimate(-5.0, rounds=100)
        health.observe_estimate(math.nan, rounds=100)
        health.observe_estimate(math.inf, rounds=100)
        assert health.snapshot().epochs_observed == 0

    def test_observe_estimates_batch(self):
        health = EstimatorHealth(registry=MetricsRegistry())
        health.observe_estimates(
            np.full(5, 1000.0), rounds=4697
        )
        assert health.snapshot().epochs_observed == 5


class TestProtocolResultIngestion:
    def test_gray_depth_statistics_feed_the_stream(self):
        from repro.protocols.base import ProtocolResult

        health = EstimatorHealth(registry=MetricsRegistry())
        depths = _depths(1000, 50)
        result = ProtocolResult(
            protocol="PET",
            n_hat=1000.0,
            rounds=50,
            total_slots=300,
            per_round_statistics=depths,
        )
        health.observe_protocol_result(result, "gray_depth")
        assert health.rounds_observed == 50
        assert health.snapshot().epochs_observed == 1

    def test_generic_statistics_feed_only_the_drift_detector(self):
        from repro.protocols.base import ProtocolResult

        health = EstimatorHealth(registry=MetricsRegistry())
        result = ProtocolResult(
            protocol="UPE",
            n_hat=900.0,
            rounds=40,
            total_slots=700,
            per_round_statistics=np.arange(40),
        )
        health.observe_protocol_result(result, "generic")
        assert health.rounds_observed == 0
        assert health.snapshot().epochs_observed == 1


class TestSnapshot:
    def test_snapshot_round_trips_to_dict(self):
        health = EstimatorHealth(registry=MetricsRegistry())
        health.observe_depths(_depths(1000, 100))
        snap = health.snapshot()
        record = snap.to_dict()
        assert record["rounds_observed"] == 100
        assert record["n_hat"] == pytest.approx(health.n_hat)
        assert record["ci_lower"] < record["n_hat"] < record["ci_upper"]


class TestEndToEnd:
    def test_sampled_batch_feeds_health_through_registry(self):
        registry = MetricsRegistry()
        health = EstimatorHealth(registry=registry)
        registry.attach_diagnostics(health=health)
        simulator = SampledSimulator(
            1000, rng=np.random.default_rng(4), registry=registry
        )
        simulator.estimate_batch(rounds=100, repetitions=3)
        assert health.rounds_observed == 300
        # n_hat of 300 pooled rounds lands near the truth.
        assert health.n_hat == pytest.approx(1000, rel=0.5)
