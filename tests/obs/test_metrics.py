"""Tests for the metric primitives (Counter/Gauge/Histogram)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.obs.metrics import Counter, Gauge, Histogram
from repro.obs.registry import NULL_REGISTRY


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        counter = Counter("slots")
        assert counter.value == 0
        counter.inc()
        counter.inc(41)
        assert counter.value == 42

    def test_cannot_decrease(self):
        counter = Counter("slots")
        with pytest.raises(ConfigurationError, match="cannot decrease"):
            counter.inc(-1)
        assert counter.value == 0

    def test_zero_increment_allowed(self):
        counter = Counter("slots")
        counter.inc(0)
        assert counter.value == 0


class TestGauge:
    def test_set_overwrites(self):
        gauge = Gauge("throughput")
        gauge.set(10)
        gauge.set(3.5)
        assert gauge.value == 3.5


class TestHistogram:
    def test_streaming_moments_match_numpy(self):
        values = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0]
        histogram = Histogram("depths")
        for value in values:
            histogram.observe(value)
        assert histogram.count == len(values)
        assert histogram.mean == pytest.approx(np.mean(values))
        assert histogram.std == pytest.approx(np.std(values))
        assert histogram.min == min(values)
        assert histogram.max == max(values)

    def test_empty_histogram_has_nan_moments(self):
        histogram = Histogram("depths")
        assert histogram.count == 0
        assert math.isnan(histogram.mean)
        assert math.isnan(histogram.std)

    def test_observe_many_numpy_fast_path(self):
        values = np.array([2.0, 8.0, 5.0, 11.0])
        fast = Histogram("fast")
        fast.observe_many(values)
        slow = Histogram("slow")
        for value in values:
            slow.observe(float(value))
        assert fast.count == slow.count
        assert fast.total == pytest.approx(slow.total)
        assert fast.sum_squares == pytest.approx(slow.sum_squares)
        assert (fast.min, fast.max) == (slow.min, slow.max)

    def test_observe_many_plain_iterable(self):
        histogram = Histogram("depths")
        histogram.observe_many([1, 2, 3])
        assert histogram.count == 3
        assert histogram.mean == pytest.approx(2.0)

    def test_observe_many_empty_array_is_noop(self):
        histogram = Histogram("depths")
        histogram.observe_many(np.array([]))
        assert histogram.count == 0

    def test_time_context_manager_observes_elapsed(self):
        histogram = Histogram("seconds")
        with histogram.time():
            pass
        assert histogram.count == 1
        assert histogram.min >= 0.0


class TestNullMetrics:
    def test_null_metrics_record_nothing(self):
        counter = NULL_REGISTRY.counter("anything")
        counter.inc(1000)
        assert counter.value == 0
        gauge = NULL_REGISTRY.gauge("anything")
        gauge.set(7)
        assert gauge.value == 0.0
        histogram = NULL_REGISTRY.histogram("anything")
        histogram.observe(1.0)
        histogram.observe_many(np.arange(5))
        with histogram.time():
            pass
        assert histogram.count == 0

    def test_null_metrics_are_shared_singletons(self):
        assert NULL_REGISTRY.counter("a") is NULL_REGISTRY.counter("b")
        assert NULL_REGISTRY.gauge("a") is NULL_REGISTRY.gauge("b")
        assert (
            NULL_REGISTRY.histogram("a") is NULL_REGISTRY.histogram("b")
        )


class TestHistogramQuantile:
    def test_empty_histogram_is_nan(self):
        assert math.isnan(Histogram("lat").quantile(0.5))

    def test_out_of_range_q_rejected(self):
        histogram = Histogram("lat")
        histogram.observe(1.0)
        for bad in (-0.1, 1.1, math.nan):
            with pytest.raises(ConfigurationError):
                histogram.quantile(bad)

    def test_single_observation_every_quantile(self):
        histogram = Histogram("lat")
        histogram.observe(0.037)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert histogram.quantile(q) == pytest.approx(0.037)

    def test_quantiles_monotone_in_q(self):
        histogram = Histogram("lat")
        histogram.observe_many(np.geomspace(1e-4, 10.0, 200))
        values = [histogram.quantile(q) for q in (0.1, 0.5, 0.9, 0.99)]
        assert values == sorted(values)

    def test_bucket_resolution_on_log2_grid(self):
        """A quantile lands within one log2 bucket of the true value."""
        histogram = Histogram("lat")
        histogram.observe_many(np.full(99, 0.001))
        histogram.observe(8.0)
        p50 = histogram.quantile(0.50)
        assert 0.0005 <= p50 <= 0.002
        p995 = histogram.quantile(0.995)
        assert 4.0 <= p995 <= 8.0

    def test_extremes_clamp_to_observed_min_max(self):
        histogram = Histogram("lat")
        histogram.observe_many([0.3, 0.5, 0.7])
        assert histogram.quantile(0.0) >= 0.3
        assert histogram.quantile(1.0) == pytest.approx(0.7)

    def test_null_histogram_quantile_is_nan(self):
        assert math.isnan(NULL_REGISTRY.histogram("x").quantile(0.5))

    def test_moments_only_histogram_is_nan_not_inf(self):
        """count > 0 with empty buckets (a moments-only merge) has no
        grid position to report — NaN, never an infinity."""
        histogram = Histogram("lat")
        histogram.count = 10
        histogram.total = 5.0
        for q in (0.0, 0.5, 1.0):
            assert math.isnan(histogram.quantile(q))

    def test_invalid_extrema_never_walk_off_the_grid(self):
        """A partially reconstructed histogram (buckets without
        min/max) reports the finite bucket bound, NaN for the
        open-ended overflow bucket."""
        histogram = Histogram("lat")
        histogram.count = 1
        histogram.buckets[5] += 1  # a finite-bound bucket
        value = histogram.quantile(0.5)
        assert math.isfinite(value)
        overflow = Histogram("lat")
        overflow.count = 1
        overflow.buckets[-1] += 1  # the +Inf bucket
        assert math.isnan(overflow.quantile(0.5))

    def test_quantile_rank_exceeding_buckets_clamps_to_max(self):
        """Bucket undercount (fewer bucket entries than ``count``)
        falls through to the observed max, not past it."""
        histogram = Histogram("lat")
        histogram.observe(2.0)
        histogram.count += 3  # moments merged without buckets
        assert histogram.quantile(1.0) == pytest.approx(2.0)


class TestHistogramExemplars:
    def test_untraced_observations_allocate_nothing(self):
        histogram = Histogram("lat")
        histogram.observe(0.5)
        histogram.observe_many([1.0, 2.0])
        assert histogram.exemplars is None

    def test_traced_observation_attaches_bucket_exemplar(self):
        from repro.obs.metrics import bucket_index

        histogram = Histogram("lat")
        histogram.observe(0.5, trace_id="ab" * 16)
        assert histogram.exemplars is not None
        trace_id, value, ts = histogram.exemplars[bucket_index(0.5)]
        assert trace_id == "ab" * 16
        assert value == 0.5
        assert ts > 0

    def test_last_writer_wins_per_bucket(self):
        from repro.obs.metrics import bucket_index

        histogram = Histogram("lat")
        histogram.observe(0.5, trace_id="a" * 32)
        histogram.observe(0.51, trace_id="b" * 32)
        histogram.observe(100.0, trace_id="c" * 32)
        index = bucket_index(0.5)
        assert histogram.exemplars[index][0] == "b" * 32
        assert histogram.exemplars[bucket_index(100.0)][0] == "c" * 32
        assert len(histogram.exemplars) == 2

    def test_null_histogram_swallows_trace_ids(self):
        histogram = NULL_REGISTRY.histogram("lat")
        histogram.observe(0.5, trace_id="ab" * 16)
        assert histogram.count == 0
        assert histogram.exemplars is None
