"""Tests for the OpenMetrics/Prometheus text exporter and parser."""

from __future__ import annotations

import math

import pytest

from repro.errors import ConfigurationError
from repro.obs import (
    MetricsRegistry,
    PrometheusExporter,
    parse_openmetrics,
    render_openmetrics,
)
from repro.obs.prom import histogram_buckets, sanitize_metric_name


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("sim.rounds").inc(4697)
    registry.gauge("diag.n_hat").set(987.5)
    registry.histogram("pet.gray_depth").observe_many([9, 10, 11])
    return registry


class TestNameSanitization:
    def test_dots_become_underscores_with_prefix(self):
        assert (
            sanitize_metric_name("pet.gray_depth")
            == "repro_pet_gray_depth"
        )

    def test_result_always_matches_grammar(self):
        import re

        grammar = re.compile(r"^[a-zA-Z_:][a-zA-Z0-9_:]*$")
        for weird in ("9lives", "a-b", "x y", "Ünïcode", ""):
            assert grammar.match(sanitize_metric_name(weird))


class TestRenderOpenmetrics:
    def test_counter_rendered_with_total_suffix(self):
        text = render_openmetrics(_populated_registry())
        assert "# TYPE repro_sim_rounds counter" in text
        assert "repro_sim_rounds_total 4697" in text

    def test_gauge_and_histogram_rendered(self):
        text = render_openmetrics(_populated_registry())
        assert "# TYPE repro_diag_n_hat gauge" in text
        assert "repro_diag_n_hat 987.5" in text
        assert "# TYPE repro_pet_gray_depth histogram" in text
        assert "repro_pet_gray_depth_count 3" in text
        assert "repro_pet_gray_depth_sum 30" in text

    def test_histogram_buckets_cumulative_with_inf_terminator(self):
        text = render_openmetrics(_populated_registry())
        # 9, 10, 11 land in the (8, 16] log2 bucket.
        assert 'repro_pet_gray_depth_bucket{le="16.0"} 3' in text
        assert 'repro_pet_gray_depth_bucket{le="+Inf"} 3' in text

    def test_terminated_by_eof(self):
        assert render_openmetrics(_populated_registry()).endswith(
            "# EOF\n"
        )

    def test_non_finite_values_use_spec_literals(self):
        registry = MetricsRegistry()
        registry.gauge("nan_gauge").set(math.nan)
        registry.gauge("inf_gauge").set(math.inf)
        registry.gauge("neg_inf_gauge").set(-math.inf)
        text = render_openmetrics(registry)
        assert "repro_nan_gauge NaN" in text
        assert "repro_inf_gauge +Inf" in text
        assert "repro_neg_inf_gauge -Inf" in text


class TestParseOpenmetrics:
    def test_round_trip_of_rendered_output(self):
        registry = _populated_registry()
        samples, types = parse_openmetrics(
            render_openmetrics(registry)
        )
        assert samples["repro_sim_rounds_total"] == 4697
        assert samples["repro_diag_n_hat"] == 987.5
        assert samples["repro_pet_gray_depth_count"] == 3
        assert samples["repro_pet_gray_depth_mean"] == 10.0
        assert types["repro_sim_rounds"] == "counter"
        assert types["repro_pet_gray_depth"] == "histogram"

    def test_histogram_bucket_array_round_trips(self):
        registry = _populated_registry()
        samples, _ = parse_openmetrics(render_openmetrics(registry))
        buckets = histogram_buckets(samples, "repro_pet_gray_depth")
        assert buckets == registry.histogram("pet.gray_depth").buckets

    def test_parsed_bucket_arrays_merge_like_the_registry(self):
        left = MetricsRegistry()
        left.histogram("h").observe_many([0.5, 3.0, 100.0])
        right = MetricsRegistry()
        right.histogram("h").observe_many([-1.0, 0.5, 7.5])
        parsed_left = histogram_buckets(
            parse_openmetrics(render_openmetrics(left))[0], "repro_h"
        )
        parsed_right = histogram_buckets(
            parse_openmetrics(render_openmetrics(right))[0], "repro_h"
        )
        merged = [a + b for a, b in zip(parsed_left, parsed_right)]
        left.merge(right.snapshot())
        assert merged == left.histogram("h").buckets

    def test_malformed_labels_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_openmetrics(
                '# TYPE a histogram\na_bucket{le=0.5} 1\n# EOF\n'
            )

    def test_non_finite_round_trip(self):
        registry = MetricsRegistry()
        registry.gauge("g").set(math.nan)
        samples, _ = parse_openmetrics(render_openmetrics(registry))
        assert math.isnan(samples["repro_g"])

    def test_missing_eof_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_openmetrics("# TYPE a gauge\na 1\n")

    def test_undeclared_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_openmetrics("orphan 1\n# EOF\n")

    def test_malformed_sample_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_openmetrics(
                "# TYPE a gauge\na 1 extra\n# EOF\n"
            )

    def test_content_after_eof_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_openmetrics(
                "# TYPE a gauge\na 1\n# EOF\na 2\n"
            )

    def test_bad_value_rejected(self):
        with pytest.raises(ConfigurationError):
            parse_openmetrics(
                "# TYPE a gauge\na wat\n# EOF\n"
            )


class TestExemplars:
    TRACE = "ab" * 16

    def _traced_registry(self) -> MetricsRegistry:
        registry = MetricsRegistry()
        latency = registry.histogram("serve.request.latency_seconds")
        latency.observe(0.02, trace_id=self.TRACE)
        latency.observe(4.0, trace_id="cd" * 16)
        latency.observe(0.5)  # untraced: no exemplar on this bucket
        registry.counter("serve.requests.ok").inc(3)
        return registry

    def test_rendered_bucket_carries_exemplar_suffix(self):
        text = render_openmetrics(self._traced_registry())
        assert f'# {{trace_id="{self.TRACE}"}} 0.02' in text

    def test_default_parse_still_two_tuple(self):
        """Callers unaware of exemplars keep the (samples, types)
        shape and simply skip the suffix."""
        result = parse_openmetrics(
            render_openmetrics(self._traced_registry())
        )
        assert len(result) == 2
        samples, types = result
        assert (
            types["repro_serve_request_latency_seconds"] == "histogram"
        )

    def test_with_exemplars_returns_third_mapping(self):
        registry = self._traced_registry()
        _, _, exemplars = parse_openmetrics(
            render_openmetrics(registry), with_exemplars=True
        )
        assert len(exemplars) == 2
        traced = {
            exemplar[0] for exemplar in exemplars.values()
        }
        assert traced == {self.TRACE, "cd" * 16}

    def test_exemplar_on_non_bucket_sample_rejected(self):
        with pytest.raises(ConfigurationError, match="non-bucket"):
            parse_openmetrics(
                '# TYPE a gauge\na 1 # {trace_id="ff"} 1\n# EOF\n',
                with_exemplars=True,
            )

    def test_malformed_exemplar_rejected(self):
        with pytest.raises(ConfigurationError, match="exemplar"):
            parse_openmetrics(
                "# TYPE a histogram\n"
                'a_bucket{le="+Inf"} 1 # {trace_id=} 1\n'
                "# EOF\n",
                with_exemplars=True,
            )

    def test_parse_export_parse_identity(self):
        """The full round trip: parse → rebuild → re-render reaches a
        fixed point, exemplars included."""
        from repro.obs import registry_from_openmetrics

        first = render_openmetrics(self._traced_registry())
        rebuilt = registry_from_openmetrics(first)
        second = render_openmetrics(rebuilt)
        parsed_first = parse_openmetrics(first, with_exemplars=True)
        parsed_second = parse_openmetrics(second, with_exemplars=True)
        assert parsed_first == parsed_second

    def test_rebuilt_registry_restores_bucket_exemplars(self):
        from repro.obs import registry_from_openmetrics
        from repro.obs.metrics import bucket_index

        registry = self._traced_registry()
        rebuilt = registry_from_openmetrics(
            render_openmetrics(registry)
        )
        latency = rebuilt.histogram("serve_request_latency_seconds")
        assert latency.exemplars is not None
        assert (
            latency.exemplars[bucket_index(0.02)][0] == self.TRACE
        )


class TestPrometheusExporter:
    def test_export_writes_parseable_file(self, tmp_path):
        path = tmp_path / "metrics.prom"
        PrometheusExporter(str(path)).export(_populated_registry())
        samples, _ = parse_openmetrics(path.read_text())
        assert samples["repro_sim_rounds_total"] == 4697

    def test_export_replaces_rather_than_appends(self, tmp_path):
        path = tmp_path / "metrics.prom"
        exporter = PrometheusExporter(str(path))
        exporter.export(_populated_registry())
        exporter.export(_populated_registry())
        # Still exactly one EOF: the scrape file is a snapshot.
        assert path.read_text().count("# EOF") == 1
