"""Tests for the propagatable trace context and its identifiers."""

from __future__ import annotations

import re

import pytest

from repro.obs.tracectx import (
    TraceContext,
    _EntropyPool,
    current_trace,
    new_span_id,
    new_trace_id,
    reset_trace_context,
    set_trace_context,
    start_trace,
    use_trace_context,
)

_HEX32 = re.compile(r"^[0-9a-f]{32}$")
_HEX16 = re.compile(r"^[0-9a-f]{16}$")


class TestIdentifiers:
    def test_trace_id_is_32_lowercase_hex(self):
        assert _HEX32.match(new_trace_id())

    def test_span_id_is_16_lowercase_hex(self):
        assert _HEX16.match(new_span_id())

    def test_ids_do_not_repeat(self):
        ids = {new_trace_id() for _ in range(512)}
        assert len(ids) == 512

    def test_pool_survives_refill_boundary(self):
        pool = _EntropyPool()
        seen = set()
        # 4096-byte buffer / 16 bytes = 256 ids per refill; crossing
        # the boundary several times must keep producing fresh ids of
        # the requested width.
        for _ in range(1000):
            chunk = pool.take(16)
            assert len(chunk) == 16
            seen.add(chunk)
        assert len(seen) == 1000


class TestTraceContext:
    def test_root_has_no_parent(self):
        ctx = TraceContext.root()
        assert _HEX32.match(ctx.trace_id)
        assert _HEX16.match(ctx.span_id)
        assert ctx.parent_id is None

    def test_child_shares_trace_and_links_parent(self):
        parent = TraceContext.root()
        child = parent.child()
        assert child.trace_id == parent.trace_id
        assert child.parent_id == parent.span_id
        assert child.span_id != parent.span_id

    def test_contexts_are_immutable(self):
        ctx = TraceContext.root()
        with pytest.raises(AttributeError):
            ctx.trace_id = "deadbeef"

    def test_dict_round_trip(self):
        ctx = TraceContext.root().child()
        assert TraceContext.from_dict(ctx.to_dict()) == ctx

    def test_root_round_trip_keeps_none_parent(self):
        ctx = TraceContext.root()
        restored = TraceContext.from_dict(ctx.to_dict())
        assert restored == ctx
        assert restored.parent_id is None

    @pytest.mark.parametrize(
        "data",
        [None, {}, {"trace_id": "abc"}, {"span_id": "abc"}],
    )
    def test_from_dict_tolerates_missing_identity(self, data):
        assert TraceContext.from_dict(data) is None


class TestCurrentContext:
    def test_default_is_none(self):
        assert current_trace() is None

    def test_use_trace_context_scopes_and_restores(self):
        ctx = TraceContext.root()
        with use_trace_context(ctx) as active:
            assert active is ctx
            assert current_trace() is ctx
        assert current_trace() is None

    def test_use_trace_context_nests(self):
        outer = TraceContext.root()
        with use_trace_context(outer):
            inner = outer.child()
            with use_trace_context(inner):
                assert current_trace() is inner
            assert current_trace() is outer

    def test_use_trace_context_accepts_none(self):
        """``None`` suspends tracing for the body."""
        with use_trace_context(TraceContext.root()):
            with use_trace_context(None):
                assert current_trace() is None

    def test_restores_on_exception(self):
        with pytest.raises(RuntimeError):
            with use_trace_context(TraceContext.root()):
                raise RuntimeError("boom")
        assert current_trace() is None

    def test_set_and_reset_token_protocol(self):
        ctx = TraceContext.root()
        token = set_trace_context(ctx)
        try:
            assert current_trace() is ctx
        finally:
            reset_trace_context(token)
        assert current_trace() is None

    def test_start_trace_installs_a_root(self):
        token = set_trace_context(None)
        try:
            ctx = start_trace()
            assert ctx.parent_id is None
            assert current_trace() is ctx
        finally:
            reset_trace_context(token)
