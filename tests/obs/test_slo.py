"""Tests for the SLO error-budget tracker and its burn-rate gauges."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.obs import MetricsRegistry
from repro.obs.slo import PUBLISH_INTERVAL, SloTracker

#: A fixed "now" keeps the ring windows deterministic in tests.
T0 = 1_000_000.0


def _fed_tracker(good: int, bad: int, **kwargs) -> SloTracker:
    tracker = SloTracker(**kwargs)
    for _ in range(good):
        tracker.record(True, now=T0)
    for _ in range(bad):
        tracker.record(False, now=T0)
    return tracker


class TestValidation:
    @pytest.mark.parametrize("objective", [0.0, 1.0, -0.5, 1.5])
    def test_objective_must_be_open_interval(self, objective):
        with pytest.raises(ConfigurationError, match="objective"):
            SloTracker(objective=objective)

    @pytest.mark.parametrize(
        "kwargs",
        [{"fast_window": 0}, {"slow_window": -1}],
    )
    def test_windows_must_be_positive(self, kwargs):
        with pytest.raises(ConfigurationError, match="window"):
            SloTracker(**kwargs)


class TestBurnRate:
    def test_idle_tracker_burns_nothing(self):
        tracker = SloTracker()
        assert tracker.burn_rate(tracker.fast, now=T0) == 0.0

    def test_all_good_burns_nothing(self):
        tracker = _fed_tracker(good=50, bad=0)
        assert tracker.burn_rate(tracker.fast, now=T0) == 0.0

    def test_burn_rate_is_bad_fraction_over_budget(self):
        # 2 bad / 100 total = 2% bad against a 1% budget: rate 2.0.
        tracker = _fed_tracker(good=98, bad=2, objective=0.99)
        assert tracker.burn_rate(tracker.fast, now=T0) == pytest.approx(
            2.0
        )

    def test_rate_exactly_one_exhausts_the_budget(self):
        tracker = _fed_tracker(good=99, bad=1, objective=0.99)
        assert tracker.burn_rate(tracker.fast, now=T0) == pytest.approx(
            1.0
        )

    def test_fast_window_forgets_old_failures(self):
        tracker = SloTracker(fast_window=10)
        tracker.record(False, now=T0)
        tracker.record(True, now=T0 + 30.0)
        # 30s later the failure has aged out of the 10s fast window
        # but still counts in the 3600s slow window.
        assert tracker.burn_rate(tracker.fast, now=T0 + 30.0) == 0.0
        assert tracker.burn_rate(tracker.slow, now=T0 + 30.0) > 0.0

    def test_ring_slot_reuse_resets_stale_counts(self):
        tracker = SloTracker(fast_window=5)
        tracker.record(False, now=T0)
        # Same slot index one full window later must not inherit the
        # old bad count.
        tracker.record(True, now=T0 + 5.0)
        good, bad = tracker.fast.totals(T0 + 5.0)
        assert (good, bad) == (1, 0)

    def test_lifetime_totals_accumulate(self):
        tracker = _fed_tracker(good=3, bad=2)
        assert tracker.total_good == 3
        assert tracker.total_bad == 2


class TestPublish:
    def test_publish_writes_all_gauges(self):
        registry = MetricsRegistry()
        tracker = _fed_tracker(good=98, bad=2, objective=0.99)
        tracker.publish(registry, now=T0, force=True)
        gauge = registry.gauge
        assert gauge("serve.slo.burn_rate_fast").value == pytest.approx(
            2.0
        )
        assert gauge("serve.slo.burn_rate_slow").value == pytest.approx(
            2.0
        )
        assert gauge("serve.slo.good_fast").value == 98
        assert gauge("serve.slo.bad_fast").value == 2
        assert gauge("serve.slo.budget_remaining_fast").value == 0.0
        assert gauge("serve.slo.objective").value == 0.99

    def test_budget_remaining_floors_at_zero_not_negative(self):
        registry = MetricsRegistry()
        tracker = _fed_tracker(good=0, bad=10)
        tracker.publish(registry, now=T0, force=True)
        assert (
            registry.gauge("serve.slo.budget_remaining_fast").value
            == 0.0
        )

    def test_unforced_publish_throttled_within_interval(self):
        registry = MetricsRegistry()
        tracker = SloTracker()
        tracker.record(True, now=T0)
        tracker.publish(registry, now=T0)
        tracker.record(False, now=T0)
        # Second unforced publish lands inside PUBLISH_INTERVAL: the
        # gauges must still show the first publish's view.
        tracker.publish(registry, now=T0 + PUBLISH_INTERVAL / 2)
        assert registry.gauge("serve.slo.bad_fast").value == 0

    def test_unforced_publish_fires_after_interval(self):
        registry = MetricsRegistry()
        tracker = SloTracker()
        tracker.record(True, now=T0)
        tracker.publish(registry, now=T0)
        tracker.record(False, now=T0)
        tracker.publish(registry, now=T0 + PUBLISH_INTERVAL + 0.01)
        assert registry.gauge("serve.slo.bad_fast").value == 1

    def test_forced_publish_bypasses_throttle(self):
        registry = MetricsRegistry()
        tracker = SloTracker()
        tracker.record(True, now=T0)
        tracker.publish(registry, now=T0)
        tracker.record(False, now=T0)
        tracker.publish(registry, now=T0, force=True)
        assert registry.gauge("serve.slo.bad_fast").value == 1


class TestMergeSloGauges:
    """Edge cases of re-deriving fleet gauges from shard windows."""

    def _publish_dict(self, tracker) -> dict:
        registry = MetricsRegistry()
        tracker.publish(registry, now=T0, force=True)
        snapshot = registry.snapshot()
        return {"gauges": dict(snapshot["gauges"])}

    def test_empty_snapshot_list_publishes_idle_fleet(self):
        from repro.obs.slo import DEFAULT_OBJECTIVE, merge_slo_gauges

        registry = MetricsRegistry()
        merge_slo_gauges(registry, [])
        gauge = registry.gauge
        assert gauge("serve.slo.burn_rate_fast").value == 0.0
        assert gauge("serve.slo.good_fast").value == 0.0
        assert gauge("serve.slo.bad_fast").value == 0.0
        assert gauge("serve.slo.budget_remaining_fast").value == 1.0
        assert gauge("serve.slo.objective").value == DEFAULT_OBJECTIVE

    def test_zero_traffic_shard_does_not_skew_the_merge(self):
        from repro.obs.slo import merge_slo_gauges

        registry = MetricsRegistry()
        busy = self._publish_dict(_fed_tracker(good=98, bad=2))
        idle = self._publish_dict(SloTracker())
        merge_slo_gauges(registry, [busy, idle])
        assert registry.gauge(
            "serve.slo.burn_rate_fast"
        ).value == pytest.approx(2.0)
        assert registry.gauge("serve.slo.good_fast").value == 98
        assert registry.gauge("serve.slo.bad_fast").value == 2

    def test_snapshot_without_gauges_counts_as_zero_traffic(self):
        from repro.obs.slo import merge_slo_gauges

        registry = MetricsRegistry()
        busy = self._publish_dict(_fed_tracker(good=99, bad=1))
        merge_slo_gauges(registry, [busy, {"gauges": {}}])
        assert registry.gauge(
            "serve.slo.burn_rate_fast"
        ).value == pytest.approx(1.0)

    def test_single_shard_fleet_equals_unsharded_publish(self):
        from repro.obs.slo import merge_slo_gauges

        tracker = _fed_tracker(good=97, bad=3, objective=0.98)
        direct = MetricsRegistry()
        tracker.publish(direct, now=T0, force=True)
        merged = MetricsRegistry()
        merge_slo_gauges(merged, [self._publish_dict(tracker)])
        names = [
            "serve.slo.burn_rate_fast",
            "serve.slo.burn_rate_slow",
            "serve.slo.good_fast",
            "serve.slo.bad_fast",
            "serve.slo.good_slow",
            "serve.slo.bad_slow",
            "serve.slo.budget_remaining_fast",
            "serve.slo.objective",
        ]
        for name in names:
            assert merged.gauge(name).value == pytest.approx(
                direct.gauge(name).value
            ), name

    def test_per_shard_burn_rate_gauge_from_windows(self):
        from repro.obs.slo import publish_shard_slo

        registry = MetricsRegistry()
        shard = self._publish_dict(_fed_tracker(good=96, bad=4))
        publish_shard_slo(registry, 2, shard["gauges"])
        assert registry.gauge(
            "serve.shard.2.burn_rate_fast"
        ).value == pytest.approx(4.0)
        publish_shard_slo(registry, 3, {})
        assert registry.gauge("serve.shard.3.burn_rate_fast").value == 0.0
