"""Tests for the terminal and HTML diagnostics reports."""

from __future__ import annotations

import numpy as np

from repro.analysis.mellin import gray_depth_cdf
from repro.core.accuracy import rounds_required
from repro.core.search import (
    slot_outcome_tables,
    slots_lookup_table,
    strategy_for,
)
from repro.obs import (
    EstimatorHealth,
    MetricsRegistry,
    RoundTraceRecorder,
    render_html_report,
    render_text_report,
    write_html_report,
)


def _diagnosed_registry(
    n: int = 1000, rounds: int = 500
) -> MetricsRegistry:
    registry = MetricsRegistry()
    recorder = RoundTraceRecorder(registry=registry)
    health = EstimatorHealth(registry=registry)
    registry.attach_diagnostics(round_trace=recorder, health=health)
    height = 32
    rng = np.random.default_rng(13)
    uniforms = rng.random(rounds)
    depths = np.searchsorted(
        gray_depth_cdf(n, height), uniforms, side="left"
    ).astype(np.int64)
    depths[-1] = 31  # plant one unmistakable outlier
    strategy = strategy_for(True)
    slots = slots_lookup_table(strategy, height)
    busy, idle = slot_outcome_tables(strategy, height)
    recorder.record_sampled_run(
        0, depths, uniforms, n, height, True, slots, busy, idle
    )
    health.observe_depths(depths)
    registry.histogram("pet.gray_depth").observe_many(depths)
    for _ in range(8):
        health.observe_estimate(float(n), rounds=4697)
    health.observe_estimate(5.0 * n, rounds=4697)  # drift
    return registry


class TestTextReport:
    def test_all_sections_present(self):
        text = render_text_report(_diagnosed_registry())
        for section in (
            "Convergence",
            "Outlier rounds",
            "Drift alerts",
            "Metrics",
            "Round trace",
        ):
            assert section in text

    def test_convergence_matches_accuracy_predictions(self):
        text = render_text_report(_diagnosed_registry(rounds=500))
        required = rounds_required(0.05, 0.01)
        assert f"{required:,}" in text
        assert f"{required - 500:,}" in text  # rounds remaining

    def test_outlier_and_drift_rows_rendered(self):
        text = render_text_report(_diagnosed_registry())
        assert "none recorded" not in text
        assert "tail prob" in text
        assert "z score" in text

    def test_empty_registry_renders_gracefully(self):
        text = render_text_report(MetricsRegistry())
        assert "no gray-depth observations recorded" in text
        assert "not attached" in text


class TestHtmlReport:
    def test_self_contained_document(self):
        html_text = render_html_report(_diagnosed_registry())
        assert html_text.startswith("<!DOCTYPE html>")
        assert "<style>" in html_text
        assert "src=" not in html_text  # no external assets
        assert "<script" not in html_text

    def test_convergence_section_matches_accuracy_predictions(self):
        html_text = render_html_report(_diagnosed_registry(rounds=500))
        required = rounds_required(0.05, 0.01)
        assert 'id="convergence"' in html_text
        assert f"{required:,}" in html_text
        assert f"{required - 500:,}" in html_text

    def test_converged_badge_flips_with_round_count(self):
        not_converged = render_html_report(
            _diagnosed_registry(rounds=500)
        )
        assert "not converged" in not_converged
        converged = render_html_report(
            _diagnosed_registry(rounds=rounds_required(0.05, 0.01))
        )
        assert '<span class="ok">converged</span>' in converged

    def test_fallback_convergence_from_histogram(self):
        # No health monitor attached: the section is reconstructed
        # from the pet.gray_depth histogram.
        registry = MetricsRegistry()
        registry.histogram("pet.gray_depth").observe_many(
            np.full(100, 10)
        )
        html_text = render_html_report(registry)
        assert "pet.gray_depth histogram" in html_text
        assert f"{rounds_required(0.05, 0.01):,}" in html_text

    def test_values_are_escaped(self):
        registry = MetricsRegistry()
        registry.event(
            "monitor.drift",
            epoch=1,
            estimate="<img src=x>",
            smoothed=1.0,
            z_score=9.0,
        )
        html_text = render_html_report(registry)
        assert "<img" not in html_text
        assert "&lt;img" in html_text

    def test_write_html_report(self, tmp_path):
        path = tmp_path / "report.html"
        write_html_report(str(path), _diagnosed_registry())
        assert path.read_text().startswith("<!DOCTYPE html>")
