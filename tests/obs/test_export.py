"""Tests for the exporters (in-memory, JSON-lines, console summary)."""

from __future__ import annotations

import io
import json
import math

from repro.obs import (
    ConsoleSummaryExporter,
    InMemoryExporter,
    JsonLinesExporter,
    MetricsRegistry,
)
from repro.obs.export import iter_records


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("sim.slots").inc(100)
    registry.gauge("experiment.rounds_per_second").set(1234.5)
    registry.histogram("pet.gray_depth").observe_many([3, 4, 5])
    with registry.span("cell", tier="batched", n=50):
        pass
    registry.event("cell", n=50, n_hat=51.25)
    return registry


#: Record kinds in export order — the finished span contributes both a
#: ``span.cell.seconds`` histogram and the span record itself.
EXPECTED_KINDS = [
    "counter", "gauge", "histogram", "histogram", "span", "event",
]


class TestIterRecords:
    def test_all_kinds_present_and_tagged(self):
        kinds = [r["kind"] for r in iter_records(_populated_registry())]
        assert kinds == EXPECTED_KINDS


class TestInMemoryExporter:
    def test_collects_and_filters_by_kind(self):
        exporter = InMemoryExporter()
        exporter.export(_populated_registry())
        assert len(exporter.records) == len(EXPECTED_KINDS)
        (counter,) = exporter.of_kind("counter")
        assert counter == {
            "kind": "counter", "name": "sim.slots", "value": 100,
        }
        (span,) = exporter.of_kind("span")
        assert span["path"] == "cell"
        assert span["attributes"] == {"tier": "batched", "n": 50}
        (event,) = exporter.of_kind("event")
        assert event["n_hat"] == 51.25


class TestJsonLinesExporter:
    def test_stream_round_trip(self):
        sink = io.StringIO()
        JsonLinesExporter(sink).export(_populated_registry())
        lines = sink.getvalue().strip().split("\n")
        records = [json.loads(line) for line in lines]
        assert [r["kind"] for r in records] == EXPECTED_KINDS
        histogram = records[2]
        assert histogram["name"] == "pet.gray_depth"
        assert histogram["count"] == 3
        assert histogram["mean"] == 4.0

    def test_file_destination_appends(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        exporter = JsonLinesExporter(str(path))
        exporter.export(_populated_registry())
        exporter.export(_populated_registry())
        lines = path.read_text().strip().split("\n")
        assert len(lines) == 2 * len(EXPECTED_KINDS)  # appended, not truncated

    def test_non_finite_floats_become_null(self):
        registry = MetricsRegistry()
        registry.gauge("bad").set(math.nan)
        registry.event("e", seconds=math.inf)
        sink = io.StringIO()
        JsonLinesExporter(sink).export(registry)
        records = [
            json.loads(line)
            for line in sink.getvalue().strip().split("\n")
        ]
        by_kind = {r["kind"]: r for r in records}
        assert by_kind["gauge"]["value"] is None
        assert by_kind["event"]["seconds"] is None


class TestConsoleSummaryExporter:
    def test_render_mentions_every_metric(self):
        rendered = ConsoleSummaryExporter().render(
            _populated_registry()
        )
        assert "sim.slots" in rendered
        assert "100" in rendered
        assert "experiment.rounds_per_second" in rendered
        assert "pet.gray_depth" in rendered

    def test_export_writes_to_stream(self):
        sink = io.StringIO()
        ConsoleSummaryExporter(sink).export(_populated_registry())
        assert "metrics summary" in sink.getvalue()

    def test_empty_registry_renders_placeholder(self):
        rendered = ConsoleSummaryExporter().render(MetricsRegistry())
        assert "no metrics recorded" in rendered
