"""Tests for the exporters (in-memory, JSON-lines, console summary)."""

from __future__ import annotations

import io
import json
import math

from repro.obs import (
    ConsoleSummaryExporter,
    InMemoryExporter,
    JsonLinesExporter,
    MetricsRegistry,
    decode_value,
)
from repro.obs.export import iter_records


def _populated_registry() -> MetricsRegistry:
    registry = MetricsRegistry()
    registry.counter("sim.slots").inc(100)
    registry.gauge("experiment.rounds_per_second").set(1234.5)
    registry.histogram("pet.gray_depth").observe_many([3, 4, 5])
    with registry.span("cell", tier="batched", n=50):
        pass
    registry.event("cell", n=50, n_hat=51.25)
    return registry


#: Record kinds in export order — the finished span contributes both a
#: ``span.cell.seconds`` histogram and the span record itself.
EXPECTED_KINDS = [
    "counter", "gauge", "histogram", "histogram", "span", "event",
]


class TestIterRecords:
    def test_all_kinds_present_and_tagged(self):
        kinds = [r["kind"] for r in iter_records(_populated_registry())]
        assert kinds == EXPECTED_KINDS

    def test_schema_triplet_on_every_record(self):
        for record in iter_records(_populated_registry()):
            assert record["type"] == record["kind"]
            assert "name" in record
            assert isinstance(record["ts"], float)


class TestInMemoryExporter:
    def test_collects_and_filters_by_kind(self):
        exporter = InMemoryExporter()
        exporter.export(_populated_registry())
        assert len(exporter.records) == len(EXPECTED_KINDS)
        (counter,) = exporter.of_kind("counter")
        assert counter == {
            "kind": "counter",
            "type": "counter",
            "name": "sim.slots",
            "ts": counter["ts"],
            "value": 100,
        }
        (span,) = exporter.of_kind("span")
        assert span["path"] == "cell"
        assert span["attributes"] == {"tier": "batched", "n": 50}
        (event,) = exporter.of_kind("event")
        assert event["n_hat"] == 51.25


class TestJsonLinesExporter:
    def test_stream_round_trip(self):
        sink = io.StringIO()
        JsonLinesExporter(sink).export(_populated_registry())
        lines = sink.getvalue().strip().split("\n")
        records = [json.loads(line) for line in lines]
        assert [r["kind"] for r in records] == EXPECTED_KINDS
        histogram = records[2]
        assert histogram["name"] == "pet.gray_depth"
        assert histogram["count"] == 3
        assert histogram["mean"] == 4.0

    def test_histogram_records_carry_bucket_arrays(self):
        from repro.obs.metrics import BUCKET_COUNT

        sink = io.StringIO()
        JsonLinesExporter(sink).export(_populated_registry())
        records = [
            json.loads(line)
            for line in sink.getvalue().strip().split("\n")
        ]
        histogram = next(
            r for r in records if r.get("name") == "pet.gray_depth"
        )
        assert len(histogram["buckets"]) == BUCKET_COUNT
        assert sum(histogram["buckets"]) == 3

    def test_snapshot_record_kind(self):
        sink = io.StringIO()
        snapshot = _populated_registry().snapshot(worker_id="pid:3")
        JsonLinesExporter(sink).export_snapshot(snapshot)
        (record,) = [
            json.loads(line)
            for line in sink.getvalue().strip().split("\n")
        ]
        assert record["kind"] == "snapshot"
        assert record["name"] == "pid:3"
        assert record["counters"] == {"sim.slots": 100}
        assert record["histograms"]["pet.gray_depth"]["count"] == 3

    def test_heartbeat_record_kind(self):
        from repro.obs import Heartbeat

        sink = io.StringIO()
        beats = [
            Heartbeat(
                worker_id="pid:5", cells_done=1, n=100, ts=12.5
            ),
            Heartbeat(worker_id="pid:6", cells_done=1, n=200),
        ]
        JsonLinesExporter(sink).export_heartbeats(beats)
        records = [
            json.loads(line)
            for line in sink.getvalue().strip().split("\n")
        ]
        assert [r["kind"] for r in records] == ["heartbeat"] * 2
        assert records[0]["worker_id"] == "pid:5"
        assert records[0]["ts"] == 12.5
        assert records[1]["n"] == 200

    def test_file_destination_appends(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        exporter = JsonLinesExporter(str(path))
        exporter.export(_populated_registry())
        exporter.export(_populated_registry())
        lines = path.read_text().strip().split("\n")
        assert len(lines) == 2 * len(EXPECTED_KINDS)  # appended, not truncated

    def test_non_finite_floats_round_trip_as_sentinels(self):
        registry = MetricsRegistry()
        registry.gauge("bad").set(math.nan)
        registry.event("e", seconds=math.inf, drop=-math.inf)
        sink = io.StringIO()
        JsonLinesExporter(sink).export(registry)
        records = [
            json.loads(line)
            for line in sink.getvalue().strip().split("\n")
        ]
        by_kind = {r["kind"]: r for r in records}
        assert by_kind["gauge"]["value"] == "NaN"
        assert math.isnan(decode_value(by_kind["gauge"]["value"]))
        assert decode_value(by_kind["event"]["seconds"]) == math.inf
        assert decode_value(by_kind["event"]["drop"]) == -math.inf

    def test_histogram_with_non_finite_stats_round_trips(self):
        # An empty histogram's min/max are +/-inf and mean/std NaN;
        # the JSONL encoding must survive a strict JSON parse and
        # decode back to the same non-finite values.
        registry = MetricsRegistry()
        registry.histogram("empty")
        sink = io.StringIO()
        JsonLinesExporter(sink).export(registry)
        (line,) = sink.getvalue().strip().split("\n")
        record = json.loads(line)  # strict parse: no bare NaN/Infinity
        assert record["kind"] == "histogram"
        assert math.isnan(decode_value(record["mean"]))
        assert decode_value(record["min"]) == math.inf
        assert decode_value(record["max"]) == -math.inf

    def test_context_manager_closes_file(self, tmp_path):
        path = tmp_path / "metrics.jsonl"
        with JsonLinesExporter(str(path)) as exporter:
            exporter.export(_populated_registry())
            handle = exporter._handle
            assert handle is not None and not handle.closed
        assert handle.closed
        assert exporter._handle is None
        lines = path.read_text().strip().split("\n")
        assert len(lines) == len(EXPECTED_KINDS)

    def test_close_leaves_caller_streams_open(self):
        sink = io.StringIO()
        with JsonLinesExporter(sink) as exporter:
            exporter.export(_populated_registry())
        assert not sink.closed  # caller owns the stream's lifecycle


class TestConsoleSummaryExporter:
    def test_render_mentions_every_metric(self):
        rendered = ConsoleSummaryExporter().render(
            _populated_registry()
        )
        assert "sim.slots" in rendered
        assert "100" in rendered
        assert "experiment.rounds_per_second" in rendered
        assert "pet.gray_depth" in rendered

    def test_export_writes_to_stream(self):
        sink = io.StringIO()
        ConsoleSummaryExporter(sink).export(_populated_registry())
        assert "metrics summary" in sink.getvalue()

    def test_empty_registry_renders_placeholder(self):
        rendered = ConsoleSummaryExporter().render(MetricsRegistry())
        assert "no metrics recorded" in rendered
