"""Phase profiler: accumulation, registry mirroring, the null path."""

from __future__ import annotations

import json

from repro.obs.profile import (
    KERNEL_PHASES,
    NULL_PROFILER,
    NullPhaseProfiler,
    PhaseProfiler,
    active_profiler,
    registry_phase_report,
    write_phase_json,
)
from repro.obs.registry import NULL_REGISTRY, MetricsRegistry


class TestPhaseProfiler:
    def test_accumulates_seconds_and_calls(self):
        profiler = PhaseProfiler()
        for _ in range(3):
            with profiler.phase("hash_passes"):
                pass
        stats = profiler.stats("hash_passes")
        assert stats.calls == 3
        assert stats.seconds >= 0
        assert profiler.total_seconds == stats.seconds

    def test_report_fractions_sum_to_one(self):
        profiler = PhaseProfiler()
        for name in KERNEL_PHASES:
            with profiler.phase(name):
                sum(range(1000))
        report = profiler.report()
        assert set(report) == set(KERNEL_PHASES)
        total = sum(row["fraction"] for row in report.values())
        assert abs(total - 1.0) < 1e-9

    def test_exception_inside_phase_still_recorded(self):
        profiler = PhaseProfiler()
        try:
            with profiler.phase("reduction"):
                raise ValueError("boom")
        except ValueError:
            pass
        assert profiler.stats("reduction").calls == 1

    def test_mirrors_into_registry_histograms(self):
        registry = MetricsRegistry()
        profiler = PhaseProfiler(registry=registry)
        with profiler.phase("seed_matrix"):
            pass
        with profiler.phase("seed_matrix"):
            pass
        histograms = registry.snapshot()["histograms"]
        assert histograms["profile.seed_matrix.seconds"]["count"] == 2

    def test_track_alloc_records_net_allocations(self):
        profiler = PhaseProfiler(track_alloc=True)
        try:
            with profiler.phase("hash_passes"):
                blob = [bytearray(1 << 16) for _ in range(8)]
            assert blob
            assert profiler.stats("hash_passes").alloc_bytes > 0
        finally:
            profiler.close()

    def test_write_json_artifact(self, tmp_path):
        profiler = PhaseProfiler()
        with profiler.phase("finalize"):
            pass
        path = tmp_path / "phases.json"
        profiler.write_json(str(path), extra={"experiment": "fig4"})
        payload = json.loads(path.read_text())
        assert payload["experiment"] == "fig4"
        assert payload["phases"]["finalize"]["calls"] == 1

    def test_profiler_is_truthy_null_is_falsy(self):
        assert PhaseProfiler()
        assert not NullPhaseProfiler()
        assert not NULL_PROFILER


class TestNullPath:
    def test_null_phase_context_is_shared_and_inert(self):
        one = NULL_PROFILER.phase("seed_matrix")
        two = NULL_PROFILER.phase("hash_passes")
        assert one is two
        with one:
            pass  # no state, no error

    def test_active_profiler_resolution(self):
        registry = MetricsRegistry()
        assert active_profiler(registry) is NULL_PROFILER
        assert active_profiler(None) is NULL_PROFILER
        assert active_profiler(NULL_REGISTRY) is NULL_PROFILER
        profiler = PhaseProfiler(registry=registry)
        registry.attach_diagnostics(profiler=profiler)
        assert active_profiler(registry) is profiler


class TestRegistryPhaseReport:
    def test_report_reconstructed_from_histograms(self):
        registry = MetricsRegistry()
        profiler = PhaseProfiler(registry=registry)
        for _ in range(4):
            with profiler.phase("hash_passes"):
                pass
        with profiler.phase("reduction"):
            pass
        report = registry_phase_report(registry)
        assert report["hash_passes"]["calls"] == 4
        assert report["reduction"]["calls"] == 1
        fractions = sum(row["fraction"] for row in report.values())
        assert abs(fractions - 1.0) < 1e-9

    def test_report_survives_snapshot_merge(self):
        # The cross-process path: worker profiles merge into the
        # parent registry and the report reads the merged totals.
        parent = MetricsRegistry()
        for worker_index in range(2):
            worker = MetricsRegistry()
            profiler = PhaseProfiler(registry=worker)
            with profiler.phase("seed_matrix"):
                pass
            parent.merge(
                worker.snapshot(worker_id=f"pid:{worker_index}")
            )
        report = registry_phase_report(parent)
        assert report["seed_matrix"]["calls"] == 2

    def test_write_phase_json_prefers_registry_totals(self, tmp_path):
        registry = MetricsRegistry()
        profiler = PhaseProfiler(registry=registry)
        with profiler.phase("finalize"):
            pass
        path = tmp_path / "merged.json"
        write_phase_json(
            str(path), registry, profiler=profiler, extra={"k": "v"}
        )
        payload = json.loads(path.read_text())
        assert payload["k"] == "v"
        assert payload["phases"]["finalize"]["calls"] == 1
        assert payload["track_alloc"] is False
