"""Tests for mobile tag fields and the mobility model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.tags.mobility import MobileTagField, MobilityModel


class TestMobileTagField:
    def test_random_field_covers_everyone(self):
        ids = np.arange(500, dtype=np.uint64)
        field = MobileTagField.random(
            ids, num_readers=4, overlap_probability=0.3,
            rng=np.random.default_rng(0),
        )
        assert field.covered_tags == set(range(500))

    def test_overlap_probability_zero_means_no_duplicates(self):
        ids = np.arange(300, dtype=np.uint64)
        field = MobileTagField.random(
            ids, num_readers=4, overlap_probability=0.0,
            rng=np.random.default_rng(1),
        )
        assert field.duplicated_tags == set()

    def test_overlap_probability_one_duplicates_everyone(self):
        ids = np.arange(300, dtype=np.uint64)
        field = MobileTagField.random(
            ids, num_readers=4, overlap_probability=1.0,
            rng=np.random.default_rng(2),
        )
        assert field.duplicated_tags == set(range(300))

    def test_single_reader_never_duplicates(self):
        ids = np.arange(50, dtype=np.uint64)
        field = MobileTagField.random(
            ids, num_readers=1, overlap_probability=1.0,
            rng=np.random.default_rng(3),
        )
        assert field.duplicated_tags == set()

    def test_tags_of_reader_partition(self):
        ids = np.arange(200, dtype=np.uint64)
        field = MobileTagField.random(
            ids, num_readers=3, overlap_probability=0.0,
            rng=np.random.default_rng(4),
        )
        per_reader = [
            set(field.tags_of_reader(i)) for i in range(3)
        ]
        assert set().union(*per_reader) == set(range(200))
        assert sum(len(s) for s in per_reader) == 200

    def test_reader_index_validation(self):
        field = MobileTagField(num_readers=2)
        with pytest.raises(ConfigurationError):
            field.tags_of_reader(2)
        with pytest.raises(ConfigurationError):
            field.tags_of_reader(-1)

    def test_rejects_zero_readers(self):
        with pytest.raises(ConfigurationError):
            MobileTagField(num_readers=0)

    def test_rejects_bad_overlap(self):
        with pytest.raises(ConfigurationError):
            MobileTagField.random(
                np.arange(1, dtype=np.uint64), 2, 1.5,
                np.random.default_rng(0),
            )


class TestMobilityModel:
    def test_rejects_bad_probability(self):
        with pytest.raises(ConfigurationError):
            MobilityModel(-0.1, np.random.default_rng(0))

    def test_zero_move_rate_settles_tags(self):
        ids = np.arange(100, dtype=np.uint64)
        field = MobileTagField.random(
            ids, 3, 0.5, np.random.default_rng(5)
        )
        model = MobilityModel(0.0, np.random.default_rng(6))
        settled = model.step(field)
        # After a no-move step every tag has exactly one home.
        assert settled.duplicated_tags == set()
        assert settled.covered_tags == set(range(100))

    def test_full_move_rate_transits_through_overlap(self):
        ids = np.arange(100, dtype=np.uint64)
        field = MobileTagField.random(
            ids, 3, 0.0, np.random.default_rng(7)
        )
        model = MobilityModel(1.0, np.random.default_rng(8))
        moved = model.step(field)
        # A moving tag is covered by old AND new reader for the round.
        assert moved.duplicated_tags == set(range(100))
        assert moved.covered_tags == set(range(100))

    def test_coverage_never_lost(self):
        ids = np.arange(200, dtype=np.uint64)
        field = MobileTagField.random(
            ids, 4, 0.3, np.random.default_rng(9)
        )
        model = MobilityModel(0.2, np.random.default_rng(10))
        for _ in range(10):
            field = model.step(field)
            assert field.covered_tags == set(range(200))
