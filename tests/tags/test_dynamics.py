"""Tests for population dynamics (join/leave churn)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.tags.dynamics import PopulationDynamics
from repro.tags.population import TagPopulation


class TestPopulationDynamics:
    def test_rejects_negative_rates(self):
        rng = np.random.default_rng(0)
        with pytest.raises(ConfigurationError):
            PopulationDynamics(-1.0, 0.0, rng)
        with pytest.raises(ConfigurationError):
            PopulationDynamics(0.0, -1.0, rng)

    def test_zero_rates_leave_population_unchanged(self):
        rng = np.random.default_rng(1)
        dynamics = PopulationDynamics(0.0, 0.0, rng)
        population = TagPopulation.sequential(100)
        evolved = dynamics.step(population, round_index=0)
        assert evolved.tag_ids.tolist() == population.tag_ids.tolist()

    def test_join_only_growth(self):
        rng = np.random.default_rng(2)
        dynamics = PopulationDynamics(10.0, 0.0, rng)
        population = TagPopulation.sequential(50)
        for round_index in range(20):
            population = dynamics.step(population, round_index)
        assert population.size > 50
        assert dynamics.total_joined == population.size - 50
        assert dynamics.total_left == 0

    def test_leave_only_shrink(self):
        rng = np.random.default_rng(3)
        dynamics = PopulationDynamics(0.0, 5.0, rng)
        population = TagPopulation.sequential(200)
        for round_index in range(10):
            population = dynamics.step(population, round_index)
        assert population.size < 200
        assert dynamics.total_left == 200 - population.size

    def test_never_negative_size(self):
        rng = np.random.default_rng(4)
        dynamics = PopulationDynamics(0.0, 50.0, rng)
        population = TagPopulation.sequential(20)
        for round_index in range(10):
            population = dynamics.step(population, round_index)
        assert population.size >= 0

    def test_history_records_sizes(self):
        rng = np.random.default_rng(5)
        dynamics = PopulationDynamics(3.0, 1.0, rng)
        population = TagPopulation.sequential(30)
        evolved = dynamics.step(population, round_index=7)
        step = dynamics.history[0]
        assert step.round_index == 7
        assert step.size_after == evolved.size
        assert step.size_after == 30 + step.joined - step.left

    def test_ids_stay_unique(self):
        rng = np.random.default_rng(6)
        dynamics = PopulationDynamics(20.0, 10.0, rng)
        population = TagPopulation.sequential(100)
        for round_index in range(15):
            population = dynamics.step(population, round_index)
        ids = population.tag_ids.tolist()
        assert len(ids) == len(set(ids))
