"""Tests for tag memory profiles (the Fig. 7 comparison)."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.tags.memory import MemoryModel, memory_profile


class TestMemoryModel:
    def test_pet_constant_in_rounds(self):
        model = MemoryModel(code_bits=32)
        assert (
            model.pet(1).preloaded_bits
            == model.pet(10_000).preloaded_bits
            == 32
        )

    def test_fneb_linear_in_rounds(self):
        model = MemoryModel(code_bits=32)
        assert model.fneb(100).preloaded_bits == 3200
        assert model.fneb(200).preloaded_bits == 6400

    def test_lof_linear_in_rounds(self):
        model = MemoryModel(code_bits=32)
        assert model.lof(50).preloaded_bits == 1600

    def test_total_bits_includes_state(self):
        profile = MemoryModel().pet(10)
        assert profile.total_bits == (
            profile.preloaded_bits + profile.state_bits
        )

    def test_passive_profiles_need_no_hashing(self):
        model = MemoryModel()
        for profile in (model.pet(5), model.fneb(5), model.lof(5)):
            assert profile.hash_evaluations == 0

    def test_rejects_bad_rounds(self):
        with pytest.raises(ConfigurationError):
            MemoryModel().pet(0)

    def test_rejects_bad_code_bits(self):
        with pytest.raises(ConfigurationError):
            MemoryModel(code_bits=0)


class TestMemoryProfileLookup:
    def test_lookup_by_name(self):
        assert memory_profile("PET", 100).preloaded_bits == 32
        assert memory_profile("fneb", 100).preloaded_bits == 3200
        assert memory_profile("LoF", 100).preloaded_bits == 3200

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ConfigurationError):
            memory_profile("gen2", 100)
