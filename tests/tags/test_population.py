"""Tests for tag population generation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.tags.pet_tags import ActivePetTag, PassivePetTag
from repro.tags.population import TagPopulation


class TestConstruction:
    def test_sequential(self):
        population = TagPopulation.sequential(10)
        assert population.size == 10
        assert population.tag_ids.tolist() == list(range(10))

    def test_random_ids_unique(self):
        population = TagPopulation.random(
            5000, np.random.default_rng(0)
        )
        assert population.size == 5000
        assert len(set(population.tag_ids.tolist())) == 5000

    def test_duplicate_ids_rejected(self):
        with pytest.raises(ConfigurationError):
            TagPopulation([1, 1, 2])

    def test_negative_size_rejected(self):
        with pytest.raises(ConfigurationError):
            TagPopulation.random(-1, np.random.default_rng(0))
        with pytest.raises(ConfigurationError):
            TagPopulation.sequential(-1)

    def test_empty_population(self):
        population = TagPopulation([])
        assert population.size == 0
        assert len(population) == 0

    def test_ids_read_only(self):
        population = TagPopulation.sequential(3)
        with pytest.raises(ValueError):
            population.tag_ids[0] = 99


class TestCodes:
    def test_codes_deterministic_per_seed(self):
        population = TagPopulation.sequential(100)
        assert (
            population.codes(1, 32) == population.codes(1, 32)
        ).all()
        assert (
            population.codes(1, 32) != population.codes(2, 32)
        ).any()

    def test_preloaded_codes_match_passive_tags(self):
        population = TagPopulation.sequential(20)
        codes = population.preloaded_codes(32)
        tags = population.build_passive_tags(32)
        assert codes.tolist() == [tag.preloaded_code for tag in tags]

    def test_build_active_tags(self):
        population = TagPopulation.sequential(5)
        tags = population.build_active_tags(16)
        assert all(isinstance(tag, ActivePetTag) for tag in tags)
        assert [tag.tag_id for tag in tags] == list(range(5))

    def test_build_passive_tags(self):
        tags = TagPopulation.sequential(5).build_passive_tags(16)
        assert all(isinstance(tag, PassivePetTag) for tag in tags)


class TestSetOperations:
    def test_subset(self):
        population = TagPopulation.sequential(10)
        subset = population.subset([1, 3, 5])
        assert subset.size == 3
        assert subset.tag_ids.tolist() == [1, 3, 5]

    def test_subset_rejects_foreign_ids(self):
        population = TagPopulation.sequential(10)
        with pytest.raises(ConfigurationError):
            population.subset([99])

    def test_union(self):
        a = TagPopulation([1, 2, 3])
        b = TagPopulation([3, 4])
        union = a.union(b)
        assert union.size == 4
        assert union.tag_ids.tolist() == [1, 2, 3, 4]
