"""Tests for the base tag abstractions and inventory bookkeeping."""

from __future__ import annotations

from repro.tags.base import (
    Tag,
    TagCostCounters,
    TagDescriptor,
    TagInventory,
)


class StubTag(Tag):
    def hear(self, command: object) -> bool:
        return False


class TestTag:
    def test_identity_and_repr(self):
        tag = StubTag(42)
        assert tag.tag_id == 42
        assert "42" in repr(tag)

    def test_fresh_cost_counters(self):
        tag = StubTag(1)
        assert tag.costs == TagCostCounters()
        assert tag.costs.hash_evaluations == 0
        assert tag.costs.responses_sent == 0


class TestTagInventory:
    def test_join_registers(self):
        inventory = TagInventory()
        descriptor = inventory.join(7, round_index=3)
        assert descriptor == TagDescriptor(tag_id=7, joined_round=3)
        assert 7 in inventory
        assert len(inventory) == 1

    def test_leave_records_departure(self):
        inventory = TagInventory()
        inventory.join(7)
        inventory.leave(7)
        assert 7 not in inventory
        assert inventory.departures == [7]

    def test_leave_unknown_is_noop(self):
        inventory = TagInventory()
        inventory.leave(99)
        assert inventory.departures == []

    def test_rejoin_after_leave(self):
        inventory = TagInventory()
        inventory.join(7)
        inventory.leave(7)
        inventory.join(7, round_index=5)
        assert inventory.descriptors[7].joined_round == 5
