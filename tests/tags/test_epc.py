"""Tests for the EPC SGTIN-96 codec and structured workloads."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PetConfig
from repro.errors import ConfigurationError
from repro.sim.vectorized import VectorizedSimulator
from repro.tags.epc import EpcCode, mixed_cargo_ids, shipment_ids
from repro.tags.population import TagPopulation


class TestCodec:
    def test_round_trip(self):
        code = EpcCode(
            filter_value=1, company=123456, item=789, serial=42
        )
        assert EpcCode.decode(code.encode()) == code

    def test_encode_fits_96_bits(self):
        code = EpcCode(
            filter_value=7,
            company=(1 << 24) - 1,
            item=(1 << 20) - 1,
            serial=(1 << 38) - 1,
        )
        assert 0 <= code.encode() < (1 << 96)

    def test_field_validation(self):
        with pytest.raises(ConfigurationError):
            EpcCode(filter_value=8, company=0, item=0, serial=0)
        with pytest.raises(ConfigurationError):
            EpcCode(filter_value=0, company=1 << 24, item=0, serial=0)

    def test_decode_rejects_garbage(self):
        with pytest.raises(ConfigurationError):
            EpcCode.decode((1 << 96) - 1)
        with pytest.raises(ConfigurationError):
            EpcCode.decode(-1)


class TestShipments:
    def test_serials_sequential_and_unique(self):
        rng = np.random.default_rng(0)
        ids = shipment_ids(100, company=5, item=9, rng=rng)
        assert len(set(ids)) == 100
        # Sequential serials: 64-bit IDs differ by 1.
        deltas = {b - a for a, b in zip(ids, ids[1:])}
        assert deltas == {1}

    def test_mixed_cargo_counts(self):
        rng = np.random.default_rng(1)
        ids = mixed_cargo_ids(5, 40, rng)
        assert len(ids) == 200
        assert len(set(ids)) == 200

    def test_rejects_negative_counts(self):
        rng = np.random.default_rng(2)
        with pytest.raises(ConfigurationError):
            shipment_ids(-1, 0, 0, rng)
        with pytest.raises(ConfigurationError):
            mixed_cargo_ids(-1, 5, rng)


class TestStructuredIdsThroughPet:
    def test_estimation_unaffected_by_id_structure(self):
        # The hash must whiten sequential-serial IDs: estimating a
        # single-shipment population should be as accurate as random
        # IDs.
        rng = np.random.default_rng(3)
        ids = shipment_ids(5_000, company=77, item=11, rng=rng)
        population = TagPopulation(ids)
        result = VectorizedSimulator(
            population,
            config=PetConfig(rounds=512),
            rng=np.random.default_rng(4),
        ).estimate()
        assert 0.9 < result.n_hat / 5_000 < 1.1

    def test_passive_codes_unique_despite_shared_prefix(self):
        rng = np.random.default_rng(5)
        ids = shipment_ids(2_000, company=77, item=11, rng=rng)
        population = TagPopulation(ids)
        codes = population.preloaded_codes(32)
        # Hash collisions at 32 bits over 2k tags: expect ~0.
        assert len(np.unique(codes)) >= 1_999
