"""Tests for the PET tag state machines (Algorithms 2 and 4)."""

from __future__ import annotations

import pytest

from repro.core.messages import PrefixQuery, StartRound
from repro.core.path import EstimatingPath
from repro.errors import ProtocolError
from repro.hashing import uniform_code
from repro.tags.pet_tags import ActivePetTag, PassivePetTag


def start(path_bits: str, seed: int | None) -> StartRound:
    return StartRound(
        path=EstimatingPath.from_string(path_bits), seed=seed
    )


class TestActivePetTag:
    def test_hashes_fresh_code_per_round(self):
        tag = ActivePetTag(tag_id=5, height=32)
        tag.hear(start("0" * 32, seed=1))
        code_one = tag.current_code
        tag.hear(start("0" * 32, seed=2))
        code_two = tag.current_code
        assert code_one != code_two
        assert tag.costs.hash_evaluations == 2

    def test_code_matches_reference_hash(self):
        tag = ActivePetTag(tag_id=5, height=32)
        tag.hear(start("0" * 32, seed=77))
        assert tag.current_code == uniform_code(77, 5, 32)

    def test_requires_seed(self):
        tag = ActivePetTag(tag_id=5, height=32)
        with pytest.raises(ProtocolError):
            tag.hear(start("0" * 32, seed=None))

    def test_query_before_round_rejected(self):
        tag = ActivePetTag(tag_id=5, height=32)
        with pytest.raises(ProtocolError):
            tag.hear(PrefixQuery(length=1, height=32))

    def test_responds_iff_prefix_matches(self):
        tag = ActivePetTag(tag_id=5, height=4)
        # Force a known code by choosing the path equal to it.
        tag.hear(StartRound(path=EstimatingPath(0, 4), seed=9))
        code = tag.current_code
        matching_path = EstimatingPath(code, 4)
        tag.hear(StartRound(path=matching_path, seed=9))
        for length in range(5):
            assert tag.hear(PrefixQuery(length=length, height=4))
        # A path differing in the first bit never matches length >= 1.
        flipped = EstimatingPath(code ^ 0b1000, 4)
        tag.hear(StartRound(path=flipped, seed=9))
        assert tag.hear(PrefixQuery(length=0, height=4))
        assert not tag.hear(PrefixQuery(length=1, height=4))

    def test_cost_counters(self):
        tag = ActivePetTag(tag_id=1, height=8)
        tag.hear(start("0" * 8, seed=3))
        tag.hear(PrefixQuery(length=1, height=8))
        tag.hear(PrefixQuery(length=2, height=8))
        assert tag.costs.bitwise_comparisons == 2
        assert tag.costs.state_bits == 16  # code + path registers

    def test_ignores_foreign_commands(self):
        tag = ActivePetTag(tag_id=1, height=8)
        assert tag.hear("some-other-protocol-frame") is False


class TestPassivePetTag:
    def test_preloaded_code_is_manufacturing_hash(self):
        tag = PassivePetTag(tag_id=9, height=32)
        expected = uniform_code(
            PassivePetTag.MANUFACTURING_SEED, 9, 32
        )
        assert tag.preloaded_code == expected

    def test_code_survives_rounds(self):
        tag = PassivePetTag(tag_id=9, height=32)
        code = tag.preloaded_code
        tag.hear(start("0" * 32, seed=None))
        tag.hear(start("1" * 32, seed=None))
        assert tag.current_code == code
        assert tag.costs.hash_evaluations == 0

    def test_explicit_code_override(self):
        tag = PassivePetTag(tag_id=9, height=6, preloaded_code=0b000111)
        assert tag.preloaded_code == 0b000111

    def test_rejects_out_of_range_code(self):
        with pytest.raises(ProtocolError):
            PassivePetTag(tag_id=9, height=4, preloaded_code=16)

    def test_memory_accounting(self):
        tag = PassivePetTag(tag_id=9, height=32)
        assert tag.costs.preloaded_bits == 32
        assert tag.costs.state_bits == 32  # just the path register

    def test_answers_by_preloaded_code(self):
        tag = PassivePetTag(tag_id=9, height=4, preloaded_code=0b0110)
        tag.hear(start("0111", seed=None))
        assert tag.hear(PrefixQuery(length=3, height=4))   # 011 matches
        assert not tag.hear(PrefixQuery(length=4, height=4))

    def test_response_counter(self):
        tag = PassivePetTag(tag_id=9, height=4, preloaded_code=0b0110)
        tag.hear(start("0110", seed=None))
        tag.hear(PrefixQuery(length=4, height=4))
        assert tag.costs.responses_sent == 1
