"""The documented examples actually run.

Executes the doctest embedded in the package docstring (the same
snippet the README leads with), so the first thing a new user tries is
continuously verified.
"""

from __future__ import annotations

import doctest

import repro


class TestDocumentedExamples:
    def test_package_docstring_example(self):
        results = doctest.testmod(repro, verbose=False)
        assert results.attempted >= 3
        assert results.failed == 0

    def test_readme_quickstart_snippet(self):
        # The README's first code block, executed literally.
        import numpy as np

        from repro import (
            AccuracyRequirement,
            PetConfig,
            PetEstimator,
            SampledSimulator,
        )

        requirement = AccuracyRequirement(epsilon=0.05, delta=0.01)
        estimator = PetEstimator(
            requirement=requirement, rng=np.random.default_rng(0)
        )
        assert estimator.planned_rounds == 4697

        sim = SampledSimulator(
            1_000_000,
            config=PetConfig(rounds=4697),
            rng=np.random.default_rng(1),
        )
        result = sim.estimate()
        assert abs(result.n_hat - 1_000_000) < 50_000
        assert result.total_slots == 23_485
