"""Tests for experiment-result persistence."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.sim.persist import (
    load_experiment,
    rows_of,
    save_experiment,
)


class TestRoundTrip:
    def test_save_and_load(self, tmp_path):
        path = save_experiment(
            tmp_path / "out" / "table4.json",
            "table4",
            parameters={"n": 50_000, "delta": 0.01},
            rows=[{"epsilon": 0.05, "pet_slots": 23_485}],
        )
        document = load_experiment(path)
        assert document["experiment"] == "table4"
        assert document["parameters"]["n"] == 50_000
        assert rows_of(document) == [
            {"epsilon": 0.05, "pet_slots": 23_485}
        ]

    def test_numpy_values_coerced(self, tmp_path):
        path = save_experiment(
            tmp_path / "x.json",
            "x",
            parameters={"arr": np.array([1, 2])},
            rows=[{"v": np.float64(1.5), "k": np.int64(3)}],
        )
        document = load_experiment(path)
        assert document["parameters"]["arr"] == [1, 2]
        assert rows_of(document)[0] == {"v": 1.5, "k": 3}

    def test_version_recorded(self, tmp_path):
        from repro import __version__

        path = save_experiment(tmp_path / "v.json", "v", {}, [])
        assert load_experiment(path)["library_version"] == __version__


class TestValidation:
    def test_empty_name_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_experiment(tmp_path / "x.json", "", {}, [])

    def test_unserializable_rejected(self, tmp_path):
        with pytest.raises(ConfigurationError):
            save_experiment(
                tmp_path / "x.json", "x", {"f": object()}, []
            )

    def test_bad_schema_rejected(self, tmp_path):
        out = tmp_path / "bad.json"
        out.write_text('{"schema": 99, "rows": []}')
        with pytest.raises(ConfigurationError):
            load_experiment(out)

    def test_rows_of_requires_list(self):
        with pytest.raises(ConfigurationError):
            rows_of({"schema": 1})
