"""Tests for the vectorized simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PetConfig
from repro.core.path import EstimatingPath
from repro.core.search import BinaryGraySearch
from repro.core.tree import PetTree
from repro.errors import ConfigurationError
from repro.sim.vectorized import (
    VectorizedSimulator,
    gray_depth_of_codes,
    gray_depth_sorted,
    replay_slots,
)
from repro.tags.population import TagPopulation


class TestGrayDepthKernels:
    def test_empty_codes(self):
        assert gray_depth_of_codes(
            np.array([], dtype=np.uint64), 5, 8
        ) == 0
        assert gray_depth_sorted(
            np.array([], dtype=np.uint64), 5, 8
        ) == 0

    def test_kernels_agree_with_tree(self):
        rng = np.random.default_rng(0)
        height = 10
        for _ in range(30):
            codes = rng.integers(
                0, 1 << height, size=25
            ).astype(np.uint64)
            tree = PetTree(height, (int(c) for c in codes))
            path = EstimatingPath.random(height, rng)
            expected = tree.gray_depth(path)
            assert gray_depth_of_codes(
                codes, path.bits, height
            ) == expected
            assert gray_depth_sorted(
                np.sort(codes), path.bits, height
            ) == expected

    def test_exact_match_full_depth(self):
        codes = np.array([0b1010], dtype=np.uint64)
        assert gray_depth_of_codes(codes, 0b1010, 4) == 4
        assert gray_depth_sorted(codes, 0b1010, 4) == 4

    def test_replay_slots_validates_depth(self):
        assert replay_slots(BinaryGraySearch(), 16, 32) == 5


class TestVectorizedSimulator:
    def test_rejects_too_tall_trees(self):
        population = TagPopulation.sequential(4)
        with pytest.raises(ConfigurationError):
            VectorizedSimulator(
                population, config=PetConfig(tree_height=63)
            )

    def test_active_needs_seed(self):
        population = TagPopulation.sequential(4)
        simulator = VectorizedSimulator(population)
        with pytest.raises(ConfigurationError):
            simulator.gray_depth(
                EstimatingPath.random(32, np.random.default_rng(0)),
                seed=None,
            )

    def test_passive_depths_deterministic_given_path(self):
        population = TagPopulation.sequential(100)
        config = PetConfig(passive_tags=True)
        sim_a = VectorizedSimulator(population, config=config)
        sim_b = VectorizedSimulator(population, config=config)
        path = EstimatingPath.random(32, np.random.default_rng(1))
        assert sim_a.gray_depth(path, None) == sim_b.gray_depth(
            path, None
        )

    def test_passive_depth_matches_bruteforce(self):
        population = TagPopulation.sequential(200)
        config = PetConfig(tree_height=20, passive_tags=True)
        simulator = VectorizedSimulator(population, config=config)
        codes = population.preloaded_codes(20)
        rng = np.random.default_rng(2)
        for _ in range(20):
            path = EstimatingPath.random(20, rng)
            brute = max(
                path.common_prefix_length(int(c)) for c in codes
            )
            assert simulator.gray_depth(path, None) == brute

    def test_estimate_reasonable(self):
        population = TagPopulation.random(
            8_000, np.random.default_rng(3)
        )
        simulator = VectorizedSimulator(
            population, rng=np.random.default_rng(4)
        )
        result = simulator.estimate(rounds=512)
        assert 0.85 < result.n_hat / 8_000 < 1.15

    def test_empty_population_estimates_small(self):
        population = TagPopulation([])
        simulator = VectorizedSimulator(
            population, rng=np.random.default_rng(5)
        )
        result = simulator.estimate(rounds=16)
        # All depths 0 -> n_hat = 1/phi ~ 0.79.
        assert result.n_hat < 1.0
