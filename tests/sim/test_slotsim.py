"""Tests for the slot-level simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import ChannelConfig, PetConfig
from repro.radio.slots import SlotType
from repro.sim.slotsim import SlotLevelSimulator
from repro.tags.population import TagPopulation


class TestSlotLevelSimulator:
    def test_active_estimation(self):
        population = TagPopulation.random(
            300, np.random.default_rng(0)
        )
        simulator = SlotLevelSimulator(
            population,
            config=PetConfig(rounds=128),
            rng=np.random.default_rng(1),
        )
        result = simulator.estimate()
        assert 0.6 < result.n_hat / 300 < 1.6

    def test_passive_estimation(self):
        population = TagPopulation.random(
            300, np.random.default_rng(2)
        )
        simulator = SlotLevelSimulator(
            population,
            config=PetConfig(rounds=128, passive_tags=True),
            rng=np.random.default_rng(3),
        )
        result = simulator.estimate()
        assert 0.5 < result.n_hat / 300 < 2.0

    def test_tag_variant_matches_config(self):
        from repro.tags.pet_tags import ActivePetTag, PassivePetTag

        population = TagPopulation.sequential(5)
        active = SlotLevelSimulator(population, config=PetConfig())
        assert all(
            isinstance(tag, ActivePetTag) for tag in active.tags
        )
        passive = SlotLevelSimulator(
            population, config=PetConfig(passive_tags=True)
        )
        assert all(
            isinstance(tag, PassivePetTag) for tag in passive.tags
        )

    def test_trace_accumulates(self):
        population = TagPopulation.sequential(20)
        simulator = SlotLevelSimulator(
            population,
            config=PetConfig(rounds=4),
            rng=np.random.default_rng(4),
        )
        result = simulator.estimate()
        # Each round adds a start broadcast + its query slots.
        assert simulator.trace.total_slots == result.total_slots + 4

    def test_rounds_override(self):
        population = TagPopulation.sequential(10)
        simulator = SlotLevelSimulator(
            population,
            config=PetConfig(rounds=2),
            rng=np.random.default_rng(5),
        )
        result = simulator.estimate(rounds=7)
        assert result.num_rounds == 7

    def test_lossy_channel_biases_low(self):
        # Loss flips busy slots to idle, shrinking observed depths.
        population = TagPopulation.random(
            400, np.random.default_rng(6)
        )
        lossless = SlotLevelSimulator(
            population,
            config=PetConfig(rounds=96),
            rng=np.random.default_rng(7),
        ).estimate()
        lossy = SlotLevelSimulator(
            population,
            config=PetConfig(rounds=96),
            channel_config=ChannelConfig(loss_probability=0.5),
            rng=np.random.default_rng(7),
        ).estimate()
        assert lossy.n_hat < lossless.n_hat

    def test_responses_are_collisions_or_singletons(self):
        population = TagPopulation.sequential(50)
        simulator = SlotLevelSimulator(
            population,
            config=PetConfig(rounds=8),
            rng=np.random.default_rng(8),
        )
        simulator.estimate()
        busy = [
            event
            for event in simulator.trace
            if event.outcome.slot_type is not SlotType.IDLE
        ]
        assert busy  # at least some slots heard tags
