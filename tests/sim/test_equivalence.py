"""Cross-tier equivalence: the simulators and engines agree.

The slot-level simulator is the gold standard; the vectorized tier must
agree with it *exactly* (same codes, same paths), and the sampled tier
must agree with both *in distribution*.  The batched experiment engine
must agree with the per-repetition reference loop — and, on small
populations, with repeated slot-level runs — bit for bit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.mellin import gray_depth_moments
from repro.config import PetConfig
from repro.core.path import EstimatingPath
from repro.radio.channel import SlottedChannel
from repro.reader.reader import PetReader
from repro.sim.experiment import ExperimentRunner
from repro.sim.sampled import SampledSimulator
from repro.sim.slotsim import SlotLevelSimulator
from repro.sim.vectorized import VectorizedSimulator
from repro.sim.workload import WorkloadSpec, build_population
from repro.tags.population import TagPopulation

HEIGHT = 16


class TestSlotVsVectorizedExact:
    """Same preloaded codes, same path => identical depth and slots."""

    @pytest.mark.parametrize("binary", [False, True])
    def test_passive_rounds_identical(self, binary):
        rng = np.random.default_rng(31)
        population = TagPopulation.random(150, rng)
        config = PetConfig(
            tree_height=HEIGHT,
            binary_search=binary,
            passive_tags=True,
            rounds=1,
        )
        channel = SlottedChannel(rng=rng)
        channel.attach_all(population.build_passive_tags(HEIGHT))
        reader = PetReader(channel, config=config, rng=rng)
        vectorized = VectorizedSimulator(population, config=config)
        for _ in range(25):
            path = EstimatingPath.random(HEIGHT, rng)
            slot_depth, slot_cost = reader.run_round(path, 0)
            vec_depth = vectorized.gray_depth(path, None)
            from repro.sim.vectorized import replay_slots
            from repro.core.search import strategy_for

            vec_cost = replay_slots(
                strategy_for(binary), vec_depth, HEIGHT
            )
            assert slot_depth == vec_depth
            assert slot_cost == vec_cost

    def test_active_rounds_identical_given_seed(self):
        rng = np.random.default_rng(32)
        population = TagPopulation.random(100, rng)
        config = PetConfig(tree_height=HEIGHT, rounds=1)
        vectorized = VectorizedSimulator(population, config=config)
        channel = SlottedChannel(rng=rng)
        tags = population.build_active_tags(HEIGHT)
        channel.attach_all(tags)
        from repro.core.messages import PrefixQuery, StartRound

        for trial in range(10):
            path = EstimatingPath.random(HEIGHT, rng)
            seed = int(rng.integers(0, 2**62))
            channel.broadcast(StartRound(path=path, seed=seed))
            # Walk prefixes manually to find the slot-level depth.
            depth = 0
            for length in range(1, HEIGHT + 1):
                outcome = channel.broadcast(
                    PrefixQuery(length=length, height=HEIGHT)
                )
                if not outcome.busy:
                    break
                depth = length
            assert depth == vectorized.gray_depth(path, seed)


class TestSampledVsVectorizedDistribution:
    """The sampled tier reproduces the vectorized depth law."""

    def test_depth_means_agree(self):
        n = 3_000
        population = TagPopulation.random(
            n, np.random.default_rng(33)
        )
        config = PetConfig()
        rng = np.random.default_rng(34)
        vectorized = VectorizedSimulator(
            population, config=config, rng=rng
        )
        vec_depths = [
            vectorized.run_round(
                EstimatingPath.random(32, rng), i
            )[0]
            for i in range(800)
        ]
        sampled = SampledSimulator(
            n, config=config, rng=np.random.default_rng(35)
        )
        sam_depths = sampled.sample_depths(20_000)
        moments = gray_depth_moments(n, 32)
        assert np.mean(vec_depths) == pytest.approx(
            moments.mean_depth, abs=0.2
        )
        assert np.mean(sam_depths) == pytest.approx(
            moments.mean_depth, abs=0.05
        )
        assert np.mean(vec_depths) == pytest.approx(
            np.mean(sam_depths), abs=0.25
        )

    def test_estimates_agree_across_tiers(self):
        n = 3_000
        population = TagPopulation.random(
            n, np.random.default_rng(36)
        )
        vec = VectorizedSimulator(
            population, rng=np.random.default_rng(37)
        ).estimate(rounds=400)
        sam = SampledSimulator(
            n, rng=np.random.default_rng(38)
        ).estimate(rounds=400)
        assert vec.n_hat == pytest.approx(sam.n_hat, rel=0.2)
        assert vec.total_slots == sam.total_slots


class TestBatchedEngineExact:
    """The batched engine is bit-identical to the reference loop (and,
    on small populations, to repeated slot-level runs) for equal seeds.
    """

    @pytest.mark.parametrize("passive", [True, False])
    @pytest.mark.parametrize("binary", [True, False])
    def test_matches_reference_loop(self, passive, binary):
        runner = ExperimentRunner(base_seed=201, repetitions=15)
        spec = WorkloadSpec(size=600, seed=3)
        config = PetConfig(
            tree_height=HEIGHT, passive_tags=passive, binary_search=binary
        )
        loop = runner.run_vectorized(spec, config, 48, engine="loop")
        batched = runner.run_vectorized(spec, config, 48, engine="batched")
        assert batched.estimates.tolist() == loop.estimates.tolist()
        assert batched.slots_per_run == loop.slots_per_run
        assert batched.true_n == loop.true_n
        assert batched.rounds == loop.rounds

    def test_default_engine_is_batched(self):
        runner = ExperimentRunner(base_seed=202, repetitions=8)
        spec = WorkloadSpec(size=300, seed=1)
        config = PetConfig(tree_height=HEIGHT, passive_tags=True)
        default = runner.run_vectorized(spec, config, 32)
        batched = runner.run_vectorized(spec, config, 32, engine="batched")
        assert default.estimates.tolist() == batched.estimates.tolist()

    @pytest.mark.parametrize("passive", [True, False])
    def test_matches_slot_level_runs(self, passive):
        """Repeated slot-level runs over the same seed tree agree.

        The lossless channel consumes no reader-side randomness, so a
        slot-level repetition draws exactly the word stream the batched
        engine reconstructs: one path word (plus one seed word, active
        variant) per round.
        """
        repetitions, rounds = 6, 24
        runner = ExperimentRunner(base_seed=203, repetitions=repetitions)
        spec = WorkloadSpec(size=80, seed=11)
        config = PetConfig(
            tree_height=HEIGHT, passive_tags=passive, rounds=rounds
        )
        batched = runner.run_vectorized(
            spec, config, rounds, engine="batched"
        )
        seed_seq = np.random.SeedSequence(203)
        slot_estimates = []
        slot_total = 0
        for index, child in enumerate(seed_seq.spawn(repetitions)):
            population = build_population(
                WorkloadSpec(size=spec.size, seed=spec.seed + index)
            )
            simulator = SlotLevelSimulator(
                population,
                config=config,
                rng=np.random.default_rng(child),
            )
            result = simulator.estimate()
            slot_estimates.append(result.n_hat)
            slot_total += result.total_slots
        assert batched.estimates.tolist() == slot_estimates
        assert batched.slots_per_run == slot_total / repetitions
