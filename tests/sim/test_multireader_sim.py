"""Tests for the vectorized multi-reader simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PetConfig
from repro.core.path import EstimatingPath
from repro.core.tree import PetTree
from repro.errors import ConfigurationError
from repro.sim.multireader import MultiReaderSimulator
from repro.tags.mobility import MobileTagField, MobilityModel
from repro.tags.population import TagPopulation

HEIGHT = 12


def full_coverage_field(
    population: TagPopulation, num_readers: int, rng
) -> MobileTagField:
    return MobileTagField.random(
        population.tag_ids, num_readers, 0.3, rng
    )


class TestValidation:
    def test_rejects_foreign_coverage(self):
        population = TagPopulation.sequential(5)
        field = MobileTagField(
            num_readers=1, coverage={99: frozenset({0})}
        )
        with pytest.raises(ConfigurationError):
            MultiReaderSimulator(population, field)


class TestEquivalence:
    def test_matches_explicit_tree_on_covered_union(self):
        rng = np.random.default_rng(0)
        population = TagPopulation.random(60, rng)
        field = full_coverage_field(population, 3, rng)
        config = PetConfig(tree_height=HEIGHT, passive_tags=True)
        simulator = MultiReaderSimulator(
            population, field, config=config, rng=rng
        )
        codes = population.preloaded_codes(HEIGHT)
        tree = PetTree(HEIGHT, (int(c) for c in codes))
        for _ in range(20):
            path = EstimatingPath.random(HEIGHT, rng)
            depth, _ = simulator.run_round(path, 0)
            assert depth == tree.gray_depth(path)

    def test_uncovered_tags_invisible(self):
        population = TagPopulation.sequential(40)
        # Only the first 10 tags are covered.
        coverage = {
            tid: frozenset({0}) if tid < 10 else frozenset()
            for tid in range(40)
        }
        field = MobileTagField(num_readers=1, coverage=coverage)
        config = PetConfig(tree_height=HEIGHT, passive_tags=True)
        simulator = MultiReaderSimulator(
            population, field, config=config,
            rng=np.random.default_rng(1),
        )
        visible_codes = population.preloaded_codes(HEIGHT)[:10]
        tree = PetTree(HEIGHT, (int(c) for c in visible_codes))
        rng = np.random.default_rng(2)
        for _ in range(15):
            path = EstimatingPath.random(HEIGHT, rng)
            depth, _ = simulator.run_round(path, 0)
            assert depth == tree.gray_depth(path)

    def test_matches_slot_level_controller(self):
        from repro.radio.channel import SlottedChannel
        from repro.reader.controller import ReaderController
        from repro.tags.pet_tags import PassivePetTag

        rng = np.random.default_rng(3)
        population = TagPopulation.random(30, rng)
        field = full_coverage_field(population, 2, rng)
        config = PetConfig(
            tree_height=HEIGHT, passive_tags=True, rounds=1
        )
        # Build the slot-level twin from the same coverage.
        channels = []
        for reader in range(2):
            channel = SlottedChannel(rng=rng)
            for tag_id in field.tags_of_reader(reader):
                channel.attach(PassivePetTag(tag_id, HEIGHT))
            channels.append(channel)
        controller = ReaderController(channels, config=config, rng=rng)
        simulator = MultiReaderSimulator(
            population, field, config=config, rng=rng
        )
        for _ in range(15):
            path = EstimatingPath.random(HEIGHT, rng)
            slot_depth, _ = controller.run_round(path, 0)
            fast_depth, _ = simulator.run_round(path, 0)
            assert slot_depth == fast_depth


class TestMobility:
    def test_evolve_hook_applied(self):
        rng = np.random.default_rng(4)
        population = TagPopulation.random(200, rng)
        field = full_coverage_field(population, 3, rng)
        mobility = MobilityModel(0.3, np.random.default_rng(5))
        seen_rounds = []

        def evolve(current, round_index):
            seen_rounds.append(round_index)
            return mobility.step(current)

        simulator = MultiReaderSimulator(
            population,
            field,
            config=PetConfig(tree_height=16, passive_tags=True),
            evolve=evolve,
            rng=rng,
        )
        result = simulator.estimate(rounds=32)
        assert seen_rounds == list(range(32))
        # Full coverage throughout: estimate tracks the population.
        assert 0.4 < result.n_hat / 200 < 2.5

    def test_active_variant_estimates(self):
        rng = np.random.default_rng(6)
        population = TagPopulation.random(500, rng)
        field = full_coverage_field(population, 2, rng)
        simulator = MultiReaderSimulator(
            population,
            field,
            config=PetConfig(tree_height=20),
            rng=rng,
        )
        result = simulator.estimate(rounds=256)
        assert 0.7 < result.n_hat / 500 < 1.4
