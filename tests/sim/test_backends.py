"""The kernel-backend registry and the per-backend kernel contract."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hashing.family import splitmix64
from repro.sim import backends
from repro.sim.backends import (
    DEFAULT_BACKEND,
    ENV_VAR,
    available_backends,
    backend_summaries,
    get_backend,
    known_backends,
    register_backend,
    set_active_backend,
    use_backend,
)
from repro.sim.backends.base import KernelBackend
from repro.sim.backends.numpy_backend import NumpyBackend


@pytest.fixture(autouse=True)
def _no_explicit_selection():
    """Keep the process-global selection clean around every test."""
    set_active_backend(None)
    yield
    set_active_backend(None)


# ---------------------------------------------------------------------
# Registry resolution


def test_numpy_is_always_known_available_and_default():
    assert DEFAULT_BACKEND == "numpy"
    assert "numpy" in known_backends()
    assert "numpy" in available_backends()
    assert backends.active_backend().name == "numpy"


def test_numba_is_registered_even_when_uninstalled():
    # The registry lists it either way; availability is probed.
    assert "numba" in known_backends()


def test_unknown_backend_raises_with_known_names():
    with pytest.raises(ConfigurationError, match="numpy"):
        get_backend("no-such-backend")


def test_unavailable_backend_error_names_alternatives():
    try:
        import numba  # noqa: F401

        pytest.skip("numba installed; unavailability path not testable")
    except ImportError:
        pass
    with pytest.raises(ConfigurationError, match="not available"):
        get_backend("numba")


def test_env_var_selects_backend(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "numpy")
    assert backends.active_backend().name == "numpy"
    monkeypatch.setenv(ENV_VAR, "no-such-backend")
    with pytest.raises(ConfigurationError):
        backends.active_backend()


def test_explicit_selection_beats_env(monkeypatch):
    monkeypatch.setenv(ENV_VAR, "no-such-backend")
    set_active_backend("numpy")
    assert backends.active_backend().name == "numpy"
    set_active_backend(None)
    with pytest.raises(ConfigurationError):
        backends.active_backend()


def test_instances_are_cached():
    assert get_backend("numpy") is get_backend("numpy")


def test_backend_summaries_report_availability():
    rows = {name: available for name, _, available in backend_summaries()}
    assert rows["numpy"] is True


# ---------------------------------------------------------------------
# Dispatch: the hashing layer actually routes through the selection


class _TracingBackend(NumpyBackend):
    name = "tracing"

    def __init__(self):
        self.calls = []

    def splitmix64_vec(self, values):
        self.calls.append("splitmix64_vec")
        return super().splitmix64_vec(values)

    def leading_zeros64_vec(self, values):
        self.calls.append("leading_zeros64_vec")
        return super().leading_zeros64_vec(values)

    def clamped_buckets(self, digests, max_bucket):
        self.calls.append("clamped_buckets")
        return super().clamped_buckets(digests, max_bucket)


def test_hashing_layer_dispatches_to_selected_backend():
    from repro.hashing.family import _splitmix64_vec
    from repro.hashing.geometric import (
        _clamped_buckets,
        leading_zeros64_vec,
    )

    tracer = _TracingBackend()
    register_backend("tracing", lambda: tracer)
    try:
        with use_backend("tracing"):
            values = np.arange(8, dtype=np.uint64)
            _splitmix64_vec(values)
            leading_zeros64_vec(values)
            _clamped_buckets(values, 4)
        assert tracer.calls == [
            "splitmix64_vec",
            "leading_zeros64_vec",
            "clamped_buckets",
        ]
    finally:
        backends._REGISTRY.pop("tracing", None)
        backends._INSTANCES.pop("tracing", None)


def test_use_backend_restores_prior_selection():
    set_active_backend("numpy")
    selected = backends.active_backend()
    with use_backend("numpy"):
        pass
    assert backends.active_backend() is selected


# ---------------------------------------------------------------------
# Kernel contract, parametrized over whatever is installed here


def _contract_words() -> np.ndarray:
    """Adversarial words: edges, near powers of two, random fill."""
    edge = [0, 1, 2, (1 << 64) - 1, 1 << 63, (1 << 63) - 1]
    for bits in range(1, 64):
        edge.extend(
            [(1 << bits) - 1, 1 << bits, (1 << bits) + 1]
        )
    rng = np.random.default_rng(7)
    random = rng.integers(0, 2**64, size=4096, dtype=np.uint64)
    return np.concatenate(
        [np.array(edge, dtype=np.uint64) & np.uint64((1 << 64) - 1), random]
    )


@pytest.fixture(params=available_backends())
def backend(request) -> KernelBackend:
    return get_backend(request.param)


def test_backend_is_a_kernel_backend(backend):
    assert isinstance(backend, KernelBackend)
    description = backend.describe()
    assert description["name"] == backend.name
    assert description["bit_identical"] is True


def test_splitmix64_matches_scalar_reference(backend):
    words = _contract_words()
    out = backend.splitmix64_vec(words)
    assert out.dtype == np.uint64
    expected = np.array(
        [splitmix64(int(w)) for w in words], dtype=np.uint64
    )
    np.testing.assert_array_equal(out, expected)


def test_leading_zeros_matches_bit_length(backend):
    words = _contract_words()
    out = backend.leading_zeros64_vec(words)
    expected = np.array(
        [64 - int(w).bit_length() for w in words], dtype=np.int64
    )
    np.testing.assert_array_equal(out, expected)


@pytest.mark.parametrize("max_bucket", [0, 1, 7, 32, 52, 53, 64])
def test_clamped_buckets_matches_reference(backend, max_bucket):
    words = _contract_words()
    out = backend.clamped_buckets(words, max_bucket)
    expected = np.minimum(
        np.array(
            [64 - int(w).bit_length() for w in words], dtype=np.int64
        ),
        max_bucket,
    )
    np.testing.assert_array_equal(out, expected)


def test_kernels_preserve_input_shape(backend):
    matrix = np.arange(12, dtype=np.uint64).reshape(3, 4)
    assert backend.splitmix64_vec(matrix).shape == (3, 4)
    assert backend.leading_zeros64_vec(matrix).shape == (3, 4)
    assert backend.clamped_buckets(matrix, 8).shape == (3, 4)


def test_backends_agree_pairwise():
    """Every available backend reproduces the numpy bit patterns."""
    words = _contract_words()
    reference = get_backend("numpy")
    for name in available_backends():
        other = get_backend(name)
        np.testing.assert_array_equal(
            other.splitmix64_vec(words),
            reference.splitmix64_vec(words),
        )
        np.testing.assert_array_equal(
            other.leading_zeros64_vec(words),
            reference.leading_zeros64_vec(words),
        )
        for max_bucket in (4, 52, 60):
            np.testing.assert_array_equal(
                other.clamped_buckets(words, max_bucket),
                reference.clamped_buckets(words, max_bucket),
            )
