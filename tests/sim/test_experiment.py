"""Tests for the experiment runner."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PetConfig
from repro.errors import ConfigurationError
from repro.sim.experiment import ExperimentRunner
from repro.sim.workload import WorkloadSpec


class TestRunSampled:
    def test_shape_and_seed_stability(self):
        runner = ExperimentRunner(base_seed=1, repetitions=50)
        config = PetConfig()
        first = runner.run_sampled(1_000, config, rounds=32)
        second = runner.run_sampled(1_000, config, rounds=32)
        assert first.estimates.shape == (50,)
        assert first.estimates.tolist() == second.estimates.tolist()

    def test_different_cells_independent(self):
        runner = ExperimentRunner(base_seed=1, repetitions=20)
        config = PetConfig()
        a = runner.run_sampled(1_000, config, rounds=32)
        b = runner.run_sampled(2_000, config, rounds=32)
        assert a.estimates.tolist() != b.estimates.tolist()

    def test_summary_quality(self):
        runner = ExperimentRunner(base_seed=2, repetitions=200)
        repeated = runner.run_sampled(10_000, PetConfig(), rounds=256)
        summary = repeated.summary(epsilon=0.3)
        assert 0.95 < summary.accuracy < 1.05
        assert summary.within_fraction > 0.95

    def test_slot_accounting(self):
        runner = ExperimentRunner(base_seed=3, repetitions=5)
        repeated = runner.run_sampled(500, PetConfig(), rounds=10)
        assert repeated.slots_per_run == 50.0


class TestRunVectorized:
    def test_population_resampled_per_repetition(self):
        runner = ExperimentRunner(base_seed=4, repetitions=30)
        spec = WorkloadSpec(size=500, seed=9)
        repeated = runner.run_vectorized(
            spec, PetConfig(passive_tags=True), rounds=64
        )
        assert repeated.estimates.shape == (30,)
        # Different populations + paths: estimates should vary.
        assert len(set(repeated.estimates.round(3).tolist())) > 10

    def test_accuracy_reasonable(self):
        runner = ExperimentRunner(base_seed=5, repetitions=40)
        spec = WorkloadSpec(size=2_000, seed=1)
        repeated = runner.run_vectorized(spec, PetConfig(), rounds=128)
        summary = repeated.summary()
        assert 0.9 < summary.accuracy < 1.1


class TestRunCustom:
    def test_custom_callable_invoked_per_repetition(self):
        runner = ExperimentRunner(base_seed=6, repetitions=12)
        calls = []

        def one_run(rng: np.random.Generator) -> float:
            calls.append(rng)
            return float(rng.random())

        repeated = runner.run_custom(100, rounds=1, one_run=one_run)
        assert len(calls) == 12
        assert repeated.estimates.shape == (12,)
        # Child generators differ.
        assert len(set(repeated.estimates.tolist())) == 12


class TestValidation:
    def test_rejects_zero_repetitions(self):
        with pytest.raises(ConfigurationError):
            ExperimentRunner(repetitions=0)

    def test_sweep_covers_sizes(self):
        runner = ExperimentRunner(base_seed=7, repetitions=5)
        results = runner.sweep((100, 200), PetConfig(), rounds=8)
        assert [r.true_n for r in results] == [100, 200]

    def test_rejects_unknown_engine(self):
        runner = ExperimentRunner(base_seed=7, repetitions=2)
        with pytest.raises(ConfigurationError):
            runner.run_vectorized(
                WorkloadSpec(size=100, seed=0),
                PetConfig(),
                rounds=4,
                engine="turbo",
            )

    def test_rejects_zero_workers(self):
        runner = ExperimentRunner(base_seed=7, repetitions=2)
        with pytest.raises(ConfigurationError):
            runner.sweep((100,), PetConfig(), rounds=4, workers=0)


class TestSweepWorkers:
    """Parallel sweeps are bit-identical for any worker count."""

    SIZES = (500, 1_000, 2_000, 4_000)

    def test_workers_do_not_change_results(self):
        runner = ExperimentRunner(base_seed=8, repetitions=10)
        config = PetConfig()
        serial = runner.sweep(self.SIZES, config, rounds=16)
        one = runner.sweep(self.SIZES, config, rounds=16, workers=1)
        four = runner.sweep(self.SIZES, config, rounds=16, workers=4)
        for a, b, c in zip(serial, one, four):
            assert a.estimates.tolist() == b.estimates.tolist()
            assert a.estimates.tolist() == c.estimates.tolist()
            assert a.true_n == b.true_n == c.true_n
            assert a.slots_per_run == b.slots_per_run == c.slots_per_run

    def test_more_workers_than_cells(self):
        runner = ExperimentRunner(base_seed=9, repetitions=5)
        config = PetConfig()
        serial = runner.sweep((300, 600), config, rounds=8)
        wide = runner.sweep((300, 600), config, rounds=8, workers=8)
        for a, b in zip(serial, wide):
            assert a.estimates.tolist() == b.estimates.tolist()


class TestSweepTelemetryParity:
    """Worker snapshots merge to the same registry as a serial run."""

    SIZES = (200, 400, 800)

    def _swept_registry(self, workers):
        from repro.obs import MetricsRegistry

        registry = MetricsRegistry()
        runner = ExperimentRunner(
            base_seed=11, repetitions=6, registry=registry
        )
        runner.sweep(self.SIZES, PetConfig(), rounds=12, workers=workers)
        return registry

    def test_parallel_registry_equals_serial_on_parity_view(self):
        from repro.obs import parity_view

        serial = parity_view(self._swept_registry(None))
        parallel = parity_view(self._swept_registry(4))
        assert serial == parallel

    def test_counter_totals_identical(self):
        serial = self._swept_registry(None).snapshot()["counters"]
        parallel = self._swept_registry(4).snapshot()["counters"]
        assert serial == parallel
        # Cells were actually counted, not dropped.
        assert serial["experiment.cells"] == len(self.SIZES)

    def test_remote_cells_are_timed_not_nan(self):
        # Satellite: the old parallel path re-recorded remote cells
        # with seconds=NaN; merged snapshots carry the real timings.
        import math

        registry = self._swept_registry(2)
        stats = registry.snapshot()["histograms"][
            "experiment.cell_seconds"
        ]
        assert stats["count"] == len(self.SIZES)
        assert math.isfinite(stats["total"])
        assert stats["total"] > 0

    def test_worker_count_does_not_change_merged_registry(self):
        from repro.obs import parity_view

        views = {
            workers: parity_view(self._swept_registry(workers))
            for workers in (1, 2, 4)
        }
        assert views[1] == views[2] == views[4]
