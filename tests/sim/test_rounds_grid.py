"""Grid sweeps and shared seed matrices stay bit-identical to cells."""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PetConfig
from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.sim.experiment import ExperimentRunner
from repro.sim.protocol_batched import (
    ProtocolCellSpec,
    seed_matrix,
    sweep_protocol_cells,
)
from repro.sim.workload import WorkloadSpec

GRID = [2, 5, 8]
SPEC = WorkloadSpec(size=120, seed=7)


def _runner(repetitions: int = 8) -> ExperimentRunner:
    return ExperimentRunner(
        base_seed=2011,
        repetitions=repetitions,
        registry=MetricsRegistry(),
    )


@pytest.mark.parametrize("passive", [True, False])
def test_grid_matches_per_cell_run_cell(passive):
    config = PetConfig(tree_height=16, passive_tags=passive)
    runner = _runner()
    per_cell = [
        runner.run_vectorized(SPEC, config, rounds) for rounds in GRID
    ]
    grid = runner.sweep_rounds(SPEC, config, GRID)
    for reference, cell in zip(per_cell, grid):
        assert cell.rounds == reference.rounds
        np.testing.assert_array_equal(
            cell.estimates, reference.estimates
        )
        assert cell.slots_per_run == reference.slots_per_run


def test_parallel_grid_matches_serial():
    config = PetConfig(tree_height=16, passive_tags=True)
    runner = _runner()
    serial = runner.sweep_rounds(SPEC, config, GRID)
    parallel = runner.sweep_rounds(SPEC, config, GRID, workers=2)
    for a, b in zip(serial, parallel):
        np.testing.assert_array_equal(a.estimates, b.estimates)
        assert a.slots_per_run == b.slots_per_run


def test_grid_handles_unsorted_and_duplicate_rounds():
    config = PetConfig(tree_height=16, passive_tags=True)
    runner = _runner(repetitions=4)
    grid = runner.sweep_rounds(SPEC, config, [8, 2, 8])
    assert [cell.rounds for cell in grid] == [8, 2, 8]
    np.testing.assert_array_equal(
        grid[0].estimates, grid[2].estimates
    )


def test_grid_validates_inputs():
    config = PetConfig(tree_height=16, passive_tags=True)
    runner = _runner(repetitions=2)
    with pytest.raises(ConfigurationError, match="non-empty"):
        runner.sweep_rounds(SPEC, config, [])
    with pytest.raises(ConfigurationError, match="rounds"):
        runner.sweep_rounds(SPEC, config, [4, 0])
    with pytest.raises(ConfigurationError, match="workers"):
        runner.sweep_rounds(SPEC, config, [4], workers=-1)


def test_seed_matrix_columns_are_prefix_stable():
    # The share_seeds contract: a narrow cell's seed matrix is exactly
    # the column prefix of the widest one (full-range uint64 draws are
    # stream-prefix-stable), so slicing cannot change any estimate.
    wide = seed_matrix(2011, 6, 40)
    for draws in (1, 7, 39, 40):
        np.testing.assert_array_equal(
            seed_matrix(2011, 6, draws), wide[:, :draws]
        )


@pytest.mark.parametrize("workers", [None, 2])
def test_share_seeds_matches_unshared_sweep(workers):
    specs = [
        ProtocolCellSpec("lof", 80, 6),
        ProtocolCellSpec("fneb", 80, 10),
        ProtocolCellSpec("ezb", 80, 4),
    ]
    baseline = sweep_protocol_cells(
        specs, repetitions=6, registry=MetricsRegistry()
    )
    shared = sweep_protocol_cells(
        specs,
        repetitions=6,
        registry=MetricsRegistry(),
        share_seeds=True,
        workers=workers,
    )
    for a, b in zip(baseline, shared):
        np.testing.assert_array_equal(a.estimates, b.estimates)
        np.testing.assert_array_equal(a.statistics, b.statistics)
