"""Tests for the distribution-sampled simulator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.mellin import gray_depth_moments
from repro.config import PetConfig
from repro.errors import ConfigurationError
from repro.sim.sampled import SampledSimulator


class TestConstruction:
    def test_rejects_negative_n(self):
        with pytest.raises(ConfigurationError):
            SampledSimulator(-1)

    def test_rejects_passive_config(self):
        with pytest.raises(ConfigurationError):
            SampledSimulator(100, config=PetConfig(passive_tags=True))


class TestDepthSampling:
    def test_depths_in_range(self):
        simulator = SampledSimulator(
            1000, rng=np.random.default_rng(0)
        )
        depths = simulator.sample_depths(5000)
        assert (depths >= 0).all()
        assert (depths <= 32).all()

    def test_depth_moments_match_exact_law(self):
        n = 10_000
        simulator = SampledSimulator(n, rng=np.random.default_rng(1))
        depths = simulator.sample_depths(60_000)
        moments = gray_depth_moments(n, 32)
        assert depths.mean() == pytest.approx(
            moments.mean_depth, abs=0.03
        )
        assert depths.std() == pytest.approx(moments.std_depth, abs=0.05)

    def test_zero_population_always_depth_zero(self):
        simulator = SampledSimulator(0, rng=np.random.default_rng(2))
        assert (simulator.sample_depths(100) == 0).all()

    def test_empirical_pmf_matches_exact(self):
        from repro.analysis.mellin import gray_depth_pmf

        n = 5_000
        simulator = SampledSimulator(n, rng=np.random.default_rng(3))
        depths = simulator.sample_depths(100_000)
        empirical = np.bincount(depths, minlength=33) / depths.size
        exact = gray_depth_pmf(n, 32)
        assert np.abs(empirical - exact).max() < 0.01


class TestEstimation:
    def test_estimate_unbiased_at_scale(self):
        n = 50_000
        simulator = SampledSimulator(
            n, rng=np.random.default_rng(4)
        )
        estimates = simulator.estimate_batch(rounds=256, repetitions=200)
        assert estimates.mean() == pytest.approx(n, rel=0.03)

    def test_batch_matches_loop_in_law(self):
        n = 5_000
        sim_a = SampledSimulator(n, rng=np.random.default_rng(5))
        sim_b = SampledSimulator(n, rng=np.random.default_rng(6))
        batch = sim_a.estimate_batch(rounds=64, repetitions=100)
        looped = np.array(
            [sim_b.estimate(rounds=64).n_hat for _ in range(100)]
        )
        assert batch.mean() == pytest.approx(looped.mean(), rel=0.06)
        assert batch.std() == pytest.approx(looped.std(), rel=0.4)

    def test_slots_accounting(self):
        simulator = SampledSimulator(
            1000, rng=np.random.default_rng(7)
        )
        result = simulator.estimate(rounds=20)
        assert result.total_slots == 100  # 5 slots x 20 rounds at H=32

    def test_batch_rejects_bad_shape(self):
        simulator = SampledSimulator(10)
        with pytest.raises(ConfigurationError):
            simulator.estimate_batch(rounds=0, repetitions=5)
        with pytest.raises(ConfigurationError):
            simulator.estimate_batch(rounds=5, repetitions=0)
