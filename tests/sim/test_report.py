"""Tests for the report rendering helpers."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.report import Table, ascii_histogram, format_series


class TestTable:
    def test_render_aligns_columns(self):
        table = Table("Title", ["a", "longer"])
        table.add_row(1, 2.5)
        table.add_row(100, 3.14159)
        rendering = table.render()
        lines = rendering.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[2] and "longer" in lines[2]
        # All data lines share the same width.
        assert len(lines[4]) == len(lines[5])

    def test_wrong_arity_rejected(self):
        table = Table("t", ["x"])
        with pytest.raises(ConfigurationError):
            table.add_row(1, 2)

    def test_float_formatting(self):
        table = Table("t", ["v"])
        table.add_row(123456.0)
        table.add_row(12.345)
        table.add_row(0.12345)
        table.add_row(float("nan"))
        rendering = table.render()
        assert "123,456" in rendering
        assert "12.35" in rendering  # 2dp for medium magnitudes
        assert "0.1234" in rendering or "0.1235" in rendering
        assert "-" in rendering  # NaN cell

    def test_print_smoke(self, capsys):
        table = Table("t", ["v"])
        table.add_row(1)
        table.print()
        captured = capsys.readouterr()
        assert "t" in captured.out


class TestSeries:
    def test_format_series(self):
        text = format_series("acc", [1, 2], [0.5, 0.6])
        assert "series: acc" in text
        assert text.count("\n") == 2


class TestHistogram:
    def test_counts_sum(self):
        text = ascii_histogram([1.0, 2.0, 2.0, 3.0], bins=3)
        total = sum(int(line.rsplit(" ", 1)[-1])
                    for line in text.splitlines())
        assert total == 4

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_histogram([])

    def test_explicit_range_clips(self):
        text = ascii_histogram(
            [1.0, 100.0], bins=2, lo=0.0, hi=10.0
        )
        # 100.0 falls outside the histogram range.
        total = sum(int(line.rsplit(" ", 1)[-1])
                    for line in text.splitlines())
        assert total == 1


class TestProtocolResultsTable:
    @staticmethod
    def _result(n_hat=100.0):
        import numpy as np

        from repro.protocols.base import ProtocolResult

        return ProtocolResult(
            protocol="PET",
            n_hat=n_hat,
            rounds=4,
            total_slots=20,
            per_round_statistics=np.array([1.0, 2.0, 3.0, 4.0]),
        )

    def test_renders_summary_schema(self):
        from repro.sim.report import protocol_results_table

        table = protocol_results_table([self._result(110.0)], true_n=100)
        text = table.render()
        assert "PET" in text
        assert "10.00%" in text

    def test_without_true_n_drops_error_column(self):
        from repro.sim.report import protocol_results_table

        table = protocol_results_table([self._result()])
        assert "error" not in table.render().splitlines()[2]


class TestLegacyResultRecord:
    def test_keeps_old_shape_and_warns_once(self):
        import repro._deprecation as deprecation
        from repro.sim.report import legacy_result_record

        deprecation._SEEN.discard("sim.report.legacy_result_record")
        with pytest.warns(DeprecationWarning, match="n_hat"):
            record = legacy_result_record(
                TestProtocolResultsTable._result(123.0)
            )
        assert record["n_hat"] == pytest.approx(123.0)
        assert record["observations"] == 4
        # once per process: the second call stays silent
        import warnings

        with warnings.catch_warnings():
            warnings.simplefilter("error")
            legacy_result_record(TestProtocolResultsTable._result())
