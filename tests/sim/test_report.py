"""Tests for the report rendering helpers."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.report import Table, ascii_histogram, format_series


class TestTable:
    def test_render_aligns_columns(self):
        table = Table("Title", ["a", "longer"])
        table.add_row(1, 2.5)
        table.add_row(100, 3.14159)
        rendering = table.render()
        lines = rendering.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[2] and "longer" in lines[2]
        # All data lines share the same width.
        assert len(lines[4]) == len(lines[5])

    def test_wrong_arity_rejected(self):
        table = Table("t", ["x"])
        with pytest.raises(ConfigurationError):
            table.add_row(1, 2)

    def test_float_formatting(self):
        table = Table("t", ["v"])
        table.add_row(123456.0)
        table.add_row(12.345)
        table.add_row(0.12345)
        table.add_row(float("nan"))
        rendering = table.render()
        assert "123,456" in rendering
        assert "12.35" in rendering  # 2dp for medium magnitudes
        assert "0.1234" in rendering or "0.1235" in rendering
        assert "-" in rendering  # NaN cell

    def test_print_smoke(self, capsys):
        table = Table("t", ["v"])
        table.add_row(1)
        table.print()
        captured = capsys.readouterr()
        assert "t" in captured.out


class TestSeries:
    def test_format_series(self):
        text = format_series("acc", [1, 2], [0.5, 0.6])
        assert "series: acc" in text
        assert text.count("\n") == 2


class TestHistogram:
    def test_counts_sum(self):
        text = ascii_histogram([1.0, 2.0, 2.0, 3.0], bins=3)
        total = sum(int(line.rsplit(" ", 1)[-1])
                    for line in text.splitlines())
        assert total == 4

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ascii_histogram([])

    def test_explicit_range_clips(self):
        text = ascii_histogram(
            [1.0, 100.0], bins=2, lo=0.0, hi=10.0
        )
        # 100.0 falls outside the histogram range.
        total = sum(int(line.rsplit(" ", 1)[-1])
                    for line in text.splitlines())
        assert total == 1
