"""Reproducibility guarantees across the public API.

A reproduction library lives or dies by determinism: every simulator
tier and every protocol must return bit-identical results from the
same seed, and different seeds must actually decorrelate.  These tests
pin that contract for the whole zoo, so a refactor that silently
reorders RNG draws fails loudly.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PetConfig
from repro.protocols.registry import make_protocol, protocol_names
from repro.sim.multireader import MultiReaderSimulator
from repro.sim.sampled import SampledSimulator
from repro.sim.slotsim import SlotLevelSimulator
from repro.sim.vectorized import VectorizedSimulator
from repro.tags.mobility import MobileTagField
from repro.tags.population import TagPopulation


def _population(seed: int = 5, size: int = 300) -> TagPopulation:
    return TagPopulation.random(size, np.random.default_rng(seed))


class TestSimulatorDeterminism:
    def test_sampled_tier(self):
        runs = [
            SampledSimulator(
                1_000, rng=np.random.default_rng(1)
            ).estimate(rounds=64)
            for _ in range(2)
        ]
        assert runs[0].n_hat == runs[1].n_hat
        assert runs[0].depths.tolist() == runs[1].depths.tolist()

    def test_vectorized_tier_active_and_passive(self):
        population = _population()
        for passive in (False, True):
            config = PetConfig(passive_tags=passive)
            results = [
                VectorizedSimulator(
                    population,
                    config=config,
                    rng=np.random.default_rng(2),
                ).estimate(rounds=64)
                for _ in range(2)
            ]
            assert results[0].n_hat == results[1].n_hat, passive

    def test_slot_level_tier(self):
        population = _population(size=60)
        results = [
            SlotLevelSimulator(
                population,
                config=PetConfig(rounds=16),
                rng=np.random.default_rng(3),
            ).estimate()
            for _ in range(2)
        ]
        assert results[0].n_hat == results[1].n_hat

    def test_multireader_tier(self):
        population = _population()
        results = []
        for _ in range(2):
            field = MobileTagField.random(
                population.tag_ids, 2, 0.2,
                np.random.default_rng(4),
            )
            simulator = MultiReaderSimulator(
                population,
                field,
                config=PetConfig(passive_tags=True),
                rng=np.random.default_rng(5),
            )
            results.append(simulator.estimate(rounds=32))
        assert results[0].n_hat == results[1].n_hat

    def test_different_seeds_decorrelate(self):
        population = _population()
        a = VectorizedSimulator(
            population, rng=np.random.default_rng(10)
        ).estimate(rounds=64)
        b = VectorizedSimulator(
            population, rng=np.random.default_rng(11)
        ).estimate(rounds=64)
        assert a.depths.tolist() != b.depths.tolist()


class TestProtocolDeterminism:
    @pytest.mark.parametrize("name", protocol_names())
    def test_every_protocol_deterministic(self, name):
        if name in ("use", "upe", "ezb"):
            population = _population(size=200)
        else:
            population = _population()
        results = [
            make_protocol(name).estimate(
                population, rounds=8, rng=np.random.default_rng(6)
            )
            for _ in range(2)
        ]
        assert results[0].n_hat == results[1].n_hat, name
        assert results[0].total_slots == results[1].total_slots, name
