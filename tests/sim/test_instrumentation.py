"""Instrumentation must observe, never perturb.

The regression contract of the obs layer: running any experiment tier
with a real :class:`~repro.obs.MetricsRegistry` attached produces
bit-identical results to the uninstrumented run, and the recorded slot
accounting agrees exactly with the results' own bookkeeping.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PetConfig
from repro.obs import MetricsRegistry, use_registry
from repro.sim.experiment import ExperimentRunner
from repro.sim.sampled import SampledSimulator
from repro.sim.workload import WorkloadSpec

N = 2_000
ROUNDS = 128
REPETITIONS = 40
SEED = 99


def _cell(registry=None, engine="batched"):
    runner = ExperimentRunner(
        base_seed=SEED, repetitions=REPETITIONS, registry=registry
    )
    spec = WorkloadSpec(size=N, seed=0)
    return runner.run_vectorized(
        spec, PetConfig(passive_tags=True), ROUNDS, engine=engine
    )


class TestBitIdentity:
    def test_instrumented_batched_matches_uninstrumented(self):
        plain = _cell()
        instrumented = _cell(registry=MetricsRegistry())
        assert (
            plain.estimates.tolist() == instrumented.estimates.tolist()
        )
        assert plain.slots_per_run == instrumented.slots_per_run

    def test_instrumented_batched_matches_instrumented_loop(self):
        batched = _cell(registry=MetricsRegistry(), engine="batched")
        loop = _cell(registry=MetricsRegistry(), engine="loop")
        assert batched.estimates.tolist() == loop.estimates.tolist()

    def test_active_registry_does_not_perturb_sampled(self):
        def run() -> list[float]:
            simulator = SampledSimulator(
                N,
                config=PetConfig(rounds=ROUNDS),
                rng=np.random.default_rng(SEED),
            )
            return [simulator.estimate().n_hat for _ in range(3)]

        plain = run()
        with use_registry(MetricsRegistry()):
            instrumented = run()
        assert plain == instrumented


class TestSlotAccounting:
    @pytest.mark.parametrize("engine", ["batched", "loop"])
    def test_counters_agree_with_result_bookkeeping(self, engine):
        registry = MetricsRegistry()
        result = _cell(registry=registry, engine=engine)
        counters = registry.snapshot()["counters"]
        assert counters["experiment.cells"] == 1
        assert (
            counters["experiment.rounds"] == ROUNDS * REPETITIONS
        )
        if engine == "batched":
            expected = int(result.slots_per_run * REPETITIONS)
            assert counters["sim.slots"] == expected
            assert (
                counters["sim.slots.busy"] + counters["sim.slots.idle"]
                == counters["sim.slots"]
            )
            depths = registry.snapshot()["histograms"][
                "pet.gray_depth"
            ]
            assert depths["count"] == ROUNDS * REPETITIONS

    def test_cell_event_carries_final_estimate(self):
        registry = MetricsRegistry()
        result = _cell(registry=registry)
        (event,) = [
            e for e in registry.events if e["name"] == "cell"
        ]
        assert event["n"] == N
        assert event["mean_estimate"] == pytest.approx(
            float(result.estimates.mean())
        )
        assert event["seconds"] > 0

    def test_cell_span_recorded(self):
        registry = MetricsRegistry()
        _cell(registry=registry)
        assert any(
            record.name == "cell"
            and record.attributes.get("tier") == "batched"
            for record in registry.trace
        )

    def test_null_registry_records_nothing(self):
        _cell()  # default: process-wide null registry
        from repro.obs.registry import NULL_REGISTRY

        assert NULL_REGISTRY.snapshot()["counters"] == {}
        assert NULL_REGISTRY.trace == []
        assert NULL_REGISTRY.events == []
