"""Trace-context propagation into sweep worker processes.

The parallel sweeps serialize the live :class:`TraceContext` into each
worker submission and restore it around the cell, so worker-side spans
join the parent's trace — across ``fork`` (the POSIX default, where the
urandom entropy pool must reset) and ``spawn`` (where the context
crosses as a plain dict through pickling).
"""

from __future__ import annotations

import json
import subprocess
import sys
import textwrap

from repro.config import PetConfig
from repro.obs import MetricsRegistry, TraceContext, use_trace_context
from repro.sim.experiment import ExperimentRunner, _sweep_cell
from repro.sim.protocol_batched import (
    ProtocolCellSpec,
    sweep_protocol_cells,
)


def _traced_spans(registry):
    return [
        record for record in registry.trace
        if record.trace_id is not None
    ]


class TestSweepCellWorkerEntry:
    def test_installs_and_clears_the_given_context(self):
        ctx = TraceContext.root().child()
        _, snapshot = _sweep_cell(
            1, 2, 100, PetConfig(), 4, True, False, ctx.to_dict()
        )
        traced = [
            record for record in snapshot.spans
            if record.trace_id is not None
        ]
        assert traced
        assert {record.trace_id for record in traced} == {
            ctx.trace_id
        }
        # The cell's top-level span parents directly to the context
        # the parent derived for it.
        assert ctx.span_id in {
            record.parent_id for record in traced
        }

    def test_none_context_means_untraced_spans(self):
        _, snapshot = _sweep_cell(
            1, 2, 100, PetConfig(), 4, True, False, None
        )
        assert all(
            record.trace_id is None for record in snapshot.spans
        )


class TestForkPropagation:
    """Default POSIX start method: contexts cross the pool by dict."""

    def test_experiment_sweep_workers_join_the_trace(self):
        registry = MetricsRegistry()
        runner = ExperimentRunner(
            base_seed=5, repetitions=3, registry=registry
        )
        ctx = TraceContext.root()
        with use_trace_context(ctx):
            runner.sweep((200, 400, 800), PetConfig(), rounds=4,
                         workers=2)
        traced = _traced_spans(registry)
        assert {record.trace_id for record in traced} == {
            ctx.trace_id
        }
        assert any(record.name == "sweep" for record in traced)
        # Worker-recorded spans are linked into the trace: each hangs
        # off the per-cell context the parent derived from the live
        # sweep span (an unrecorded logical hop, so the parent id is
        # set even when no recorded span carries it — the same shape a
        # W3C remote parent has).
        worker_spans = [
            record for record in traced
            if "worker.id" in record.attributes
        ]
        assert len(worker_spans) >= 3
        for record in worker_spans:
            assert record.parent_id is not None

    def test_worker_span_ids_are_unique_across_processes(self):
        """The fork-reset entropy pool: no two spans (parent or
        worker side) may reuse a span id."""
        registry = MetricsRegistry()
        runner = ExperimentRunner(
            base_seed=5, repetitions=3, registry=registry
        )
        with use_trace_context(TraceContext.root()):
            runner.sweep(
                (200, 400, 800, 1_600), PetConfig(), rounds=4,
                workers=4,
            )
        ids = [
            record.span_id for record in registry.trace
            if record.span_id is not None
        ]
        assert len(ids) == len(set(ids))

    def test_protocol_sweep_workers_join_the_trace(self):
        registry = MetricsRegistry()
        specs = [
            ProtocolCellSpec("fneb", 150, 6),
            ProtocolCellSpec("lof", 150, 6),
        ]
        ctx = TraceContext.root()
        with use_trace_context(ctx):
            sweep_protocol_cells(
                specs,
                repetitions=3,
                base_seed=21,
                workers=2,
                registry=registry,
            )
        traced = _traced_spans(registry)
        assert {record.trace_id for record in traced} == {
            ctx.trace_id
        }
        cell_spans = [
            record for record in traced
            if "worker.id" in record.attributes
        ]
        assert len(cell_spans) >= len(specs)

    def test_untraced_sweep_stays_untraced(self):
        registry = MetricsRegistry()
        runner = ExperimentRunner(
            base_seed=5, repetitions=2, registry=registry
        )
        runner.sweep((200, 400), PetConfig(), rounds=4, workers=2)
        assert _traced_spans(registry) == []


class TestSpawnPropagation:
    def test_spawn_workers_join_the_trace(self):
        """Same contract under the ``spawn`` start method, where the
        context must survive pickling into a fresh interpreter."""
        script = textwrap.dedent(
            """
            import json
            import multiprocessing

            multiprocessing.set_start_method("spawn", force=True)

            from repro.config import PetConfig
            from repro.obs import (
                MetricsRegistry,
                TraceContext,
                use_trace_context,
            )
            from repro.sim.experiment import ExperimentRunner

            registry = MetricsRegistry()
            runner = ExperimentRunner(
                base_seed=5, repetitions=2, registry=registry
            )
            ctx = TraceContext.root()
            with use_trace_context(ctx):
                runner.sweep(
                    (200, 400), PetConfig(), rounds=4, workers=2
                )
            spans = [
                record for record in registry.trace
                if record.trace_id is not None
            ]
            print(json.dumps({
                "expected_trace": ctx.trace_id,
                "trace_ids": sorted(
                    {record.trace_id for record in spans}
                ),
                "worker_spans": sum(
                    1 for record in spans
                    if "worker.id" in record.attributes
                ),
                "span_ids_unique": len(
                    {record.span_id for record in spans}
                ) == len(spans),
            }))
            """
        )
        result = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0, result.stderr
        payload = json.loads(result.stdout.strip().splitlines()[-1])
        assert payload["trace_ids"] == [payload["expected_trace"]]
        assert payload["worker_spans"] >= 2
        assert payload["span_ids_unique"]
