"""Tests for workload specification and synthesis."""

from __future__ import annotations

import pytest

from repro.errors import ConfigurationError
from repro.sim.workload import (
    WorkloadSpec,
    build_population,
    logarithmic_sizes,
)


class TestWorkloadSpec:
    def test_sequential_population(self):
        population = build_population(
            WorkloadSpec(size=10, id_space="sequential")
        )
        assert population.tag_ids.tolist() == list(range(10))

    def test_random_population_deterministic_by_seed(self):
        a = build_population(WorkloadSpec(size=100, seed=5))
        b = build_population(WorkloadSpec(size=100, seed=5))
        c = build_population(WorkloadSpec(size=100, seed=6))
        assert a.tag_ids.tolist() == b.tag_ids.tolist()
        assert a.tag_ids.tolist() != c.tag_ids.tolist()

    def test_rejects_bad_inputs(self):
        with pytest.raises(ConfigurationError):
            WorkloadSpec(size=-1)
        with pytest.raises(ConfigurationError):
            WorkloadSpec(size=1, id_space="fibonacci")


class TestLogarithmicSizes:
    def test_endpoints_present(self):
        sizes = logarithmic_sizes(100, 10_000, 5)
        assert sizes[0] == 100
        assert sizes[-1] == 10_000
        assert sizes == sorted(sizes)

    def test_single_point(self):
        assert logarithmic_sizes(50, 1000, 1) == [50]

    def test_rejects_bad_ranges(self):
        with pytest.raises(ConfigurationError):
            logarithmic_sizes(0, 10, 3)
        with pytest.raises(ConfigurationError):
            logarithmic_sizes(100, 10, 3)
        with pytest.raises(ConfigurationError):
            logarithmic_sizes(1, 10, 0)
