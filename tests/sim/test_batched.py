"""Unit tests for the batched experiment engine's building blocks.

Bit-identity of whole cells against the reference loop and the
slot-level simulator lives in ``test_equivalence.py``; these tests pin
the batched helpers against their scalar counterparts and the engine's
validation behaviour.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import PetConfig
from repro.errors import ConfigurationError
from repro.sim.batched import (
    BatchedExperimentEngine,
    batched_gray_depths_fresh,
    batched_gray_depths_sorted,
)
from repro.sim.vectorized import gray_depth_of_codes, gray_depth_sorted
from repro.sim.workload import WorkloadSpec, build_population

HEIGHT = 16


class TestBatchedGrayDepthsSorted:
    def test_matches_scalar_on_random_paths(self):
        rng = np.random.default_rng(40)
        codes = np.sort(
            rng.integers(0, 2**HEIGHT, size=400, dtype=np.uint64)
        )
        path_bits = rng.integers(
            0, 2**HEIGHT, size=1_000, dtype=np.uint64
        )
        batched = batched_gray_depths_sorted(codes, path_bits, HEIGHT)
        for bits, depth in zip(path_bits.tolist(), batched.tolist()):
            assert depth == gray_depth_sorted(codes, bits, HEIGHT)

    def test_exact_code_hit_is_full_depth(self):
        codes = np.sort(
            np.array([3, 77, 1024, 40_000], dtype=np.uint64)
        )
        batched = batched_gray_depths_sorted(codes, codes, HEIGHT)
        assert batched.tolist() == [HEIGHT] * codes.size

    def test_empty_population_depth_zero(self):
        path_bits = np.arange(10, dtype=np.uint64)
        batched = batched_gray_depths_sorted(
            np.array([], dtype=np.uint64), path_bits, HEIGHT
        )
        assert batched.tolist() == [0] * 10

    def test_boundary_paths(self):
        # Paths below the smallest and above the largest code exercise
        # the edge masking of the missing neighbour.
        codes = np.sort(
            np.array([100, 200, 60_000], dtype=np.uint64)
        )
        lo = np.array([0], dtype=np.uint64)
        hi = np.array([2**HEIGHT - 1], dtype=np.uint64)
        assert batched_gray_depths_sorted(codes, lo, HEIGHT)[
            0
        ] == gray_depth_sorted(codes, 0, HEIGHT)
        assert batched_gray_depths_sorted(codes, hi, HEIGHT)[
            0
        ] == gray_depth_sorted(codes, 2**HEIGHT - 1, HEIGHT)


class TestBatchedGrayDepthsFresh:
    def test_matches_scalar_per_round(self):
        population = build_population(WorkloadSpec(size=120, seed=21))
        rng = np.random.default_rng(41)
        rounds = 64
        seeds = rng.integers(0, 2**63, size=rounds, dtype=np.uint64)
        path_bits = rng.integers(
            0, 2**HEIGHT, size=rounds, dtype=np.uint64
        )
        batched = batched_gray_depths_fresh(
            population.tag_ids,
            seeds,
            path_bits,
            HEIGHT,
            population.family,
        )
        for seed, bits, depth in zip(
            seeds.tolist(), path_bits.tolist(), batched.tolist()
        ):
            codes = population.codes(seed, HEIGHT)
            assert depth == gray_depth_of_codes(codes, bits, HEIGHT)

    def test_chunking_does_not_change_depths(self):
        population = build_population(WorkloadSpec(size=90, seed=22))
        rng = np.random.default_rng(42)
        rounds = 50
        seeds = rng.integers(0, 2**63, size=rounds, dtype=np.uint64)
        path_bits = rng.integers(
            0, 2**HEIGHT, size=rounds, dtype=np.uint64
        )
        one_shot = batched_gray_depths_fresh(
            population.tag_ids,
            seeds,
            path_bits,
            HEIGHT,
            population.family,
        )
        # chunk_elements of 1 forces one round per chunk.
        tiny_chunks = batched_gray_depths_fresh(
            population.tag_ids,
            seeds,
            path_bits,
            HEIGHT,
            population.family,
            chunk_elements=1,
        )
        assert one_shot.tolist() == tiny_chunks.tolist()

    def test_empty_population_depth_zero(self):
        population = build_population(WorkloadSpec(size=0, seed=23))
        seeds = np.arange(8, dtype=np.uint64)
        path_bits = np.arange(8, dtype=np.uint64)
        batched = batched_gray_depths_fresh(
            population.tag_ids,
            seeds,
            path_bits,
            HEIGHT,
            population.family,
        )
        assert batched.tolist() == [0] * 8


class TestEngineValidation:
    def test_rejects_zero_repetitions(self):
        with pytest.raises(ConfigurationError):
            BatchedExperimentEngine(repetitions=0)

    def test_rejects_zero_rounds(self):
        engine = BatchedExperimentEngine(base_seed=1, repetitions=2)
        with pytest.raises(ConfigurationError):
            engine.run_cell(
                WorkloadSpec(size=10, seed=0), PetConfig(), rounds=0
            )

    def test_rejects_excessive_height(self):
        engine = BatchedExperimentEngine(base_seed=1, repetitions=2)
        with pytest.raises(ConfigurationError):
            engine.run_cell(
                WorkloadSpec(size=10, seed=0),
                PetConfig(tree_height=63),
                rounds=4,
            )

    def test_result_shape_and_metadata(self):
        engine = BatchedExperimentEngine(base_seed=1, repetitions=7)
        spec = WorkloadSpec(size=200, seed=5)
        repeated = engine.run_cell(
            spec, PetConfig(tree_height=HEIGHT, passive_tags=True), 12
        )
        assert repeated.estimates.shape == (7,)
        assert repeated.true_n == 200
        assert repeated.rounds == 12
        assert repeated.slots_per_run > 0
