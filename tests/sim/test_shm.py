"""Shared-memory array lifecycle: ownership, cleanup, crash safety."""

from __future__ import annotations

import glob

import numpy as np
import pytest

from repro.config import PetConfig
from repro.errors import ConfigurationError
from repro.obs.registry import MetricsRegistry
from repro.sim.experiment import ExperimentRunner
from repro.sim.protocol_batched import (
    ProtocolCellSpec,
    run_protocol_cell,
    sweep_protocol_cells,
)
from repro.sim.shm import SharedArray, SharedArraySpec
from repro.sim.workload import WorkloadSpec


def _segment_names() -> "set[str]":
    """Names of the live POSIX shared-memory segments on this host."""
    return {
        path.rsplit("/", 1)[-1] for path in glob.glob("/dev/shm/psm_*")
    }


@pytest.fixture(autouse=True)
def _no_leaked_segments():
    """Every test must leave the system segment table as it found it."""
    before = _segment_names()
    yield
    assert _segment_names() - before == set()


# ---------------------------------------------------------------------
# SharedArray basics


def test_create_attach_roundtrip():
    source = np.arange(24, dtype=np.uint64).reshape(4, 6)
    with SharedArray.create(source) as shared:
        assert shared.owner
        np.testing.assert_array_equal(shared.array, source)
        spec = shared.spec
        assert isinstance(spec, SharedArraySpec)
        assert spec.shape == (4, 6)
        assert spec.nbytes == source.nbytes
        attached = SharedArray.attach(spec)
        try:
            assert not attached.owner
            np.testing.assert_array_equal(attached.array, source)
            # Writes through one mapping are visible through the other.
            attached.array[0, 0] = np.uint64(99)
            assert int(shared.array[0, 0]) == 99
        finally:
            attached.close()


def test_context_manager_unlinks_on_exception():
    spec = None
    with pytest.raises(RuntimeError, match="boom"):
        with SharedArray.zeros((8,), np.int64) as shared:
            spec = shared.spec
            raise RuntimeError("boom")
    with pytest.raises(FileNotFoundError):
        SharedArray.attach(spec)


def test_close_is_idempotent_and_invalidates_view():
    shared = SharedArray.zeros((4,), np.float64)
    shared.close()
    shared.close()
    with pytest.raises(ConfigurationError, match="closed"):
        shared.array
    shared.unlink()


def test_attached_handle_refuses_to_unlink():
    with SharedArray.zeros((4,), np.int64) as shared:
        attached = SharedArray.attach(shared.spec)
        try:
            with pytest.raises(ConfigurationError, match="creating"):
                attached.unlink()
        finally:
            attached.close()


def test_empty_arrays_are_rejected():
    with pytest.raises(ConfigurationError, match="non-empty"):
        SharedArray.zeros((0, 4), np.int64)


def test_creation_counts_segments_and_bytes():
    registry = MetricsRegistry()
    with SharedArray.zeros((16,), np.uint64, registry=registry):
        pass
    snapshot = registry.snapshot()
    counters = {
        name: value for name, value in snapshot.counters.items()
    }
    assert counters["sharedmem.segments"] == 1
    assert counters["sharedmem.bytes"] == 16 * 8


# ---------------------------------------------------------------------
# Sweep lifecycle: serial never allocates, crashes never leak


def test_serial_share_seeds_allocates_no_segment():
    registry = MetricsRegistry()
    specs = [
        ProtocolCellSpec("lof", 64, 6),
        ProtocolCellSpec("fneb", 64, 4),
    ]
    sweep_protocol_cells(
        specs,
        repetitions=4,
        registry=registry,
        share_seeds=True,
    )
    counters = registry.snapshot().counters
    assert counters.get("sharedmem.segments", 0) == 0


def test_serial_rounds_grid_allocates_no_segment():
    registry = MetricsRegistry()
    runner = ExperimentRunner(
        base_seed=5, repetitions=4, registry=registry
    )
    for workers in (None, 0, 1):
        runner.sweep_rounds(
            WorkloadSpec(size=32, seed=3),
            PetConfig(tree_height=16, passive_tags=True),
            [2, 4],
            workers=workers,
        )
    counters = registry.snapshot().counters
    assert counters.get("sharedmem.segments", 0) == 0


def test_parallel_sweep_unlinks_when_a_worker_crashes():
    # An unbuildable spec makes the worker raise after the parent has
    # already created the shared seed segment; the autouse fixture
    # asserts the segment is gone regardless.
    specs = [
        ProtocolCellSpec("lof", 64, 6),
        ProtocolCellSpec("no-such-protocol", 64, 6),
    ]
    with pytest.raises(Exception):
        sweep_protocol_cells(
            specs,
            repetitions=4,
            workers=2,
            registry=MetricsRegistry(),
            share_seeds=True,
        )


def test_parallel_rounds_grid_counts_and_cleans_segments():
    registry = MetricsRegistry()
    runner = ExperimentRunner(
        base_seed=5, repetitions=6, registry=registry
    )
    runner.sweep_rounds(
        WorkloadSpec(size=32, seed=3),
        PetConfig(tree_height=16, passive_tags=True),
        [2, 4, 8],
        workers=2,
    )
    counters = registry.snapshot().counters
    assert counters["sharedmem.segments"] == 2  # words + depths
    assert counters["sharedmem.unlinks"] == 2


def test_cell_rejects_wrongly_shaped_seed_matrix():
    spec = ProtocolCellSpec("lof", 64, 6)
    protocol, population = spec.build()
    with pytest.raises(ConfigurationError, match="shape"):
        run_protocol_cell(
            protocol,
            population,
            rounds=spec.rounds,
            repetitions=4,
            registry=MetricsRegistry(),
            seeds=np.zeros((4, 3), dtype=np.uint64),
        )
