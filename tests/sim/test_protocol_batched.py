"""Tests for the cross-protocol batched comparison engine."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError, EstimationError
from repro.obs import MetricsRegistry
from repro.obs.registry import NULL_REGISTRY
from repro.protocols import make_protocol
from repro.protocols.pet import PetProtocol
from repro.sim.experiment import ExperimentRunner
from repro.sim.protocol_batched import (
    ProtocolCellSpec,
    run_protocol_cell,
    seed_matrix,
    sweep_protocol_cells,
)
from repro.sim.workload import WorkloadSpec, build_population

#: Every protocol with a batched engine, with configs small enough for
#: fast cells (UPE's frame < prior exercises the persistence mask).
ENGINE_CASES = [
    ("fneb", {}),
    ("lof", {}),
    ("use", {"frame_size": 256}),
    ("upe", {"frame_size": 64, "prior_n": 256}),
    ("ezb", {"frame_size": 128}),
    ("aloha", {"frame_size": 256}),
]


@pytest.fixture(scope="module")
def population():
    return build_population(WorkloadSpec(size=200, seed=7))


class TestSeedMatrix:
    def test_rows_match_scalar_seed_stream(self):
        seeds = seed_matrix(base_seed=123, repetitions=4, draws=16)
        children = np.random.SeedSequence(123).spawn(4)
        for row, child in zip(seeds, children):
            rng = np.random.default_rng(child)
            scalar = [int(rng.integers(0, 2**63)) for _ in range(16)]
            assert row.tolist() == scalar

    def test_validates_arguments(self):
        with pytest.raises(ConfigurationError):
            seed_matrix(1, repetitions=0, draws=4)
        with pytest.raises(ConfigurationError):
            seed_matrix(1, repetitions=4, draws=0)


class TestBitIdentity:
    @pytest.mark.parametrize("name,config", ENGINE_CASES)
    def test_cell_matches_scalar_reference_loop(
        self, name, config, population
    ):
        protocol = make_protocol(name, **config)
        cell = run_protocol_cell(
            protocol, population, rounds=12, repetitions=6, base_seed=99
        )
        reference = ExperimentRunner(
            base_seed=99, repetitions=6
        ).run_custom(
            population.size,
            12,
            lambda rng: protocol.estimate(population, 12, rng).n_hat,
        )
        assert cell.estimates.tolist() == reference.estimates.tolist()

    def test_statistics_shape_accounts_for_multi_frame_rounds(
        self, population
    ):
        ezb = make_protocol("ezb", frame_size=64, frames_per_round=3)
        cell = run_protocol_cell(
            ezb, population, rounds=5, repetitions=4, base_seed=1
        )
        assert cell.statistics.shape == (4, 15)
        assert cell.slots_per_run == 5 * ezb.slots_per_round()


class TestSaturationPolicy:
    def test_raise_propagates_like_the_scalar_loop(self):
        # n >> f: every slot busy, the zero inversion is undefined.
        saturated_pop = build_population(WorkloadSpec(size=60, seed=3))
        use = make_protocol("use", frame_size=4)
        with pytest.raises(EstimationError):
            run_protocol_cell(
                use, saturated_pop, rounds=3, repetitions=4, base_seed=5
            )

    def test_nan_flags_and_counts_saturated_runs(self):
        saturated_pop = build_population(WorkloadSpec(size=60, seed=3))
        use = make_protocol("use", frame_size=4)
        cell = run_protocol_cell(
            use,
            saturated_pop,
            rounds=3,
            repetitions=4,
            base_seed=5,
            on_error="nan",
        )
        assert cell.saturated_runs == 4
        assert np.isnan(cell.estimates).all()

    def test_rejects_unknown_policy(self, population):
        with pytest.raises(ConfigurationError):
            run_protocol_cell(
                make_protocol("fneb"),
                population,
                rounds=2,
                on_error="ignore",
            )


class TestValidation:
    def test_pet_has_no_protocol_engine(self, population):
        assert PetProtocol().batched_engine() is None
        with pytest.raises(ConfigurationError, match="batched engine"):
            run_protocol_cell(
                PetProtocol(), population, rounds=4, repetitions=2
            )

    def test_rejects_bad_rounds(self, population):
        with pytest.raises(ConfigurationError):
            run_protocol_cell(make_protocol("fneb"), population, rounds=0)


class TestSweep:
    SPECS = [
        ProtocolCellSpec("fneb", 150, 6),
        ProtocolCellSpec("lof", 150, 6),
        ProtocolCellSpec("use", 150, 6, config={"frame_size": 256}),
    ]

    def test_workers_do_not_change_results(self):
        serial = sweep_protocol_cells(
            self.SPECS, repetitions=5, base_seed=21
        )
        parallel = sweep_protocol_cells(
            self.SPECS, repetitions=5, base_seed=21, workers=2
        )
        for a, b in zip(serial, parallel):
            assert a.protocol == b.protocol
            assert a.estimates.tolist() == b.estimates.tolist()

    def test_parallel_cells_are_recorded_in_parent_registry(self):
        registry = MetricsRegistry()
        sweep_protocol_cells(
            self.SPECS,
            repetitions=5,
            base_seed=21,
            workers=2,
            registry=registry,
        )
        counters = registry.snapshot()["counters"]
        assert counters["experiment.cells"] == len(self.SPECS)
        assert counters["protocol.FNEB.runs"] == 5

    def test_rejects_bad_worker_count(self):
        with pytest.raises(ConfigurationError):
            sweep_protocol_cells(self.SPECS, repetitions=2, workers=0)

    def test_parallel_registry_matches_serial_on_parity_view(self):
        from repro.obs import parity_view

        views = {}
        for workers in (None, 2):
            registry = MetricsRegistry()
            results = sweep_protocol_cells(
                self.SPECS,
                repetitions=5,
                base_seed=21,
                workers=workers,
                registry=registry,
            )
            views[workers] = (
                parity_view(registry),
                [r.estimates.tolist() for r in results],
            )
        assert views[None] == views[2]

    def test_remote_cells_are_timed_not_nan(self):
        import math

        registry = MetricsRegistry()
        sweep_protocol_cells(
            self.SPECS,
            repetitions=5,
            base_seed=21,
            workers=2,
            registry=registry,
        )
        stats = registry.snapshot()["histograms"][
            "experiment.cell_seconds"
        ]
        assert stats["count"] == len(self.SPECS)
        assert math.isfinite(stats["total"])
        assert stats["total"] > 0

    def test_spec_label_and_build(self):
        spec = ProtocolCellSpec("lof", 99, 4)
        assert spec.label == "lof@n=99"
        protocol, pop = spec.build()
        assert protocol.name == "LoF"
        assert pop.size == 99


class TestObservability:
    def test_counters_match_the_scalar_paths(self, population):
        protocol = make_protocol("lof")
        batched_registry = MetricsRegistry()
        cell = run_protocol_cell(
            protocol,
            population,
            rounds=7,
            repetitions=5,
            base_seed=31,
            registry=batched_registry,
        )

        scalar_registry = MetricsRegistry()
        instrumented = make_protocol("lof")
        instrumented.instrument(scalar_registry)
        runner = ExperimentRunner(base_seed=31, repetitions=5)
        runner.run_custom(
            population.size,
            7,
            lambda rng: instrumented.estimate(population, 7, rng).n_hat,
        )

        batched = batched_registry.snapshot()["counters"]
        scalar = scalar_registry.snapshot()["counters"]
        for key in (
            "protocol.LoF.runs",
            "protocol.LoF.rounds",
            "protocol.LoF.slots",
        ):
            assert batched[key] == scalar[key], key
        assert (
            batched["protocol.LoF.slots"]
            == cell.slots_per_run * cell.repetitions
        )

    def test_histogram_sees_every_round_statistic(self, population):
        registry = MetricsRegistry()
        cell = run_protocol_cell(
            make_protocol("fneb"),
            population,
            rounds=9,
            repetitions=4,
            base_seed=8,
            registry=registry,
        )
        histogram = registry.snapshot()["histograms"][
            "protocol.FNEB.round_statistic"
        ]
        assert histogram["count"] == 9 * 4
        assert histogram["total"] == pytest.approx(cell.statistics.sum())

    def test_cell_event_carries_saturation(self):
        saturated_pop = build_population(WorkloadSpec(size=60, seed=3))
        registry = MetricsRegistry()
        run_protocol_cell(
            make_protocol("use", frame_size=4),
            saturated_pop,
            rounds=3,
            repetitions=2,
            base_seed=5,
            registry=registry,
            on_error="nan",
        )
        (event,) = [
            e for e in registry.events if e["name"] == "cell"
        ]
        assert event["tier"] == "protocol-batched"
        assert event["saturated_runs"] == 2

    def test_null_registry_records_nothing(self, population):
        cell = run_protocol_cell(
            make_protocol("fneb"),
            population,
            rounds=4,
            repetitions=2,
            base_seed=8,
            registry=NULL_REGISTRY,
        )
        assert cell.repetitions == 2
        assert not NULL_REGISTRY  # stays falsy / no-op


class TestCellRecordSchema:
    def test_to_dict_uses_common_summary_schema(self, population):
        cell = run_protocol_cell(
            make_protocol("fneb"),
            population,
            rounds=12,
            repetitions=4,
            base_seed=7,
        )
        record = cell.to_dict()
        for key in (
            "protocol",
            "estimate",
            "true_n",
            "relative_error",
            "rounds",
            "total_slots",
            "seed_provenance",
        ):
            assert key in record
        assert record["seed_provenance"] == "base_seed=7"
        assert record["true_n"] == population.size
        assert record["repetitions"] == 4
        assert "estimates" not in record
        with_estimates = cell.to_dict(include_estimates=True)
        assert len(with_estimates["estimates"]) == 4
