"""Tests for uniform code/slot hashing."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hashing.uniform import (
    uniform_code,
    uniform_codes,
    uniform_slot,
    uniform_slots,
)


class TestUniformCode:
    def test_within_range(self):
        for bits in (1, 8, 32, 64):
            code = uniform_code(1, 99, bits)
            assert 0 <= code < (1 << bits)

    def test_vectorized_matches_scalar(self):
        ids = np.array([3, 7, 11, 10_000], dtype=np.uint64)
        vector = uniform_codes(5, ids, 32)
        scalar = [uniform_code(5, int(i), 32) for i in ids]
        assert vector.tolist() == scalar

    def test_different_seeds_give_different_mappings(self):
        ids = np.arange(100, dtype=np.uint64)
        codes_a = uniform_codes(1, ids, 32)
        codes_b = uniform_codes(2, ids, 32)
        assert (codes_a != codes_b).any()

    def test_codes_cover_both_halves(self):
        # With 1000 tags, both the 0-subtree and 1-subtree of the PET
        # root must be populated (overwhelmingly likely).
        ids = np.arange(1000, dtype=np.uint64)
        codes = uniform_codes(3, ids, 32)
        top_bits = codes >> np.uint64(31)
        assert 0 < int(top_bits.sum()) < 1000


class TestUniformSlot:
    def test_within_frame(self):
        for frame in (1, 2, 7, 1024):
            slot = uniform_slot(1, 42, frame)
            assert 0 <= slot < frame

    def test_rejects_empty_frame(self):
        with pytest.raises(ConfigurationError):
            uniform_slot(1, 42, 0)
        with pytest.raises(ConfigurationError):
            uniform_slots(1, np.array([1], dtype=np.uint64), 0)

    def test_vectorized_matches_scalar(self):
        ids = np.array([3, 9, 2**40], dtype=np.uint64)
        vector = uniform_slots(8, ids, 1000)
        scalar = [uniform_slot(8, int(i), 1000) for i in ids]
        assert vector.tolist() == scalar

    def test_slots_roughly_uniform(self):
        ids = np.arange(50_000, dtype=np.uint64)
        slots = uniform_slots(4, ids, 100)
        counts = np.bincount(slots, minlength=100)
        expected = 500
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        assert chi2 < 200  # 99 dof: mean 99, std ~14

    def test_min_slot_statistic_reasonable(self):
        # FNEB relies on min slot ~ f/n; check the order of magnitude.
        ids = np.arange(1000, dtype=np.uint64)
        frame = 2**20
        minima = [
            int(uniform_slots(seed, ids, frame).min())
            for seed in range(200)
        ]
        mean_min = float(np.mean(minima)) + 1.0
        assert frame / 1000 * 0.5 < mean_min < frame / 1000 * 2.0
