"""Tests for geometric-distribution hashing (the LoF primitive)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hashing.geometric import (
    geometric_bucket,
    geometric_buckets,
    geometric_pmf,
    leading_zeros64_vec,
)


class TestLeadingZeros:
    def test_zero_maps_to_64(self):
        values = np.array([0], dtype=np.uint64)
        assert leading_zeros64_vec(values)[0] == 64

    def test_powers_of_two(self):
        values = np.array(
            [1, 2, 2**31, 2**62, 2**63], dtype=np.uint64
        )
        zeros = leading_zeros64_vec(values)
        assert zeros.tolist() == [63, 62, 32, 1, 0]

    def test_matches_python_bit_length(self):
        rng = np.random.default_rng(0)
        values = rng.integers(1, 2**63, size=500).astype(np.uint64)
        zeros = leading_zeros64_vec(values)
        expected = [64 - int(v).bit_length() for v in values]
        assert zeros.tolist() == expected

    def test_large_values_near_2_64(self):
        values = np.array([2**64 - 1, 2**63 + 5], dtype=np.uint64)
        assert leading_zeros64_vec(values).tolist() == [0, 0]


class TestGeometricBucket:
    def test_within_range(self):
        for tag in range(100):
            bucket = geometric_bucket(1, tag, 31)
            assert 0 <= bucket <= 31

    def test_rejects_negative_max(self):
        with pytest.raises(ConfigurationError):
            geometric_bucket(1, 1, -1)
        with pytest.raises(ConfigurationError):
            geometric_buckets(1, np.array([1], dtype=np.uint64), -1)

    def test_vectorized_matches_scalar(self):
        ids = np.arange(300, dtype=np.uint64)
        vector = geometric_buckets(9, ids, 31)
        scalar = [geometric_bucket(9, int(i), 31) for i in ids]
        assert vector.tolist() == scalar

    def test_bucket_zero_gets_about_half(self):
        ids = np.arange(40_000, dtype=np.uint64)
        buckets = geometric_buckets(2, ids, 31)
        fraction_zero = float((buckets == 0).mean())
        assert 0.47 < fraction_zero < 0.53

    def test_bucket_masses_halve(self):
        ids = np.arange(80_000, dtype=np.uint64)
        buckets = geometric_buckets(6, ids, 31)
        counts = np.bincount(buckets, minlength=32)
        for j in range(5):
            ratio = counts[j + 1] / counts[j]
            assert 0.4 < ratio < 0.6


class TestGeometricPmf:
    def test_sums_to_one(self):
        for max_bucket in (0, 1, 5, 31):
            pmf = geometric_pmf(max_bucket)
            assert pmf.sum() == pytest.approx(1.0)

    def test_shape(self):
        pmf = geometric_pmf(31)
        assert len(pmf) == 32
        assert pmf[0] == pytest.approx(0.5)
        assert pmf[1] == pytest.approx(0.25)
        # The tail bucket absorbs the residual 2^-31.
        assert pmf[31] == pytest.approx(2.0**-31)

    def test_rejects_negative(self):
        with pytest.raises(ConfigurationError):
            geometric_pmf(-1)
