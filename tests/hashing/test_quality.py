"""Tests for the hash-quality diagnostics."""

from __future__ import annotations

import pytest

from repro.errors import AnalysisError
from repro.hashing.family import (
    HashFamily,
    Md5HashFamily,
    SplitMix64Family,
)
from repro.hashing.quality import (
    avalanche_score,
    bit_bias,
    prefix_collision_rate,
    summarize_family,
    uniformity_chi2,
)


class _BadHash(HashFamily):
    """Deliberately broken family: only mixes the low bits."""

    def digest(self, seed: int, key: int) -> int:
        return (key * 2654435761 + seed) % 65536


class TestUniformity:
    def test_splitmix_uniform(self):
        assert uniformity_chi2(SplitMix64Family()) < 1.3

    def test_md5_uniform(self):
        assert uniformity_chi2(Md5HashFamily(), samples=20_000) < 1.3

    def test_bad_hash_flagged_by_avalanche(self):
        # The broken family may pass bucket-uniformity (it permutes the
        # low 16 bits) but fails avalanche badly: its top 48 output
        # bits never change.
        assert avalanche_score(_BadHash()) < 0.25

    def test_rejects_undersampled(self):
        with pytest.raises(AnalysisError):
            uniformity_chi2(samples=100, buckets=256)


class TestAvalanche:
    def test_splitmix_near_half(self):
        score = avalanche_score(SplitMix64Family())
        assert 0.47 < score < 0.53

    def test_rejects_bad_samples(self):
        with pytest.raises(AnalysisError):
            avalanche_score(samples=0)


class TestBitBias:
    def test_splitmix_unbiased(self):
        biases = bit_bias(SplitMix64Family())
        assert len(biases) == 64
        # 50k samples: standard error ~0.0022; allow 5 sigma.
        assert biases.max() < 0.012

    def test_bad_hash_has_dead_bits(self):
        biases = bit_bias(_BadHash(), samples=5_000)
        # Bits 16..63 are constant zero: bias exactly 0.5.
        assert biases[16:].max() == pytest.approx(0.5)


class TestPrefixCollisions:
    def test_matches_ideal_rate(self):
        for prefix_bits in (4, 8, 12):
            rate = prefix_collision_rate(prefix_bits)
            ideal = 2.0**-prefix_bits
            assert rate == pytest.approx(ideal, rel=0.1)

    def test_rejects_bad_prefix(self):
        with pytest.raises(AnalysisError):
            prefix_collision_rate(0)
        with pytest.raises(AnalysisError):
            prefix_collision_rate(33, code_bits=32)


class TestSummary:
    def test_summary_keys(self):
        summary = summarize_family(SplitMix64Family())
        assert set(summary) == {
            "chi2_per_dof",
            "avalanche",
            "max_bit_bias",
            "prefix8_collision_over_ideal",
        }
        assert 0.9 < summary["prefix8_collision_over_ideal"] < 1.1
