"""Tests for the hash families."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import ConfigurationError
from repro.hashing.family import (
    Md5HashFamily,
    Sha1HashFamily,
    SplitMix64Family,
    default_family,
    splitmix64,
)

FAMILIES = [SplitMix64Family(), Md5HashFamily(), Sha1HashFamily()]


@pytest.mark.parametrize("family", FAMILIES, ids=lambda f: type(f).__name__)
class TestFamilyContract:
    def test_deterministic(self, family):
        assert family.digest(1, 42) == family.digest(1, 42)

    def test_seed_sensitivity(self, family):
        assert family.digest(1, 42) != family.digest(2, 42)

    def test_key_sensitivity(self, family):
        assert family.digest(1, 42) != family.digest(1, 43)

    def test_digest_fits_64_bits(self, family):
        for key in (0, 1, 2**40, 2**63 - 1):
            digest = family.digest(7, key)
            assert 0 <= digest < 2**64

    def test_digest_many_matches_scalar(self, family):
        keys = np.array([0, 1, 5, 1000, 2**50], dtype=np.uint64)
        vectorized = family.digest_many(3, keys)
        scalar = [family.digest(3, int(k)) for k in keys]
        assert vectorized.tolist() == scalar

    def test_code_is_top_bits(self, family):
        digest = family.digest(9, 123)
        assert family.code(9, 123, 16) == digest >> 48
        assert family.code(9, 123, 64) == digest

    def test_code_rejects_bad_width(self, family):
        with pytest.raises(ConfigurationError):
            family.code(1, 1, 0)
        with pytest.raises(ConfigurationError):
            family.code(1, 1, 65)


class TestSplitMix64:
    def test_reference_values(self):
        # SplitMix64 with seed state 0 / 1 (values cross-checked against
        # the Vigna reference implementation).
        assert splitmix64(0) == 0xE220A8397B1DCDAF
        assert splitmix64(1) != splitmix64(0)

    def test_mixes_to_full_range(self):
        values = [splitmix64(i) for i in range(1000)]
        assert min(values) < 2**60
        assert max(values) > 2**63

    def test_codes_roughly_uniform(self):
        family = SplitMix64Family()
        keys = np.arange(20_000, dtype=np.uint64)
        codes = family.codes(5, keys, 8)  # 256 buckets
        counts = np.bincount(codes.astype(np.int64), minlength=256)
        # Chi-square against uniform: mean 78 per bucket; allow wide
        # but bounded deviation.
        expected = 20_000 / 256
        chi2 = float(((counts - expected) ** 2 / expected).sum())
        # 255 dof: mean 255, std ~22.6; 400 is ~6 sigma.
        assert chi2 < 400

    def test_sequential_ids_decorrelated(self):
        # PET requires hash codes of sequential IDs to behave uniformly:
        # top-bit balance over consecutive keys.
        family = SplitMix64Family()
        keys = np.arange(10_000, dtype=np.uint64)
        top_bits = family.codes(11, keys, 1)
        ones = int(top_bits.sum())
        assert 4_600 < ones < 5_400


class TestDigestFamilies:
    def test_md5_differs_from_sha1(self):
        md5, sha1 = Md5HashFamily(), Sha1HashFamily()
        assert md5.digest(1, 42) != sha1.digest(1, 42)

    def test_default_family_is_splitmix(self):
        assert isinstance(default_family(), SplitMix64Family)

    def test_default_family_is_singleton(self):
        assert default_family() is default_family()
